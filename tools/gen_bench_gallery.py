#!/usr/bin/env python3
"""Render the committed ``BENCH_*.json`` results into ``docs/benchmarks.md``.

Every benchmark in this repository writes a machine-readable result document
(``benchmarks/results/BENCH_<name>.json`` via the ``bench_record`` fixture,
plus the top-level ``BENCH_scale.json`` trajectory anchor).  This tool — the
only writer of ``docs/benchmarks.md`` — renders them into one generated
gallery page: a headline block for the speedup/receivers-per-second
yardsticks, then one section per benchmark with its runtime, memory block
and flattened metrics.

Stdlib-only and deterministic: the page is a pure function of the committed
JSON files, so CI (and ``tests/docs``) can assert freshness by re-rendering
and comparing bytes.

Usage::

    python tools/gen_bench_gallery.py            # (re)write docs/benchmarks.md
    python tools/gen_bench_gallery.py --check    # exit 1 if the page is stale
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
TOP_LEVEL_BENCH = REPO_ROOT / "BENCH_scale.json"
OUTPUT = REPO_ROOT / "docs" / "benchmarks.md"

#: Flattened metric rows rendered per benchmark before eliding the tail —
#: the elision is always announced (never a silent cap).
MAX_ROWS_PER_BENCH = 48

HEADER = """<!-- GENERATED FILE — do not edit.
     Regenerate with: python tools/gen_bench_gallery.py
     (CI re-renders this page from the committed BENCH_*.json files and
     fails when it drifts.) -->

# Benchmark gallery

Rendered from the committed `benchmarks/results/BENCH_*.json` documents and
the top-level `BENCH_scale.json` trajectory anchor — regenerate after
rerunning benchmarks with `python tools/gen_bench_gallery.py`.  Numbers are
from the reference 1-CPU container (see [performance.md](performance.md)
and [scale.md](scale.md) for what each yardstick means).
"""


def _fmt(value: Any) -> str:
    """Render one metric leaf deterministically and compactly."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:,.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    if value is None:
        return "—"
    return str(value)


def _flatten(payload: Any, prefix: str = "") -> Iterator[Tuple[str, Any]]:
    """Yield ``dotted.path -> leaf`` pairs in sorted key order."""
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from _flatten(payload[key], path)
    elif isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            yield from _flatten(value, f"{prefix}[{index}]")
    else:
        yield prefix, payload


def _load(path: Path) -> Dict[str, Any]:
    return json.loads(path.read_text())


def _bench_files() -> List[Path]:
    return sorted(RESULTS_DIR.glob("BENCH_*.json"))


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _headline(lines: List[str]) -> None:
    """The cross-PR yardsticks: engine speedup, scale rates, protection."""
    lines.append("## Headline yardsticks\n")
    lines.append("| Yardstick | Value | Source |")
    lines.append("|---|---|---|")

    hotpath = RESULTS_DIR / "BENCH_engine_hotpath.json"
    if hotpath.exists():
        metrics = _load(hotpath).get("metrics", {})
        lines.append(
            f"| Engine hot-path speedup vs committed baseline | "
            f"{_fmt(metrics.get('speedup_vs_baseline'))}× "
            f"({_fmt(metrics.get('events_per_sec'))} events/s) | "
            f"`BENCH_engine_hotpath.json` |"
        )
    if TOP_LEVEL_BENCH.exists():
        metrics = _load(TOP_LEVEL_BENCH).get("metrics", {})
        speedup = metrics.get("cohort_speedup", {})
        if speedup:
            cohort = speedup.get("cohort", {})
            lines.append(
                f"| Cohort vs individual receivers/s (10k audience) | "
                f"{_fmt(speedup.get('speedup_receivers_per_sec'))}× "
                f"({_fmt(cohort.get('receivers_per_sec'))} rx/s; floor "
                f"{_fmt(speedup.get('min_speedup'))}×) | `BENCH_scale.json` |"
            )
        columnar = metrics.get("columnar_speedup", {})
        if columnar:
            lines.append(
                f"| Columnar vs per-cohort-object receivers/s "
                f"({_fmt(columnar.get('cohort_object_cap'))} cohorts, "
                f"{_fmt(columnar.get('total_receivers'))} audience) | "
                f"{_fmt(columnar.get('speedup_at_cap_cohorts'))}× "
                f"(floor {_fmt(columnar.get('min_speedup'))}×, "
                f"`{columnar.get('backend')}` backend) | `BENCH_scale.json` |"
            )
        sharding = metrics.get("sharding_speedup", {})
        if sharding:
            lines.append(
                f"| Region-sharded 10M receivers (`{sharding.get('scenario')}`, "
                f"{_fmt(sharding.get('shards'))} regions) | "
                f"{_fmt(sharding.get('receivers'))} receivers, serial "
                f"{_fmt(sharding.get('serial_wall_s'))} s == pool bytes, ideal "
                f"speedup {_fmt(sharding.get('ideal_speedup'))}× (floor "
                f"{_fmt(sharding.get('min_speedup'))}×; measured "
                f"{_fmt(sharding.get('measured_speedup'))}× on "
                f"{_fmt(sharding.get('cpus'))} CPU) | `BENCH_scale.json` |"
            )
        batched = metrics.get("batched_attacks", {})
        for name in sorted(batched.get("scenarios", {})):
            block = batched["scenarios"][name]
            cohort = block.get("cohort", {})
            lines.append(
                f"| Batched `{name}` attacker cohort vs per-object reference "
                f"({_fmt(batched.get('per_object_cap'))} rx cap) | "
                f"{_fmt(block.get('speedup_receivers_per_sec'))}× "
                f"({_fmt(cohort.get('receivers_per_sec'))} rx/s at "
                f"{_fmt(cohort.get('receivers'))} receivers; floor "
                f"{_fmt(batched.get('min_speedup'))}×) | `BENCH_scale.json` |"
            )
        warm = metrics.get("warm_start_speedup", {})
        if warm:
            grid = warm.get("protection_grid", {})
            duel = warm.get("duel_intensity_sweep", {})
            lines.append(
                f"| Warm-started sweep grids vs cold "
                f"({_fmt(grid.get('cells'))}-cell strategy×intensity grid, "
                f"{_fmt(duel.get('cells'))}-cell duel intensity sweep) | "
                f"{_fmt(grid.get('speedup'))}× and {_fmt(duel.get('speedup'))}× "
                f"(floor {_fmt(warm.get('min_speedup'))}×, byte-identical) | "
                f"`BENCH_scale.json` |"
            )
        protection = metrics.get("protection_at_scale", {})
        if protection:
            lines.append(
                f"| Protection at scale (`{protection.get('scenario')}`) | "
                f"{_fmt(protection.get('receivers'))} receivers in "
                f"{_fmt(protection.get('wall_s'))} s wall "
                f"({_fmt(protection.get('receivers_per_sec'))} rx/s), attacker "
                f"cohort weighted excess {_fmt(protection.get('weighted_excess_kbps'))} "
                f"Kbps, contained in {_fmt(protection.get('containment_s'))} s | "
                f"`BENCH_scale.json` |"
            )
    lines.append("")


def _memory_line(memory: Dict[str, Any]) -> str:
    parts = [f"peak RSS {memory.get('peak_rss_kb', 0.0) / 1024.0:,.1f} MiB"]
    if "gc_tracked_objects" in memory:
        parts.append(f"{memory['gc_tracked_objects']:,} GC-tracked objects")
    traced = memory.get("tracemalloc")
    if traced:
        parts.append(
            f"tracemalloc current {traced.get('current_kb', 0.0) / 1024.0:,.1f} / "
            f"peak {traced.get('peak_kb', 0.0) / 1024.0:,.1f} MiB, "
            f"{traced.get('live_blocks', 0):,} live blocks"
        )
    return ", ".join(parts)


def _section(lines: List[str], path: Path, payload: Dict[str, Any]) -> None:
    lines.append(f"## `{path.name}`\n")
    runtime = payload.get("runtime_s")
    if runtime is not None:
        lines.append(f"- runtime: {runtime:,.3f} s")
    memory = payload.get("memory")
    if memory:
        lines.append(f"- memory: {_memory_line(memory)}")
    rows = list(_flatten(payload.get("metrics", {})))
    if rows:
        lines.append("")
        lines.append("| Metric | Value |")
        lines.append("|---|---|")
        for key, value in rows[:MAX_ROWS_PER_BENCH]:
            lines.append(f"| `{key}` | {_fmt(value)} |")
        elided = len(rows) - MAX_ROWS_PER_BENCH
        if elided > 0:
            lines.append(
                f"| … | {elided} more rows elided (see the JSON for the full document) |"
            )
    lines.append("")


def render_gallery() -> str:
    """The full docs/benchmarks.md content as a string."""
    lines: List[str] = [HEADER]
    _headline(lines)

    if TOP_LEVEL_BENCH.exists():
        _section(lines, TOP_LEVEL_BENCH, _load(TOP_LEVEL_BENCH))
    for path in _bench_files():
        _section(lines, path, _load(path))
    return "\n".join(lines).rstrip() + "\n"


# ----------------------------------------------------------------------
def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if docs/benchmarks.md is stale instead of rewriting it",
    )
    args = parser.parse_args(argv)

    content = render_gallery()
    if args.check:
        if not OUTPUT.exists() or OUTPUT.read_text() != content:
            print(
                f"{OUTPUT.relative_to(REPO_ROOT)} is stale; regenerate with "
                f"`python tools/gen_bench_gallery.py`",
                file=sys.stderr,
            )
            return 1
        print(f"{OUTPUT.relative_to(REPO_ROOT)} is up to date")
        return 0
    OUTPUT.write_text(content)
    print(f"wrote {OUTPUT.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
