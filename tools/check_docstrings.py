#!/usr/bin/env python3
"""Docstring checker for the public API surface.

The docs site autogenerates nothing it cannot back with a real docstring, so
this checker enforces — with only the standard library, because the repro
container installs no linters — that every *public* module, class, function
and method in the scoped modules is docstringed.  CI additionally runs
ruff's pydocstyle (D) rules over the same scope; this script is the
guarantee that also runs inside the tier-1 suite (``tests/docs``).

Scope and rules
---------------
* Scoped files: the engine and simulator substrate, the experiment spec and
  runner, and the adversary strategy protocol (see ``SCOPED``).
* A name is public unless it starts with ``_`` (dunders other than
  ``__call__`` are exempt, as are trivial overrides explicitly marked with
  an inline ``# noqa: docstring`` comment — there are currently none).
* Nested (function-local) definitions are exempt.

Usage::

    python tools/check_docstrings.py            # check, exit 1 on findings
    python tools/check_docstrings.py --list     # print the scoped files
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

#: Files whose public surface must be fully documented (ISSUE 3 scope:
#: simulator.engine, experiments.spec/runner, adversary.strategy — plus the
#: rest of the simulator substrate the docs site leans on).
SCOPED: Tuple[str, ...] = (
    "simulator/engine.py",
    "simulator/packet.py",
    "simulator/link.py",
    "simulator/queues.py",
    "simulator/node.py",
    "simulator/multicast.py",
    "simulator/monitors.py",
    "simulator/igmp.py",
    "experiments/spec.py",
    "experiments/runner.py",
    "experiments/scale.py",
    "experiments/warmstart.py",
    "adversary/strategy.py",
    "adversary/cohort.py",
    "multicast_cc/decision.py",
    "multicast_cc/churn.py",
    "multicast_cc/population.py",
    "multicast_cc/vector.py",
    "adversary/vector.py",
    "service/protocol.py",
    "service/pool.py",
    "service/jobs.py",
    "service/server.py",
    "service/client.py",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_") or name == "__call__"


def _iter_definitions(
    tree: ast.Module,
) -> Iterator[Tuple[str, "ast.AST"]]:
    """Yield (qualified name, node) for module-level and class-level defs."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name):
                yield node.name, node
        elif isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            yield node.name, node
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _is_public(child.name):
                        yield f"{node.name}.{child.name}", child


def check_file(path: Path) -> List[str]:
    """Return human-readable findings for one file (empty = clean)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    findings: List[str] = []
    relative = path.relative_to(REPO_ROOT)
    if ast.get_docstring(tree) is None:
        findings.append(f"{relative}:1 module is missing a docstring")
    for name, node in _iter_definitions(tree):
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            findings.append(
                f"{relative}:{node.lineno} public {kind} `{name}` is missing a docstring"
            )
    return findings


def main(argv: List[str]) -> int:
    """Run the checker over the scoped files; exit non-zero on findings."""
    paths = [SRC / rel for rel in SCOPED]
    if "--list" in argv:
        for path in paths:
            print(path.relative_to(REPO_ROOT))
        return 0
    findings: List[str] = []
    for path in paths:
        if not path.exists():
            findings.append(f"scoped file {path.relative_to(REPO_ROOT)} does not exist")
            continue
        findings.extend(check_file(path))
    if findings:
        print(f"{len(findings)} docstring finding(s):")
        for finding in findings:
            print(f"  {finding}")
        return 1
    print(f"docstrings OK across {len(paths)} scoped files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
