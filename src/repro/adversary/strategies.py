"""Concrete adversary strategies.

Each strategy models one self-beneficial misbehaviour from the paper's threat
analysis (§2, §4) or the adaptive-misbehaviour literature; the README's
threat-model section maps every class to its taxonomy entry.  Strategies are
deliberately small — composition (stacking several on one receiver) is how
richer attackers are built, e.g. the Figure 7 attacker is inflated-join +
key-replay + key-guessing.

Every strategy here is a thin shim over a pure decision rule in
:mod:`repro.multicast_cc.decision` (the
:data:`~repro.adversary.spec.BATCHED_DECISION_RULES` mapping names the
pairing): the shim gathers the slot's inputs — entitlement, stash, pooled
keys, and for key guessing the slot's *per-cohort* draw budget from the
strategy's seeded stream — and books the rule's output through the
capability context at ``member_count`` weight.  That split is what makes
cohort batching exact for the whole registry; the exhaustive small-model
harness (``tests/properties/exhaustive.py``) gates every rule.
"""

from __future__ import annotations

from typing import Dict, List, Set, TYPE_CHECKING

from ..multicast_cc.decision import (
    attack_rate,
    attack_target_level,
    churn_phase,
    collusion_volley,
    decide_churn,
    decide_join_storm,
    guess_volley,
    mask_congestion,
    replay_volley,
)
from .context import AttackContext
from .registry import register_adversary
from .strategy import AttackStrategy

if TYPE_CHECKING:  # pragma: no cover - annotation-only (import cycle guard)
    from ..multicast_cc.receiver_base import SlotRecord

__all__ = [
    "InflatedJoinStrategy",
    "IgnoreCongestionStrategy",
    "ChurnStrategy",
    "KeyReplayStrategy",
    "KeyGuessingStrategy",
    "JoinStormStrategy",
    "CollusionStrategy",
]

#: Governed slots of reconstructed keys a replay attacker keeps around.
REPLAY_RETAINED_SLOTS = 6


@register_adversary
class InflatedJoinStrategy(AttackStrategy):
    """Join more groups than the congestion state allows (§2.1, Figure 1).

    At onset the attacker IGMP-joins every group up to ``intensity × group
    count`` and — when ``suppress_honest`` (the default) — freezes its
    subscription there, ignoring every congestion signal.  Against an IGMP
    edge the attack succeeds outright; a SIGMA router ignores the bare joins.
    With ``suppress_honest=False`` the joins ride on top of the honest
    pipeline (the Figure 7 attacker keeps its fair share this way).
    """

    name = "inflated-join"

    def _target_level(self, ctx: AttackContext) -> int:
        return attack_target_level(self.intensity, ctx.group_count)

    def on_start(self, ctx: AttackContext) -> None:
        target = self._target_level(ctx)
        for group in range(1, target + 1):
            ctx.igmp_join(group)
        if self.param("suppress_honest", True):
            ctx.set_level(target)

    def on_slot(self, ctx: AttackContext, slot: int, record: SlotRecord, congested: bool) -> bool:
        return bool(self.param("suppress_honest", True))


@register_adversary
class IgnoreCongestionStrategy(AttackStrategy):
    """Never decrease the subscription on loss (§2.1's milder misbehaviour).

    ``mode="mask"`` (default) feeds ``congested=False`` into the honest
    pipeline — under DELTA the attacker then computes top keys from an
    incomplete component set, submits garbage, and loses access by itself.
    ``mode="hold"`` suppresses the decision on congested slots instead
    (the historical ``IgnoreCongestionFlidDlReceiver`` behaviour).
    """

    name = "ignore-congestion"

    def filter_congestion(
        self, ctx: AttackContext, slot: int, record: SlotRecord, congested: bool
    ) -> bool:
        return mask_congestion(congested, str(self.param("mode", "mask")))

    def on_slot(self, ctx: AttackContext, slot: int, record: SlotRecord, congested: bool) -> bool:
        return self.param("mode", "mask") == "hold" and congested


@register_adversary
class ChurnStrategy(AttackStrategy):
    """Join/leave flapping, probing the grace windows (§3.2.2).

    The attacker alternates between a *high* phase — IGMP-join everything and
    re-run the key-less session-join, milking the admission grace slots — and
    a *low* phase that abandons the groups above its entitlement again.
    ``intensity`` scales the flapping frequency; ``period_s`` and ``duty``
    shape the cycle.  IGMP edges see membership churn (graft/prune load);
    SIGMA edges bound the gain to the grace windows.
    """

    name = "churn"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._phase_high = False
        self._joined: Set[int] = set()

    def _period_s(self) -> float:
        return max(1e-3, float(self.param("period_s", 4.0)) / self.intensity)

    def on_slot(self, ctx: AttackContext, slot: int, record: SlotRecord, congested: bool) -> bool:
        phase_high = churn_phase(
            ctx.now - self.start_s, self._period_s(), float(self.param("duty", 0.5))
        )
        action = decide_churn(
            phase_high,
            self._phase_high,
            ctx.entitled_level(slot),
            ctx.group_count,
            self._joined,
        )
        for group in action.join_groups:
            ctx.igmp_join(group)
            self._joined.add(group)
        if action.session_rejoin:
            ctx.sigma_rejoin()
        for group in action.leave_groups:
            ctx.igmp_leave(group)
        if not phase_high and self._phase_high:
            self._joined.clear()
        self._phase_high = phase_high
        return False

    def on_stop(self, ctx: AttackContext) -> None:
        for group in sorted(self._joined):
            if group > ctx.level:
                ctx.igmp_leave(group)
        self._joined.clear()
        self._phase_high = False


@register_adversary
class KeyReplayStrategy(AttackStrategy):
    """Replay legitimately reconstructed keys out of scope (§4.1).

    Keys the honest pipeline reconstructs are retained and re-submitted for
    *forbidden* groups and for later slots, hoping the router confuses key
    scopes.  It does not: keys are stored per (governed slot, group address),
    so every replay lands in ``invalid_submissions``.
    """

    name = "key-replay"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._stash: Dict[int, Dict[int, int]] = {}

    def on_keys(self, ctx: AttackContext, governed_slot: int, keys: Dict[int, int]) -> None:
        if not keys:
            return
        self._stash[governed_slot] = dict(keys)
        for old in [s for s in self._stash if s < governed_slot - REPLAY_RETAINED_SLOTS]:
            del self._stash[old]

    def after_slot(self, ctx: AttackContext, slot: int, record: SlotRecord, congested: bool) -> None:
        if not ctx.protected:
            return
        governed = slot + 2
        per_group = attack_rate(float(self.param("replays_per_group", 1)), self.intensity)
        candidates: List[int] = []
        for stash_slot in sorted(self._stash, reverse=True):
            candidates.extend(self._stash[stash_slot].values())
        if not candidates:
            return
        volley = replay_volley(
            candidates, ctx.entitled_level(governed), ctx.group_count, per_group
        )
        ctx.replay_attempts += ctx.member_count * len(volley)
        ctx.sigma_subscribe(
            governed, [(ctx.address_of(group), key) for group, key in volley]
        )


@register_adversary
class KeyGuessingStrategy(AttackStrategy):
    """Submit uniformly random keys for forbidden groups (§4.2).

    With ``b``-bit keys, ``y`` guesses per slot succeed with probability
    ``y / 2^b`` — negligible at the paper's 16 bits, and the router's
    guessing alarm counts the attempts.  ``intensity`` scales the guess rate.
    """

    name = "key-guessing"

    def after_slot(self, ctx: AttackContext, slot: int, record: SlotRecord, congested: bool) -> None:
        if not ctx.protected:
            return
        governed = slot + 2
        guesses = attack_rate(float(self.param("guesses_per_slot", 4)), self.intensity)
        key_bits = int(self.param("key_bits", getattr(ctx.receiver, "key_bits", 16)))
        entitled = ctx.entitled_level(governed)
        # One draw budget per slot covers the whole cohort (per-cohort
        # randomness); the flat draw order matches the group-major loop the
        # per-object strategy historically ran, byte for byte.
        needed = max(0, ctx.group_count - entitled) * guesses
        draws = [self.rng.getrandbits(key_bits) for _ in range(needed)]
        volley = guess_volley(entitled, ctx.group_count, guesses, draws)
        ctx.guess_attempts += ctx.member_count * len(volley)
        ctx.sigma_subscribe(
            governed, [(ctx.address_of(group), key) for group, key in volley]
        )


@register_adversary
class JoinStormStrategy(AttackStrategy):
    """Repeat bare IGMP joins for every group at every slot boundary.

    Against an IGMP edge the storm re-grants every group each slot, undoing
    any leave the honest pipeline issued — a persistent inflation that needs
    no state.  A SIGMA edge ignores all of it (``igmp_joins_ignored``), so
    the storm degenerates into control-plane load, which is the point of the
    scenario: protection must hold under message pressure.  ``intensity``
    multiplies the storm width (joins per slot).
    """

    name = "join-storm"

    def after_slot(self, ctx: AttackContext, slot: int, record: SlotRecord, congested: bool) -> None:
        bursts = attack_rate(float(self.param("bursts_per_slot", 1)), self.intensity)
        for group in decide_join_storm(bursts, ctx.group_count):
            ctx.igmp_join(group)


@register_adversary
class CollusionStrategy(AttackStrategy):
    """Colluding receivers share reconstructed keys out of band (§4.3).

    Every colluder publishes the keys its honest pipeline reconstructs into a
    named pool and submits pooled keys for groups above its own entitlement.
    The keys are *valid*, so SIGMA accepts them — but they only ever unlock
    what some honest receiver was entitled to, and the colluder's own
    bottleneck still drops the excess, which is exactly the containment the
    paper claims for key-sharing attacks.
    """

    name = "collusion"

    def _pool(self, ctx: AttackContext):
        return ctx.collusion_pool(str(self.param("pool", "default")))

    def on_keys(self, ctx: AttackContext, governed_slot: int, keys: Dict[int, int]) -> None:
        if self.param("publish", True):
            self._pool(ctx).publish(governed_slot, keys, members=ctx.member_count)

    def after_slot(self, ctx: AttackContext, slot: int, record: SlotRecord, congested: bool) -> None:
        if not ctx.protected or not self.param("exploit", True):
            return
        governed = slot + 2
        pooled = self._pool(ctx).keys_for(governed)
        volley = collusion_volley(pooled, ctx.entitled_level(governed), ctx.group_count)
        ctx.shared_key_submissions += ctx.member_count * len(volley)
        ctx.sigma_subscribe(
            governed, [(ctx.address_of(group), key) for group, key in volley]
        )
