"""Serialisable attack declarations.

An :class:`AttackSpec` names a strategy from the adversary registry, gives it
parameters and an intensity knob, schedules it (onset and optional end), and
lists which receivers of the enclosing session mount it.  Several specs may
target the same receiver — their strategies then *compose* on that host, in
declaration order.

The spec is plain data with a canonical dict form, so it serialises inside a
:class:`~repro.experiments.spec.ScenarioSpec` (whose canonical JSON is the
experiment cache key) and survives the round trip to process-pool workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["AttackSpec", "COHORT_BATCHED_STRATEGIES"]

#: Strategies whose per-slot action is a deterministic function of the shared
#: cohort state — these batch *exactly* over an adversarial cohort (one
#: aggregated attacker object == N individuals, asserted by the equivalence
#: tests).  Randomised strategies (key guessing/replay, collusion) draw
#: per-attacker randomness and must stay individual receivers; the
#: scale-limits table in ``docs/threat-model.md`` records the split.
COHORT_BATCHED_STRATEGIES = frozenset({"inflated-join", "ignore-congestion", "churn"})


@dataclass(frozen=True)
class AttackSpec:
    """One scheduled attack: strategy + params + schedule + target receivers.

    ``intensity`` is a dimensionless scale factor every strategy interprets
    against its own knobs (guesses per slot, churn frequency, storm width…),
    so experiment grids can sweep attacker aggressiveness uniformly across
    strategy types.  ``stop_s`` of ``None`` means the attack runs to the end
    of the experiment.
    """

    strategy: str
    receivers: Tuple[int, ...] = (0,)
    start_s: float = 0.0
    stop_s: Optional[float] = None
    intensity: float = 1.0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.strategy:
            raise ValueError("an attack needs a strategy name")
        if not self.receivers:
            raise ValueError("an attack needs at least one target receiver")
        if any(index < 0 for index in self.receivers):
            raise ValueError("receiver indices must be non-negative")
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")
        if self.stop_s is not None and self.stop_s < self.start_s:
            raise ValueError("stop_s must not precede start_s")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "receivers": list(self.receivers),
            "start_s": self.start_s,
            "stop_s": self.stop_s,
            "intensity": self.intensity,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AttackSpec":
        return cls(
            strategy=payload["strategy"],
            receivers=tuple(payload.get("receivers", (0,))),
            start_s=payload.get("start_s", 0.0),
            stop_s=payload.get("stop_s"),
            intensity=payload.get("intensity", 1.0),
            params=dict(payload.get("params", {})),
        )
