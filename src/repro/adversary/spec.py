"""Serialisable attack declarations.

An :class:`AttackSpec` names a strategy from the adversary registry, gives it
parameters and an intensity knob, schedules it (onset and optional end), and
lists which receivers of the enclosing session mount it.  Several specs may
target the same receiver — their strategies then *compose* on that host, in
declaration order.

The spec is plain data with a canonical dict form, so it serialises inside a
:class:`~repro.experiments.spec.ScenarioSpec` (whose canonical JSON is the
experiment cache key) and survives the round trip to process-pool workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["AttackSpec", "BATCHED_DECISION_RULES", "COHORT_BATCHED_STRATEGIES"]

#: Strategy name -> the pure decision rules in
#: :mod:`repro.multicast_cc.decision` that its per-slot action reduces to.
#: Listing a strategy here is the *batching contract*: its live class must be
#: a thin shim over exactly these rules, every rule must be gated by the
#: exhaustive small-model harness (``tests/properties/exhaustive.py``
#: enumerates every (count, level, phase, key-state, rng-draw) tuple below a
#: bound and asserts batch == N x scalar, and array == batch where an array
#: form exists), and cohort-vs-individual exactness at N=3 must hold on both
#: population backends.  A strategy registered *without* an entry is rejected
#: at :class:`AttackSpec` declaration time — extend this mapping (and the
#: harness) before shipping a new strategy.
BATCHED_DECISION_RULES: Dict[str, Tuple[str, ...]] = {
    "inflated-join": (
        "attack_target_level",
        "decide_inflated_join",
        "decide_inflated_join_batch",
        "decide_inflated_join_array",
    ),
    "ignore-congestion": ("mask_congestion",),
    "churn": (
        "churn_phase",
        "churn_phase_array",
        "decide_churn",
        "decide_churn_batch",
        "decide_churn_array",
    ),
    "key-replay": ("attack_rate", "replay_volley", "replay_volley_batch"),
    "key-guessing": ("attack_rate", "guess_volley", "guess_volley_batch"),
    "join-storm": ("attack_rate", "decide_join_storm", "decide_join_storm_batch"),
    "collusion": ("collusion_volley", "collusion_volley_batch"),
}

#: Strategies that batch *exactly* over an adversarial cohort (one aggregated
#: attacker object == N individuals, asserted by the equivalence tests and
#: the exhaustive harness).  Since PR 8 this is the whole registry: formerly
#: randomised strategies draw their per-slot randomness *once per cohort*
#: from the named seeded stream, and collusion pools accept member-weighted
#: contributions — see ``docs/threat-model.md`` for the per-strategy account.
COHORT_BATCHED_STRATEGIES = frozenset(BATCHED_DECISION_RULES)


@dataclass(frozen=True)
class AttackSpec:
    """One scheduled attack: strategy + params + schedule + target receivers.

    ``intensity`` is a dimensionless scale factor every strategy interprets
    against its own knobs (guesses per slot, churn frequency, storm width…),
    so experiment grids can sweep attacker aggressiveness uniformly across
    strategy types.  ``stop_s`` of ``None`` means the attack runs to the end
    of the experiment.
    """

    strategy: str
    receivers: Tuple[int, ...] = (0,)
    start_s: float = 0.0
    stop_s: Optional[float] = None
    intensity: float = 1.0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.strategy:
            raise ValueError("an attack needs a strategy name")
        if self.strategy not in BATCHED_DECISION_RULES:
            # Unknown names stay a build-time KeyError (the registry may not
            # be populated yet); a *registered* strategy missing its batching
            # contract is a declaration-time error.
            from .registry import ADVERSARIES

            if self.strategy in ADVERSARIES:
                raise ValueError(
                    f"strategy {self.strategy!r} is registered but has no "
                    f"batched decision rules: add a scalar+batched pair to "
                    f"repro.multicast_cc.decision, list it in "
                    f"BATCHED_DECISION_RULES (repro.adversary.spec), and gate "
                    f"it in tests/properties/exhaustive.py"
                )
        if not self.receivers:
            raise ValueError("an attack needs at least one target receiver")
        if any(index < 0 for index in self.receivers):
            raise ValueError("receiver indices must be non-negative")
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")
        if self.stop_s is not None and self.stop_s < self.start_s:
            raise ValueError("stop_s must not precede start_s")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "receivers": list(self.receivers),
            "start_s": self.start_s,
            "stop_s": self.stop_s,
            "intensity": self.intensity,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AttackSpec":
        return cls(
            strategy=payload["strategy"],
            receivers=tuple(payload.get("receivers", (0,))),
            start_s=payload.get("start_s", 0.0),
            stop_s=payload.get("stop_s"),
            intensity=payload.get("intensity", 1.0),
            params=dict(payload.get("params", {})),
        )
