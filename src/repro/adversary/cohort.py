"""Adversarial cohorts: N batched attackers behind one edge interface.

The paper's robustness claim is *population-relative*: however large the
honest audience grows, a bounded set of misbehaving receivers gains at most
its grace-window allowance.  Exercising that claim at 100k-receiver scale
needs the attackers themselves to aggregate, so these classes extend the
cohort receivers of :mod:`repro.multicast_cc.cohort` with the strategy
dispatch of :mod:`repro.adversary.receivers`:

* the honest pipeline underneath stays the *batched* cohort one (columnar
  ``(count, level)`` rows through the pure decision functions);
* the mounted strategies act once per slot through a capability-scoped
  :class:`~repro.adversary.context.AttackContext` whose ``member_count``
  equals the cohort population, so every attack counter, IGMP report weight
  and SIGMA ``member_count`` stamp books the attack **per member**;
* only *batch-exact* strategies are allowed
  (:data:`~repro.adversary.spec.COHORT_BATCHED_STRATEGIES` — since PR 8 the
  whole registry): every strategy's per-slot action reduces to a pure rule
  in :mod:`repro.multicast_cc.decision`
  (:data:`~repro.adversary.spec.BATCHED_DECISION_RULES` names the pairing),
  with per-cohort randomness drawn once per slot from the strategy's named
  seeded stream and collusion pools taking member-weighted contributions —
  see ``docs/threat-model.md`` for the per-strategy account.

``tests/experiments/test_adversarial_cohort_equivalence.py`` asserts the
contract exactly: a cohort of N attackers produces the same level
trajectories, per-member goodput and SIGMA/IGMP/attack counters as N
individual attackers mounting the same spec.
"""

from __future__ import annotations

from typing import Sequence

from ..multicast_cc.cohort import CohortFlidDlReceiver, CohortFlidDsReceiver
from ..multicast_cc.decision import decide_inflated_join_batch, merge_rows
from ..multicast_cc.session import SessionSpec
from ..simulator.node import Host
from ..simulator.topology import Network
from .receivers import _AdversaryMixin
from .spec import COHORT_BATCHED_STRATEGIES
from .strategy import AttackStrategy

__all__ = [
    "AdversarialCohortFlidDlReceiver",
    "AdversarialCohortFlidDsReceiver",
]


class _CohortAdversaryMixin(_AdversaryMixin):
    """Strategy dispatch over a cohort's batched honest pipeline."""

    def attach_churn(self, process) -> None:
        """Adversarial cohorts cannot churn (enforced here, not just in specs).

        The attack context's member weight is fixed at admission, so a
        churned attacker population would book stale counters; declare the
        churned honest audience and the attacker cohort as separate blocks.
        """
        raise ValueError(
            "adversarial cohorts cannot churn: the attack context's member "
            "weight is fixed at admission — declare the churned honest "
            "audience and the attacker population as separate blocks"
        )

    def _init_adversary(self, strategies: Sequence[AttackStrategy]) -> None:
        for strategy in strategies:
            if strategy.name not in COHORT_BATCHED_STRATEGIES:
                raise ValueError(
                    f"strategy {strategy.name!r} has no batched decision rules "
                    f"in repro.multicast_cc.decision (BATCHED_DECISION_RULES) "
                    f"and cannot mount on a cohort; batch-exact strategies: "
                    f"{sorted(COHORT_BATCHED_STRATEGIES)}"
                )
        super()._init_adversary(strategies)

    def _set_level(self, level: int) -> None:
        """Keep the columnar state block in lockstep with strategy overrides.

        Strategies may overwrite the subscription level outside the honest
        decision path (``AttackContext.set_level``); a homogeneous attacker
        cohort moves as one, so every row is pinned at the clamped level —
        which is exactly the batched frozen-subscription rule
        (:func:`~repro.multicast_cc.decision.decide_inflated_join_batch`)
        mapped over the block.
        """
        super()._set_level(level)
        outcomes = decide_inflated_join_batch(self._rows, self.level)
        self._rows = merge_rows(
            [(count, decision.next_level) for count, decision in outcomes]
        )


class AdversarialCohortFlidDlReceiver(_CohortAdversaryMixin, CohortFlidDlReceiver):
    """FLID-DL cohort of ``population`` attackers mounting one strategy stack."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        strategies: Sequence[AttackStrategy],
        population: int,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(
            network, host, spec, population=population, bin_width_s=bin_width_s, name=name
        )
        self._init_adversary(strategies)


class AdversarialCohortFlidDsReceiver(_CohortAdversaryMixin, CohortFlidDsReceiver):
    """FLID-DS cohort of ``population`` attackers mounting one strategy stack.

    The batched DELTA pipeline keeps running (reconstruction once per
    distinct level, one ``member_count``-stamped subscription message per
    slot); strategies see the reconstructed keys through the same
    :meth:`on_keys` hook as on an individual adversarial receiver.
    """

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        strategies: Sequence[AttackStrategy],
        population: int,
        key_bits: int = 16,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(
            network,
            host,
            spec,
            population=population,
            key_bits=key_bits,
            bin_width_s=bin_width_s,
            name=name,
        )
        self._init_adversary(strategies)

    def _on_keys_reconstructed(self, governed_slot: int, keys) -> None:
        self._dispatch_reconstructed_keys(governed_slot, keys)
