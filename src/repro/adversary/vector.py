"""Adversarial vector blocks: batched attackers over columnar rows.

The columnar engine's adversarial counterpart: one vectorised receiver per
edge router whose rows are attacker cohorts, mounting the same batch-exact
strategy stack an :mod:`~repro.adversary.cohort` receiver would — the
constraint set is identical
(:data:`~repro.adversary.spec.COHORT_BATCHED_STRATEGIES`, enforced by the
inherited :class:`~repro.adversary.cohort._CohortAdversaryMixin`).  The
only addition is keeping the :class:`~repro.multicast_cc.population`
level column pinned in lockstep with strategy-driven level overrides,
via the array-form frozen-subscription rule.

``tests/experiments/test_adversarial_cohort_equivalence.py`` pins the
contract: a vector block of N attackers produces the same trajectories,
goodput and SIGMA/IGMP/attack counters as N individual attackers.
"""

from __future__ import annotations

from typing import Sequence

from ..multicast_cc.decision import decide_inflated_join_array
from ..multicast_cc.session import SessionSpec
from ..multicast_cc.population import PopulationTable
from ..multicast_cc.vector import VectorFlidDlReceiver, VectorFlidDsReceiver
from ..simulator.node import Host
from ..simulator.topology import Network
from .cohort import _CohortAdversaryMixin
from .strategy import AttackStrategy

__all__ = [
    "AdversarialVectorFlidDlReceiver",
    "AdversarialVectorFlidDsReceiver",
]


class _VectorAdversaryMixin(_CohortAdversaryMixin):
    """Cohort adversary dispatch plus columnar level-column pinning."""

    def _set_level(self, level: int) -> None:
        """Pin every block row at the strategy's level, column-wise.

        The inherited cohort mixin pins the merged ``(count, level)`` rows;
        the vector block additionally pins its level column through
        :func:`~repro.multicast_cc.decision.decide_inflated_join_array`
        (the array form of the same frozen-subscription rule) and records
        the pin in the ``targets`` column for observability.
        """
        super()._set_level(level)
        block = getattr(self, "_block", None)
        if block is not None:
            block.set_levels(decide_inflated_join_array(block.levels(), self.level))
            block.set_targets(int(self.level))


class AdversarialVectorFlidDlReceiver(_VectorAdversaryMixin, VectorFlidDlReceiver):
    """FLID-DL vector block whose rows all mount one batch-exact stack."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        strategies: Sequence[AttackStrategy],
        counts: Sequence[int],
        table: PopulationTable,
        router: str,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(
            network,
            host,
            spec,
            counts=counts,
            table=table,
            router=router,
            bin_width_s=bin_width_s,
            name=name,
        )
        self._init_adversary(strategies)


class AdversarialVectorFlidDsReceiver(_VectorAdversaryMixin, VectorFlidDsReceiver):
    """FLID-DS vector block whose rows all mount one batch-exact stack.

    The batched DELTA pipeline keeps running exactly as on the honest
    vector receiver; strategies see the reconstructed keys through the same
    ``on_keys`` hook as on every other adversarial receiver.
    """

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        strategies: Sequence[AttackStrategy],
        counts: Sequence[int],
        table: PopulationTable,
        router: str,
        key_bits: int = 16,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(
            network,
            host,
            spec,
            counts=counts,
            table=table,
            router=router,
            key_bits=key_bits,
            bin_width_s=bin_width_s,
            name=name,
        )
        self._init_adversary(strategies)

    def _on_keys_reconstructed(self, governed_slot: int, keys) -> None:
        self._dispatch_reconstructed_keys(governed_slot, keys)
