"""Composable adversary subsystem.

The paper's threat model (§2.1) is a *self-beneficial* receiver: it wants
more bandwidth for itself, not to destroy the network.  This package turns
the repo's misbehaviour modelling from three hard-coded receiver subclasses
into a library of composable :class:`AttackStrategy` objects that can be

* declared in a :class:`AttackSpec` (strategy name + parameters + schedule)
  embedded in an experiment's :class:`~repro.experiments.spec.ScenarioSpec`,
* looked up by name in the :data:`ADVERSARIES` registry,
* stacked on one receiver (several strategies compose on the same host), and
* swept like any other experiment parameter (attacker type × intensity ×
  onset) through the parallel experiment runner.

Strategies observe the receiver through hook points — slot boundaries, loss
events, DELTA key receipt — and act through a capability-scoped
:class:`AttackContext` that exposes exactly the paper's attack surface: IGMP
membership reports, SIGMA subscription messages, and the receiver's own
subscription state.  All adversary randomness flows through per-strategy
seeded streams derived from the experiment seed, so attack scenarios stay
byte-deterministic across processes.
"""

from .context import AttackContext
from .registry import ADVERSARIES, adversary_names, build_strategies, register_adversary
from .spec import BATCHED_DECISION_RULES, COHORT_BATCHED_STRATEGIES, AttackSpec
from .strategy import AttackStrategy
from .strategies import (
    ChurnStrategy,
    CollusionStrategy,
    IgnoreCongestionStrategy,
    InflatedJoinStrategy,
    JoinStormStrategy,
    KeyGuessingStrategy,
    KeyReplayStrategy,
)
from .receivers import AdversarialFlidDlReceiver, AdversarialFlidDsReceiver
from .cohort import AdversarialCohortFlidDlReceiver, AdversarialCohortFlidDsReceiver
from .vector import AdversarialVectorFlidDlReceiver, AdversarialVectorFlidDsReceiver

__all__ = [
    "AttackContext",
    "AttackSpec",
    "AttackStrategy",
    "ADVERSARIES",
    "BATCHED_DECISION_RULES",
    "COHORT_BATCHED_STRATEGIES",
    "adversary_names",
    "build_strategies",
    "register_adversary",
    "ChurnStrategy",
    "CollusionStrategy",
    "IgnoreCongestionStrategy",
    "InflatedJoinStrategy",
    "JoinStormStrategy",
    "KeyGuessingStrategy",
    "KeyReplayStrategy",
    "AdversarialFlidDlReceiver",
    "AdversarialFlidDsReceiver",
    "AdversarialCohortFlidDlReceiver",
    "AdversarialCohortFlidDsReceiver",
    "AdversarialVectorFlidDlReceiver",
    "AdversarialVectorFlidDsReceiver",
]
