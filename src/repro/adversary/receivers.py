"""Adversarial receivers: honest protocol machines driving attack strategies.

An adversarial receiver is the corresponding honest receiver (FLID-DL or
FLID-DS) with a stack of :class:`~repro.adversary.strategy.AttackStrategy`
instances spliced into its slot-evaluation loop.  The honest pipeline stays
available — most attackers keep playing it for the access it guarantees —
and each strategy decides per slot whether to augment, rewrite or suppress
the honest subscription decision.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..multicast_cc.flid_dl import FlidDlReceiver
from ..multicast_cc.flid_ds import FlidDsReceiver
from ..multicast_cc.receiver_base import SlotRecord
from ..multicast_cc.session import SessionSpec
from ..simulator.node import Host
from ..simulator.topology import Network
from .context import AttackContext, COUNTER_KEYS
from .strategy import AttackStrategy

__all__ = ["AdversarialFlidDlReceiver", "AdversarialFlidDsReceiver"]


class _AdversaryMixin:
    """Strategy dispatch shared by the DL and DS adversarial receivers."""

    def _init_adversary(self, strategies: Sequence[AttackStrategy]) -> None:
        self._strategies: List[AttackStrategy] = list(strategies)
        self._attack_ctx: Optional[AttackContext] = None

    # ------------------------------------------------------------------
    @property
    def strategies(self) -> List[AttackStrategy]:
        return list(self._strategies)

    @property
    def attack_ctx(self) -> Optional[AttackContext]:
        return self._attack_ctx

    @property
    def attacking(self) -> bool:
        """True while at least one strategy's attack window is open."""
        return any(s.started and not s.stopped for s in self._strategies)

    def adversary_stats(self) -> Dict[str, int]:
        """Attack counters (zeroes before the receiver joined the session)."""
        if self._attack_ctx is None:
            return dict.fromkeys(COUNTER_KEYS, 0)
        return self._attack_ctx.stats()

    # ------------------------------------------------------------------
    def _join_session(self) -> None:
        super()._join_session()
        self._attack_ctx = AttackContext(self)
        for strategy in self._strategies:
            strategy.on_attach(self._attack_ctx)

    def _apply_decision(self, evaluated_slot: int, record: SlotRecord, congested: bool) -> None:
        ctx = self._attack_ctx
        if ctx is None:
            super()._apply_decision(evaluated_slot, record, congested)
            return
        now = self.sim.now
        active: List[AttackStrategy] = []
        for strategy in self._strategies:
            if not strategy.started and strategy.active(now):
                strategy.started = True
                strategy.on_start(ctx)
            elif (
                strategy.started
                and not strategy.stopped
                and strategy.stop_s is not None
                and now >= strategy.stop_s
            ):
                strategy.stopped = True
                strategy.on_stop(ctx)
            if strategy.started and not strategy.stopped:
                active.append(strategy)

        effective = congested
        for strategy in active:
            effective = strategy.filter_congestion(ctx, evaluated_slot, record, effective)

        # Loss classification is only recomputed when some active strategy
        # actually listens for it (the sets are rebuilt per call site).
        listeners = [
            s for s in active if type(s).on_loss is not AttackStrategy.on_loss
        ]
        if listeners:
            # The same loss signal the honest pipeline classifies on: gap and
            # tail losses always, starvation when the slot counted as congested.
            lost = self._loss_signal_groups(record)
            if congested:
                lost |= self._starved_groups(record)
            if lost:
                for strategy in listeners:
                    strategy.on_loss(ctx, evaluated_slot, set(lost))

        suppress = False
        for strategy in active:
            if strategy.on_slot(ctx, evaluated_slot, record, effective):
                suppress = True
        if suppress:
            # One suppressed honest decision per represented attacker, so the
            # counter reads the same for a cohort as for N individuals.
            ctx.suppressed_slots += ctx.member_count
        else:
            super()._apply_decision(evaluated_slot, record, effective)

        for strategy in active:
            strategy.after_slot(ctx, evaluated_slot, record, effective)

    def _dispatch_reconstructed_keys(self, governed_slot: int, keys: Dict[int, int]) -> None:
        """Hand the honest pipeline's DELTA keys to every active strategy."""
        ctx = self._attack_ctx
        if ctx is None:
            return
        now = self.sim.now
        for strategy in self._strategies:
            if strategy.started and not strategy.stopped and strategy.active(now):
                strategy.on_keys(ctx, governed_slot, dict(keys))


class AdversarialFlidDlReceiver(_AdversaryMixin, FlidDlReceiver):
    """FLID-DL receiver mounting a stack of attack strategies."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        strategies: Sequence[AttackStrategy],
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(network, host, spec, bin_width_s=bin_width_s, name=name)
        self._init_adversary(strategies)


class AdversarialFlidDsReceiver(_AdversaryMixin, FlidDsReceiver):
    """FLID-DS receiver mounting a stack of attack strategies.

    The honest DELTA pipeline keeps running (its fair-share keys are the only
    access the attacker is guaranteed to keep); strategies additionally see
    every key it reconstructs through :meth:`on_keys`.
    """

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        strategies: Sequence[AttackStrategy],
        key_bits: int = 16,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(
            network, host, spec, key_bits=key_bits, bin_width_s=bin_width_s, name=name
        )
        self._init_adversary(strategies)

    def _on_keys_reconstructed(self, governed_slot: int, keys: Dict[int, int]) -> None:
        self._dispatch_reconstructed_keys(governed_slot, keys)
