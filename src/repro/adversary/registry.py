"""Name-indexed registry of adversary strategies.

Mirrors the scenario and topology registries: strategies register themselves
under a stable name, experiment specs reference them by that name, and the
scenario interpreter instantiates them with per-strategy seeded random
streams derived from the experiment seed (never the global ``random``
module), which keeps attack scenarios byte-deterministic across processes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type, TYPE_CHECKING

from .spec import AttackSpec
from .strategy import AttackStrategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..multicast_cc.session import SessionSpec
    from ..simulator.topology import Network

__all__ = ["ADVERSARIES", "register_adversary", "adversary_names", "build_strategies"]

#: Strategy name -> strategy class.
ADVERSARIES: Dict[str, Type[AttackStrategy]] = {}


def register_adversary(cls: Type[AttackStrategy]) -> Type[AttackStrategy]:
    """Class decorator adding ``cls`` to :data:`ADVERSARIES` under its name."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a registry name")
    if cls.name in ADVERSARIES:
        raise ValueError(f"adversary {cls.name!r} is already registered")
    ADVERSARIES[cls.name] = cls
    return cls


def adversary_names() -> List[str]:
    """All registered strategy names, sorted."""
    return sorted(ADVERSARIES)


def build_strategies(
    attacks: Sequence[AttackSpec],
    network: "Network",
    session_spec: "SessionSpec",
    host_name: str,
) -> List[AttackStrategy]:
    """Instantiate the strategies one receiver mounts, in declaration order.

    Each instance gets its own named random stream —
    ``adversary:<session>:<host>:<index>:<strategy>`` — so adding or removing
    a strategy never perturbs the draws of the others (stream isolation), and
    the same spec reproduces the same attack byte-for-byte in any process.
    """
    strategies: List[AttackStrategy] = []
    for index, attack in enumerate(attacks):
        cls = ADVERSARIES.get(attack.strategy)
        if cls is None:
            raise KeyError(
                f"unknown adversary strategy {attack.strategy!r}; "
                f"known: {adversary_names()}"
            )
        rng = network.random.stream(
            f"adversary:{session_spec.session_id}:{host_name}:{index}:{attack.strategy}"
        )
        strategies.append(
            cls(
                start_s=attack.start_s,
                stop_s=attack.stop_s,
                intensity=attack.intensity,
                params=attack.params,
                rng=rng,
            )
        )
    return strategies
