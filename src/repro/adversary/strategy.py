"""The strategy protocol: hook points an adversary can implement.

A strategy is a small state machine driven by the receiver's slot evaluation
loop.  Hooks fire in a fixed order per evaluated slot:

1. :meth:`filter_congestion` — may rewrite the congestion verdict the honest
   pipeline will see (e.g. mask losses);
2. :meth:`on_loss` — fires when the slot detected losses in entitled groups;
3. :meth:`on_slot` — pre-decision action; returning True suppresses the
   honest subscription decision for this slot;
4. the honest pipeline runs (unless suppressed); for FLID-DS it calls
   :meth:`on_keys` with whatever DELTA keys it reconstructed;
5. :meth:`after_slot` — post-decision action (key guessing, replay,
   collusion submissions target ``slot + 2``, the governed slot).

:meth:`on_start` / :meth:`on_stop` bracket the scheduled attack window; all
slot hooks fire only while the window is open.  Strategies draw randomness
exclusively from ``self.rng``, a seeded stream handed over at build time, so
experiments stay byte-deterministic.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Optional, Set, TYPE_CHECKING

from .context import AttackContext

if TYPE_CHECKING:  # pragma: no cover - annotation-only (import cycle guard)
    from ..multicast_cc.receiver_base import SlotRecord

__all__ = ["AttackStrategy"]


class AttackStrategy:
    """Base class of all adversary strategies (all hooks default to no-ops)."""

    #: Registry name; set by concrete strategies.
    name: str = ""

    def __init__(
        self,
        start_s: float = 0.0,
        stop_s: Optional[float] = None,
        intensity: float = 1.0,
        params: Optional[Mapping[str, Any]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.start_s = start_s
        self.stop_s = stop_s
        self.intensity = intensity
        self.params: Dict[str, Any] = dict(params or {})
        #: Per-strategy seeded stream — the only randomness source allowed.
        self.rng = rng or random.Random(0)
        self.started = False
        self.stopped = False

    # ------------------------------------------------------------------
    # schedule
    # ------------------------------------------------------------------
    def active(self, now: float) -> bool:
        """True when ``now`` falls inside the attack's scheduled window."""
        if now < self.start_s:
            return False
        return self.stop_s is None or now < self.stop_s

    def param(self, key: str, default: Any) -> Any:
        """A declared strategy parameter, or ``default`` when unset."""
        return self.params.get(key, default)

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def on_attach(self, ctx: AttackContext) -> None:
        """Called once when the receiver joins the session."""

    def on_start(self, ctx: AttackContext) -> None:
        """Called at the first slot boundary inside the attack window."""

    def on_stop(self, ctx: AttackContext) -> None:
        """Called at the first slot boundary past ``stop_s``."""

    # ------------------------------------------------------------------
    # per-slot hooks
    # ------------------------------------------------------------------
    def filter_congestion(
        self, ctx: AttackContext, slot: int, record: SlotRecord, congested: bool
    ) -> bool:
        """Rewrite the congestion verdict the honest pipeline will act on."""
        return congested

    def on_loss(self, ctx: AttackContext, slot: int, lost_groups: Set[int]) -> None:
        """Called when the evaluated slot lost packets in entitled groups."""

    def on_slot(
        self, ctx: AttackContext, slot: int, record: SlotRecord, congested: bool
    ) -> bool:
        """Pre-decision action; return True to suppress the honest decision."""
        return False

    def on_keys(self, ctx: AttackContext, governed_slot: int, keys: Dict[int, int]) -> None:
        """Called with the DELTA keys the honest pipeline reconstructed."""

    def after_slot(
        self, ctx: AttackContext, slot: int, record: SlotRecord, congested: bool
    ) -> None:
        """Post-decision action; submissions here target slot ``slot + 2``."""
