"""The capability surface strategies act through.

An :class:`AttackContext` is created per adversarial receiver and shared by
every strategy stacked on it.  It exposes exactly the attack surface of the
paper's threat model (§2.1): the receiver's edge router is the single point
of access, reachable through IGMP membership reports and SIGMA messages, plus
the receiver's own subscription state.  Strategies never touch router or
forwarding internals directly — whatever an attack achieves, it achieves
through the same messages an honest receiver could send.

The context also carries the per-receiver attack counters (join attempts,
guesses, replays, shared-key submissions) that the protection metrics and the
compatibility shims report, and hands out named collusion pools: plain
per-network dictionaries through which colluding receivers exchange
reconstructed keys out of band (§4.3's key-sharing attack).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..multicast_cc.decision import forbidden_groups as _forbidden_groups
from ..simulator.address import GroupAddress
from ..simulator.igmp import IgmpHostInterface

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..multicast_cc.receiver_base import LayeredReceiverBase

__all__ = ["AttackContext", "CollusionPool", "COUNTER_KEYS"]

#: Governed slots a collusion pool retains before pruning (memory bound).
POOL_RETAINED_SLOTS = 8

#: The attack counters every context carries, in export order.
COUNTER_KEYS = (
    "igmp_attempts",
    "guess_attempts",
    "replay_attempts",
    "shared_key_submissions",
    "suppressed_slots",
)


class CollusionPool:
    """Out-of-band key exchange between colluding receivers.

    Maps governed slot -> {group index -> key}.  Publishing merges; readers
    get whatever any colluder managed to reconstruct.  The pool lives on the
    network object, so colluders across routers (and sessions) can share it
    while separate experiments never do.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._keys: Dict[int, Dict[int, int]] = {}
        self.published = 0

    def publish(self, governed_slot: int, keys: Dict[int, int], members: int = 1) -> None:
        """Merge ``keys`` for ``governed_slot`` on behalf of ``members`` colluders.

        A cohort of N colluders reconstructs identical keys and publishes
        them once with ``members=N``; the ``published`` tally then books
        exactly the N per-member contributions that N individual colluders
        would have booked, while the merged key map is identical either way
        (the member-weighted aggregation design of ``docs/threat-model.md``).
        """
        if not keys:
            return
        slot_keys = self._keys.setdefault(governed_slot, {})
        slot_keys.update(keys)
        self.published += len(keys) * members
        for old in [s for s in self._keys if s < governed_slot - POOL_RETAINED_SLOTS]:
            del self._keys[old]

    def keys_for(self, governed_slot: int) -> Dict[int, int]:
        return dict(self._keys.get(governed_slot, {}))


class AttackContext:
    """Capabilities and shared counters of one adversarial receiver."""

    def __init__(self, receiver: "LayeredReceiverBase") -> None:
        self.receiver = receiver
        self.network = receiver.network
        self.spec = receiver.spec
        self.sim = receiver.sim
        self._bare_igmp: Optional[IgmpHostInterface] = None
        #: Attackers this context speaks for: 1 for an individual adversarial
        #: receiver, N for an adversarial cohort.  Every attack counter is
        #: booked per member through this weight, so a cohort of N attackers
        #: reports exactly what N individual attackers would.
        self.member_count = getattr(receiver, "population", 1)
        # Attack counters, shared by all strategies on this receiver.
        for key in COUNTER_KEYS:
            setattr(self, key, 0)

    # ------------------------------------------------------------------
    # receiver state
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def level(self) -> int:
        return self.receiver.level

    @property
    def group_count(self) -> int:
        return self.spec.group_count

    @property
    def protected(self) -> bool:
        """True when the receiver speaks FLID-DS (SIGMA-guarded edge)."""
        return getattr(self.receiver, "sigma", None) is not None

    def address_of(self, group: int) -> GroupAddress:
        return self.spec.address_of(group)

    def group_of(self, address: GroupAddress) -> Optional[int]:
        return self.spec.group_index_of(address)

    def entitled_level(self, slot: int) -> int:
        """The level the receiver legitimately holds for ``slot``."""
        entitled = getattr(self.receiver, "entitled_level", None)
        if entitled is not None:
            return entitled(slot)
        return self.receiver.level

    def forbidden_groups(self, slot: int) -> List[int]:
        """Groups above the receiver's legitimate entitlement for ``slot``."""
        return list(_forbidden_groups(self.entitled_level(slot), self.group_count))

    def set_level(self, level: int) -> None:
        """Overwrite the receiver's subscription level (and its history)."""
        self.receiver._set_level(level)

    # ------------------------------------------------------------------
    # IGMP surface
    # ------------------------------------------------------------------
    def _igmp(self) -> IgmpHostInterface:
        """The receiver's IGMP interface, or a bare one for SIGMA hosts.

        A FLID-DS receiver has no IGMP interface of its own; the bare one
        sends the same membership reports over the same control channel,
        which a SIGMA edge router ignores — exactly the paper's Figure 7
        attack vector.
        """
        own = getattr(self.receiver, "igmp", None)
        if own is not None:
            return own
        if self._bare_igmp is None:
            self._bare_igmp = IgmpHostInterface(self.receiver.host)
        return self._bare_igmp

    def igmp_join(self, group: int) -> None:
        """Send an IGMP membership report for ``group`` (booked per member)."""
        self.igmp_attempts += self.member_count
        self._igmp().join(self.address_of(group))

    def igmp_leave(self, group: int) -> None:
        self._igmp().leave(self.address_of(group))

    def igmp_join_all(self) -> None:
        for group in range(1, self.group_count + 1):
            self.igmp_join(group)

    # ------------------------------------------------------------------
    # SIGMA surface
    # ------------------------------------------------------------------
    def sigma_subscribe(self, governed_slot: int, pairs: List[Tuple[GroupAddress, int]]) -> None:
        """Submit (group address, key) pairs to the edge router, if SIGMA."""
        sigma = getattr(self.receiver, "sigma", None)
        if sigma is not None and pairs:
            sigma.subscribe(governed_slot, pairs)

    def sigma_rejoin(self) -> None:
        """Re-run the key-less session-join (grace-window churn vector)."""
        sigma = getattr(self.receiver, "sigma", None)
        if sigma is not None:
            sigma.session_join(self.spec.minimal_group())

    # ------------------------------------------------------------------
    # collusion
    # ------------------------------------------------------------------
    def collusion_pool(self, name: str) -> CollusionPool:
        """The named key-sharing pool, shared across this network's receivers."""
        pools = getattr(self.network, "_adversary_pools", None)
        if pools is None:
            pools = {}
            self.network._adversary_pools = pools
        pool = pools.get(name)
        if pool is None:
            pool = CollusionPool(name)
            pools[name] = pool
        return pool

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Attack counters, in the shape the protection metrics export."""
        return {key: getattr(self, key) for key in COUNTER_KEYS}
