"""Constant-bit-rate (CBR) and on-off CBR sources.

The paper's evaluation uses an on-off CBR session in two roles:

* background cross traffic transmitting at 10 % of the bottleneck capacity
  with 5-second on and off periods (Figure 8(d));
* a square-wave disturbance at 800 Kbps between t = 45 s and t = 75 s used to
  probe the responsiveness of FLID-DL versus FLID-DS (Figure 8(e)).

``CbrSource`` emits fixed-size packets at a constant rate; ``OnOffCbrSource``
gates it with alternating on/off periods; ``CbrSink`` simply counts what
arrives (useful for asserting that the source behaves as configured).
"""

from __future__ import annotations

from typing import Optional

from ..simulator.engine import Event, Simulator
from ..simulator.monitors import ThroughputMonitor
from ..simulator.node import Host, PacketAgent
from ..simulator.packet import Packet

__all__ = ["CbrSource", "OnOffCbrSource", "CbrSink"]


class CbrSource:
    """Sends ``packet_bytes``-sized packets at ``rate_bps`` toward a host/port."""

    def __init__(
        self,
        host: Host,
        destination: Host,
        port: int,
        rate_bps: float,
        packet_bytes: int = 576,
        name: str = "",
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"CBR rate must be positive (got {rate_bps})")
        self.host = host
        self.destination = destination
        self.port = port
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self.name = name or f"cbr-{host.name}-{port}"
        self.sim: Simulator = host.sim
        self.packets_sent = 0
        self._running = False
        self._next_event: Optional[Event] = None

    @property
    def interval_s(self) -> float:
        """Inter-packet interval at the configured rate."""
        return self.packet_bytes * 8.0 / self.rate_bps

    # ------------------------------------------------------------------
    def start(self, delay_s: float = 0.0) -> None:
        if self._running:
            return
        self._running = True
        self._next_event = self.sim.schedule(delay_s, self._send_next)

    def stop(self) -> None:
        self._running = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    # ------------------------------------------------------------------
    def _send_next(self) -> None:
        if not self._running:
            return
        packet = Packet(
            source=self.host.address,
            destination=self.destination.address,
            size_bytes=self.packet_bytes,
            protocol="cbr",
            headers={"port": self.port},
            created_at=self.sim.now,
        )
        self.packets_sent += 1
        self.host.send(packet)
        self._next_event = self.sim.schedule(self.interval_s, self._send_next)


class OnOffCbrSource:
    """A CBR source gated by alternating on and off periods.

    The source starts in the *off* state at :meth:`start` time unless
    ``start_on=True``; each on-period lasts ``on_s`` and each off-period
    ``off_s`` seconds.  An optional ``active_window`` confines all activity
    to an absolute time interval (used for the Figure 8(e) burst).
    """

    def __init__(
        self,
        host: Host,
        destination: Host,
        port: int,
        rate_bps: float,
        on_s: float,
        off_s: float,
        packet_bytes: int = 576,
        start_on: bool = True,
        active_window: Optional[tuple[float, float]] = None,
        name: str = "",
    ) -> None:
        if on_s <= 0 or off_s < 0:
            raise ValueError("on_s must be positive and off_s non-negative")
        self.source = CbrSource(host, destination, port, rate_bps, packet_bytes, name)
        self.on_s = on_s
        self.off_s = off_s
        self.start_on = start_on
        self.active_window = active_window
        self.sim = host.sim
        self._running = False

    @property
    def packets_sent(self) -> int:
        return self.source.packets_sent

    # ------------------------------------------------------------------
    def start(self, delay_s: float = 0.0) -> None:
        if self._running:
            return
        self._running = True
        if self.active_window is not None:
            begin, end = self.active_window
            start_at = max(begin - self.sim.now, 0.0)
            self.sim.schedule(start_at, self._enter_on)
            self.sim.schedule(max(end - self.sim.now, 0.0), self._shutdown)
        elif self.start_on:
            self.sim.schedule(delay_s, self._enter_on)
        else:
            self.sim.schedule(delay_s, self._enter_off)

    def stop(self) -> None:
        self._shutdown()

    # ------------------------------------------------------------------
    def _enter_on(self) -> None:
        if not self._running:
            return
        self.source.start()
        if self.active_window is None:
            self.sim.schedule(self.on_s, self._enter_off)
        # Inside an active window the source simply stays on until shutdown.

    def _enter_off(self) -> None:
        if not self._running:
            return
        self.source.stop()
        if self.off_s > 0:
            self.sim.schedule(self.off_s, self._enter_on)
        else:
            self.sim.schedule(0.0, self._enter_on)

    def _shutdown(self) -> None:
        self._running = False
        self.source.stop()


class CbrSink(PacketAgent):
    """Counts CBR packets delivered to a host/port."""

    def __init__(self, host: Host, port: int, bin_width_s: float = 1.0, name: str = "") -> None:
        self.host = host
        self.port = port
        self.name = name or f"cbr-sink-{host.name}-{port}"
        self.monitor = ThroughputMonitor(host.sim, bin_width_s=bin_width_s, name=self.name)
        self.packets_received = 0
        host.register_agent(port, self)

    def handle_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        self.monitor.record(packet.size_bytes)
