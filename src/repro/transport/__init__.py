"""Unicast transport protocols used as competing traffic in the evaluation.

TCP Reno (the well-behaved unicast competition of Figures 1, 7 and 8(d)) and
constant-bit-rate / on-off CBR sources (the background and burst traffic of
Figures 8(d) and 8(e)).
"""

from .cbr import CbrSink, CbrSource, OnOffCbrSource
from .tcp import ACK_SIZE_BYTES, TcpConnection, TcpRenoSender, TcpSink

__all__ = [
    "CbrSink",
    "CbrSource",
    "OnOffCbrSource",
    "ACK_SIZE_BYTES",
    "TcpConnection",
    "TcpRenoSender",
    "TcpSink",
]
