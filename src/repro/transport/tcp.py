"""TCP Reno over the simulator.

The paper's evaluation uses TCP Reno flows as the well-behaved unicast
competition (receivers T1 and T2 of Figure 1, and the cross traffic of
Figure 8(d)).  This module implements the canonical Reno sender — slow start,
congestion avoidance, fast retransmit after three duplicate ACKs, fast
recovery, and an exponential-backoff retransmission timer with
Jacobson/Karels RTT estimation — plus a cumulative-ACK sink.

Only the congestion behaviour matters for the reproduction (the figures show
throughput, not byte-exact traces), so segments are modelled at packet
granularity: sequence numbers count segments, every data segment is
``segment_bytes`` long, and ACKs are 40-byte packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..simulator.engine import Event, Simulator
from ..simulator.monitors import ThroughputMonitor
from ..simulator.node import Host, PacketAgent
from ..simulator.packet import Packet

__all__ = ["TcpRenoSender", "TcpSink", "TcpConnection", "ACK_SIZE_BYTES"]

ACK_SIZE_BYTES = 40

#: Initial retransmission timeout before any RTT sample (RFC 6298 uses 1 s;
#: NS-2's default is also 1 s at the granularity we care about).
INITIAL_RTO_S = 1.0
MIN_RTO_S = 0.2
MAX_RTO_S = 60.0


class TcpRenoSender:
    """Reno congestion control with an unlimited (FTP-like) data supply."""

    def __init__(
        self,
        host: Host,
        destination: Host,
        port: int,
        segment_bytes: int = 576,
        initial_ssthresh: float = 64.0,
        name: str = "",
        send_jitter_s: float = 0.001,
    ) -> None:
        self.host = host
        self.destination = destination
        self.port = port
        self.segment_bytes = segment_bytes
        self.name = name or f"tcp-{host.name}-{port}"
        self.sim: Simulator = host.sim
        # Small uniform per-segment send jitter (NS-2's "overhead_" knob):
        # without it, same-RTT Reno flows behind one drop-tail queue phase-lock
        # and share the bottleneck very unevenly.
        self.send_jitter_s = send_jitter_s
        import hashlib
        import random as _random

        # Seed from a stable digest, not the built-in string hash: hash() is
        # salted per process (PYTHONHASHSEED), which would make runs diverge
        # between the serial and process-pool experiment runner paths.
        digest = hashlib.sha256(f"tcp-jitter:{host.name}:{port}".encode()).digest()
        self._jitter_rng = _random.Random(int.from_bytes(digest[:8], "big"))
        self._last_departure = 0.0

        # Congestion control state (window units are segments).
        self.cwnd = 1.0
        self.ssthresh = initial_ssthresh
        self.next_seq = 0
        self.highest_acked = -1  # highest cumulatively acknowledged sequence
        self.dup_acks = 0
        self.in_fast_recovery = False
        self.recover_seq = -1

        # RTT estimation (Jacobson/Karels) and retransmission timer.
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = INITIAL_RTO_S
        self._rto_event: Optional[Event] = None
        self._send_times: Dict[int, float] = {}
        self._retransmitted: set[int] = set()

        # Statistics.
        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0

        host.register_agent(("tcp-sender", port), _SenderAgent(self))
        self._started = False

    # ------------------------------------------------------------------
    # public control
    # ------------------------------------------------------------------
    def start(self, delay_s: float = 0.0) -> None:
        """Begin transmitting ``delay_s`` seconds from now."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(delay_s, self._send_allowed)

    @property
    def flight_size(self) -> int:
        """Segments sent but not yet cumulatively acknowledged."""
        return self.next_seq - (self.highest_acked + 1)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def _send_allowed(self) -> None:
        """Send as many new segments as the congestion window permits."""
        while self.flight_size < int(self.cwnd):
            self._transmit(self.next_seq)
            self.next_seq += 1

    def _transmit(self, seq: int, is_retransmission: bool = False) -> None:
        packet = Packet(
            source=self.host.address,
            destination=self.destination.address,
            size_bytes=self.segment_bytes,
            protocol="tcp",
            headers={
                "port": self.port,
                "kind": "data",
                "seq": seq,
                "reply_port": ("tcp-sender", self.port),
            },
            created_at=self.sim.now,
        )
        self.segments_sent += 1
        # A segment re-sent through the normal window path after a go-back-N
        # rewind is still a retransmission (it sits in _retransmitted): count
        # it and keep Karn's rule by never recording a send time for it.
        if is_retransmission or seq in self._retransmitted:
            self.retransmissions += 1
            self._retransmitted.add(seq)
        else:
            self._send_times[seq] = self.sim.now
        if self.send_jitter_s > 0:
            # Jitter departures without ever reordering segments of this flow.
            departure = max(
                self.sim.now + self._jitter_rng.uniform(0.0, self.send_jitter_s),
                self._last_departure + 1e-6,
            )
            self._last_departure = departure
            self.sim.call_after(departure - self.sim.now, self.host.send, packet)
        else:
            self.host.send(packet)
        if self._rto_event is None:
            self._arm_rto()

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def handle_ack(self, ack: int) -> None:
        """Process a cumulative ACK acknowledging everything below ``ack``."""
        acked_seq = ack - 1
        if acked_seq > self.highest_acked:
            self._handle_new_ack(acked_seq)
        elif acked_seq == self.highest_acked:
            self._handle_duplicate_ack()
        self._send_allowed()

    def _handle_new_ack(self, acked_seq: int) -> None:
        self._sample_rtt(acked_seq)
        newly_acked = acked_seq - self.highest_acked
        self.highest_acked = acked_seq
        self.dup_acks = 0
        for seq in list(self._send_times):
            if seq <= acked_seq:
                self._send_times.pop(seq, None)

        if self.in_fast_recovery:
            if acked_seq >= self.recover_seq:
                # Full ACK: leave fast recovery and deflate the window.
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
            else:
                # Partial ACK (NewReno-style hole): retransmit the next hole
                # but stay in recovery; classic Reno would often stall here,
                # the partial-ack retransmit keeps long runs stable.
                self._transmit(acked_seq + 1, is_retransmission=True)
                self.cwnd = max(self.ssthresh, self.cwnd - newly_acked + 1)
        elif self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance

        self._arm_rto(restart=True)

    def _handle_duplicate_ack(self) -> None:
        self.dup_acks += 1
        if self.in_fast_recovery:
            self.cwnd += 1.0  # window inflation per extra duplicate ACK
            return
        if self.dup_acks == 3:
            self.fast_retransmits += 1
            self.ssthresh = max(self.flight_size / 2.0, 2.0)
            self.recover_seq = self.next_seq - 1
            self.in_fast_recovery = True
            self.cwnd = self.ssthresh + 3.0
            self._transmit(self.highest_acked + 1, is_retransmission=True)
            self._arm_rto(restart=True)

    # ------------------------------------------------------------------
    # RTT estimation and retransmission timer
    # ------------------------------------------------------------------
    def _sample_rtt(self, acked_seq: int) -> None:
        # Karn's rule: never sample a retransmitted segment.
        sent_at = self._send_times.get(acked_seq)
        if sent_at is None or acked_seq in self._retransmitted:
            return
        sample = self.sim.now - sent_at
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(MAX_RTO_S, max(MIN_RTO_S, self.srtt + 4.0 * self.rttvar))

    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_event is not None:
            if not restart:
                return
            self._rto_event.cancel()
        if self.flight_size <= 0 and self.next_seq > 0:
            self._rto_event = None
            return
        self._rto_event = self.sim.schedule(self.rto, self._on_timeout)

    def _on_timeout(self) -> None:
        self._rto_event = None
        if self.flight_size <= 0:
            return
        self.timeouts += 1
        self.ssthresh = max(self.flight_size / 2.0, 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.in_fast_recovery = False
        self.rto = min(MAX_RTO_S, self.rto * 2.0)
        # Go-back-N rewind (NS-2 Reno's t_seqno_ = highest_ack_ + 1): every
        # unacknowledged segment is presumed lost and will be resent as the
        # window reopens.  Without the rewind, flight_size stays inflated, the
        # window never admits anything, and a flow that lost a burst trickles
        # out one retransmission per (exponentially backed-off) RTO — starving
        # it for the rest of the experiment.
        for seq in range(self.highest_acked + 1, self.next_seq):
            self._send_times.pop(seq, None)
            self._retransmitted.add(seq)  # Karn: no RTT samples from resends
        self.next_seq = self.highest_acked + 1
        self._transmit(self.next_seq, is_retransmission=True)
        self.next_seq += 1
        self._arm_rto(restart=True)


class _SenderAgent(PacketAgent):
    """Delivers ACK packets arriving at the sender host to the Reno state machine."""

    def __init__(self, sender: TcpRenoSender) -> None:
        self.sender = sender

    def handle_packet(self, packet: Packet) -> None:
        if packet.headers.get("kind") == "ack":
            self.sender.handle_ack(packet.headers["ack"])


class TcpSink(PacketAgent):
    """Cumulative-ACK receiver; records goodput in a throughput monitor."""

    def __init__(
        self,
        host: Host,
        port: int,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        self.host = host
        self.port = port
        self.name = name or f"tcp-sink-{host.name}-{port}"
        self.monitor = ThroughputMonitor(host.sim, bin_width_s=bin_width_s, name=self.name)
        self._received: set[int] = set()
        self._next_expected = 0
        self.acks_sent = 0
        host.register_agent(port, self)

    def handle_packet(self, packet: Packet) -> None:
        if packet.headers.get("kind") != "data":
            return
        seq = packet.headers["seq"]
        if seq not in self._received:
            self._received.add(seq)
            self.monitor.record(packet.size_bytes)
        while self._next_expected in self._received:
            self._received.discard(self._next_expected)
            self._next_expected += 1
        self._send_ack(packet)

    def _send_ack(self, data_packet: Packet) -> None:
        ack = Packet(
            source=self.host.address,
            destination=data_packet.source,
            size_bytes=ACK_SIZE_BYTES,
            protocol="tcp",
            headers={
                "port": data_packet.headers.get("reply_port"),
                "kind": "ack",
                "ack": self._next_expected,
            },
            created_at=self.host.sim.now,
        )
        self.acks_sent += 1
        self.host.send(ack)


@dataclass
class TcpConnection:
    """Convenience bundle: a Reno sender and its sink, wired together."""

    sender: TcpRenoSender
    sink: TcpSink

    @classmethod
    def create(
        cls,
        source_host: Host,
        sink_host: Host,
        port: int,
        segment_bytes: int = 576,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> "TcpConnection":
        """Create a sender on ``source_host`` and a sink on ``sink_host``."""
        sink = TcpSink(sink_host, port, bin_width_s=bin_width_s, name=f"{name}-sink" if name else "")
        sender = TcpRenoSender(
            source_host, sink_host, port, segment_bytes=segment_bytes, name=name
        )
        return cls(sender=sender, sink=sink)

    def start(self, delay_s: float = 0.0) -> None:
        self.sender.start(delay_s)

    @property
    def monitor(self) -> ThroughputMonitor:
        return self.sink.monitor
