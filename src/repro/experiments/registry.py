"""Named scenario registry.

Experiments register :class:`~repro.experiments.spec.ScenarioSpec` builders
under a stable name, making every scenario addressable from the command line
(``python -m repro run <name>``), from the parallel runner, and from tests.
A builder is a callable returning a spec; keyword parameters are forwarded,
so registered scenarios stay parameterisable (seed, duration, scale knobs).

The paper's figure scenarios register themselves from their modules
(:mod:`repro.experiments.figure1`, :mod:`repro.experiments.figure8`); the
multi-bottleneck showcases on the new parking-lot / star / binary-tree
topologies are registered here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .config import PAPER_DEFAULTS
from .spec import CbrDecl, ScenarioSpec, SessionDecl, TcpDecl

__all__ = [
    "ScenarioEntry",
    "register_scenario",
    "scenario_spec",
    "scenario_entry",
    "list_scenarios",
]


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario: its name, a short description, a builder."""

    name: str
    description: str
    builder: Callable[..., ScenarioSpec]

    def build(self, **params) -> ScenarioSpec:
        return self.builder(**params)


_REGISTRY: Dict[str, ScenarioEntry] = {}


def register_scenario(name: str, description: str):
    """Decorator registering ``builder(**params) -> ScenarioSpec`` as ``name``."""

    def decorate(builder: Callable[..., ScenarioSpec]) -> Callable[..., ScenarioSpec]:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = ScenarioEntry(name=name, description=description, builder=builder)
        return builder

    return decorate


def scenario_entry(name: str) -> ScenarioEntry:
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(_REGISTRY)}"
        ) from exc


def scenario_spec(name: str, **params) -> ScenarioSpec:
    """Build the named scenario's spec with builder keyword ``params``."""
    return scenario_entry(name).build(**params)


def list_scenarios() -> List[ScenarioEntry]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# showcases on the multi-bottleneck topologies
# ----------------------------------------------------------------------
@register_scenario(
    "parking-lot-attack",
    "Inflated-subscription attack on a 3-hop parking lot: the attacker sits "
    "one hop in, its victims span every bottleneck",
)
def parking_lot_attack(
    protected: bool = True,
    hops: int = 3,
    attack_start_s: float = 30.0,
    duration_s: Optional[float] = 90.0,
    config=PAPER_DEFAULTS,
) -> ScenarioSpec:
    receivers = hops
    routers = tuple(f"r{i + 1}" for i in range(receivers))
    return ScenarioSpec(
        name="parking-lot-attack",
        protected=protected,
        topology="parking-lot",
        topology_params={
            "hops": hops,
            "bottleneck_bandwidth_bps": 2 * config.fair_share_bps,
        },
        sessions=(
            SessionDecl(
                "victims",
                receivers=receivers,
                receiver_routers=routers,
            ),
            SessionDecl(
                "attacker",
                receivers=1,
                misbehaving=(0,),
                attack_start_s=attack_start_s,
                receiver_routers=("r1",),
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


@register_scenario(
    "star-fanout",
    "One session fanning out to independently-bottlenecked star arms, with a "
    "TCP flow competing on the first arm",
)
def star_fanout(
    protected: bool = True,
    arms: int = 4,
    duration_s: Optional[float] = 60.0,
    config=PAPER_DEFAULTS,
) -> ScenarioSpec:
    return ScenarioSpec(
        name="star-fanout",
        protected=protected,
        topology="star",
        topology_params={
            "arms": arms,
            "arm_bandwidth_bps": 2 * config.fair_share_bps,
        },
        sessions=(
            SessionDecl(
                "fanout",
                receivers=arms,
                receiver_routers=tuple(f"arm{i + 1}" for i in range(arms)),
            ),
        ),
        tcp=(TcpDecl("cross", receiver_router="arm1"),),
        duration_s=duration_s,
        config=config,
    )


@register_scenario(
    "tree-convergence",
    "Staggered receivers joining across the leaves of a binary distribution "
    "tree, with a CBR burst squeezing the root link",
)
def tree_convergence(
    protected: bool = True,
    depth: int = 3,
    duration_s: Optional[float] = 60.0,
    config=PAPER_DEFAULTS,
) -> ScenarioSpec:
    leaves = 2 ** (depth - 1)
    first_leaf = 2 ** (depth - 1) - 1
    return ScenarioSpec(
        name="tree-convergence",
        protected=protected,
        topology="binary-tree",
        topology_params={
            "depth": depth,
            "link_bandwidth_bps": 4 * config.fair_share_bps,
        },
        sessions=(
            SessionDecl(
                "tree",
                receivers=leaves,
                receiver_start_times=tuple(5.0 * i for i in range(leaves)),
                receiver_routers=tuple(f"t{first_leaf + i}" for i in range(leaves)),
            ),
        ),
        cbr=(
            CbrDecl(
                "burst",
                rate_bps=2 * config.fair_share_bps,
                on_s=15.0,
                off_s=1.0,
                active_window=(30.0, 45.0),
                receiver_router=f"t{first_leaf}",
            ),
        ),
        duration_s=duration_s,
        config=config,
    )
