"""Figure 8 — preservation of FLID-DL's congestion control properties.

Section 5.3 checks that integrating DELTA and SIGMA does not change the
congestion behaviour of the protected protocol.  Each sub-figure is a
separate experiment:

* 8(a)/8(b)/8(c) — individual and average receiver throughput as the number
  of multicast sessions grows from 1 to 18, without cross traffic, for
  FLID-DL and FLID-DS;
* 8(d) — the same comparison with cross traffic (one TCP session per
  multicast session plus an on-off CBR source at 10 % of the bottleneck);
* 8(e) — responsiveness to an 800 Kbps CBR burst between 45 s and 75 s;
* 8(f) — average throughput of 20 receivers whose round-trip times spread
  uniformly between 30 ms and 220 ms;
* 8(g)/8(h) — subscription convergence of 4 receivers joining at 0/10/20/30 s.

Every function runs one protocol variant so the benchmark harness can place
FLID-DL and FLID-DS runs side by side exactly as the paper plots them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.convergence import convergence_time
from ..simulator.monitors import ThroughputSample
from .config import PAPER_DEFAULTS, ExperimentConfig
from .registry import register_scenario
from .runner import ExperimentRunner
from .scenario import Scenario
from .spec import CbrDecl, ScenarioSpec, SessionDecl, TcpDecl

__all__ = [
    "ThroughputVsSessionsResult",
    "ResponsivenessResult",
    "RttFairnessResult",
    "ConvergenceResult",
    "throughput_vs_sessions_spec",
    "responsiveness_spec",
    "convergence_spec",
    "run_throughput_vs_sessions",
    "run_responsiveness",
    "run_heterogeneous_rtt",
    "run_convergence",
    "PAPER_SESSION_COUNTS",
]

#: Session counts on the x-axis of Figures 8(a)-8(d).
PAPER_SESSION_COUNTS: Tuple[int, ...] = (1, 2, 4, 6, 8, 10, 12, 14, 16, 18)


# ----------------------------------------------------------------------
# Figures 8(a)-8(d): throughput versus the number of sessions
# ----------------------------------------------------------------------
@dataclass
class ThroughputVsSessionsResult:
    """Per-session-count receiver throughput for one protocol variant."""

    protected: bool
    cross_traffic: bool
    fair_share_kbps: float
    #: session count -> list of individual receiver averages (Kbps).
    individual_kbps: Dict[int, List[float]] = field(default_factory=dict)
    #: session count -> average over receivers (Kbps).
    average_kbps: Dict[int, float] = field(default_factory=dict)
    #: session count -> list of TCP averages (only with cross traffic).
    tcp_kbps: Dict[int, List[float]] = field(default_factory=dict)

    def series(self) -> List[Tuple[int, float]]:
        """(session count, average Kbps) points, the paper's average-rate line."""
        return sorted(self.average_kbps.items())


def throughput_vs_sessions_spec(
    protected: bool = False,
    count: int = 4,
    cross_traffic: bool = False,
    config: Optional[ExperimentConfig] = None,
    duration_s: Optional[float] = None,
) -> ScenarioSpec:
    """Declarative form of one Figure 8(a)-(d) point: ``count`` sessions.

    With cross traffic every multicast session is matched by a TCP session,
    all with the same 250 Kbps fair share, plus an on-off CBR source at 10 %
    of the bottleneck.
    """
    config = config or PAPER_DEFAULTS
    competing_sessions = count * 2 if cross_traffic else count
    tcp = tuple(TcpDecl(f"tcp{i + 1}") for i in range(count)) if cross_traffic else ()
    cbr = ()
    if cross_traffic:
        bottleneck_bps = config.fair_share_bps * competing_sessions
        cbr = (CbrDecl("cbr", rate_bps=0.1 * bottleneck_bps, on_s=5.0, off_s=5.0),)
    variant = "ds" if protected else "dl"
    suffix = "-cross" if cross_traffic else ""
    return ScenarioSpec(
        name=f"figure8-throughput-{variant}{suffix}-{count}",
        protected=protected,
        expected_sessions=competing_sessions,
        sessions=tuple(SessionDecl(f"mc{i + 1}") for i in range(count)),
        tcp=tcp,
        cbr=cbr,
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "figure8-throughput",
    "Figures 8(a)-(d): receiver throughput with N competing sessions "
    "(params: protected, count, cross_traffic)",
)(throughput_vs_sessions_spec)


def run_throughput_vs_sessions(
    protected: bool,
    session_counts: Sequence[int] = PAPER_SESSION_COUNTS,
    cross_traffic: bool = False,
    config: Optional[ExperimentConfig] = None,
    duration_s: Optional[float] = None,
    jobs: int = 1,
    runner: Optional[ExperimentRunner] = None,
) -> ThroughputVsSessionsResult:
    """Run the Figure 8(a)/(b)/(c)/(d) sweep for one protocol variant.

    The per-count experiments are independent, so the sweep fans out over the
    :class:`ExperimentRunner` — ``jobs > 1`` runs them in parallel worker
    processes with results identical to the serial path.
    """
    config = config or PAPER_DEFAULTS
    duration = config.duration_s if duration_s is None else duration_s
    specs = [
        throughput_vs_sessions_spec(
            protected=protected,
            count=count,
            cross_traffic=cross_traffic,
            config=config,
            duration_s=duration,
        )
        for count in session_counts
    ]
    runner = runner or ExperimentRunner(jobs=jobs)
    result = ThroughputVsSessionsResult(
        protected=protected,
        cross_traffic=cross_traffic,
        fair_share_kbps=config.fair_share_bps / 1e3,
    )
    for count, run in zip(session_counts, runner.run(specs)):
        sessions = run.metrics["multicast"]
        individual = [
            sessions[f"mc{i + 1}"]["receiver_kbps"][0] for i in range(count)
        ]
        result.individual_kbps[count] = individual
        result.average_kbps[count] = sum(individual) / len(individual)
        if cross_traffic:
            result.tcp_kbps[count] = [
                run.metrics["tcp_kbps"][f"tcp{i + 1}"] for i in range(count)
            ]
    return result


# ----------------------------------------------------------------------
# Figure 8(e): responsiveness to a CBR burst
# ----------------------------------------------------------------------
@dataclass
class ResponsivenessResult:
    """Throughput time-series of one multicast receiver around a CBR burst."""

    protected: bool
    burst_window: Tuple[float, float]
    burst_rate_kbps: float
    series: List[ThroughputSample] = field(default_factory=list)
    average_before_kbps: float = 0.0
    average_during_kbps: float = 0.0
    average_after_kbps: float = 0.0

    @property
    def yields_to_burst(self) -> bool:
        """Did the multicast session release bandwidth during the burst?"""
        return self.average_during_kbps < self.average_before_kbps

    @property
    def recovers_after_burst(self) -> bool:
        """Did it climb back after the burst ended?"""
        return self.average_after_kbps > 1.2 * self.average_during_kbps


def responsiveness_spec(
    protected: bool = False,
    config: Optional[ExperimentConfig] = None,
    bottleneck_bps: float = 1_000_000.0,
    burst_rate_bps: float = 800_000.0,
    burst_window: Tuple[float, float] = (45.0, 75.0),
    duration_s: float = 110.0,
) -> ScenarioSpec:
    """Declarative form of the Figure 8(e) burst-response experiment."""
    config = config or PAPER_DEFAULTS
    return ScenarioSpec(
        name=f"figure8-responsiveness-{'ds' if protected else 'dl'}",
        protected=protected,
        expected_sessions=1,
        bottleneck_bps=bottleneck_bps,
        sessions=(SessionDecl("mc"),),
        cbr=(
            CbrDecl(
                "burst",
                rate_bps=burst_rate_bps,
                on_s=burst_window[1] - burst_window[0],
                off_s=1.0,
                active_window=burst_window,
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "figure8-responsiveness",
    "Figure 8(e): responsiveness to an 800 Kbps CBR burst between 45 s and 75 s",
)(responsiveness_spec)


def run_responsiveness(
    protected: bool,
    config: Optional[ExperimentConfig] = None,
    bottleneck_bps: float = 1_000_000.0,
    burst_rate_bps: float = 800_000.0,
    burst_window: Tuple[float, float] = (45.0, 75.0),
    duration_s: float = 110.0,
) -> ResponsivenessResult:
    """Run the Figure 8(e) burst-response experiment for one protocol variant."""
    spec = responsiveness_spec(
        protected,
        config=config,
        bottleneck_bps=bottleneck_bps,
        burst_rate_bps=burst_rate_bps,
        burst_window=burst_window,
        duration_s=duration_s,
    )
    config = spec.config
    scenario = Scenario.from_spec(spec)
    session = scenario.sessions[0]
    scenario.run(duration_s)
    monitor = session.receiver.monitor
    result = ResponsivenessResult(
        protected=protected,
        burst_window=burst_window,
        burst_rate_kbps=burst_rate_bps / 1e3,
        series=monitor.smoothed_series(window_bins=5, end_time_s=duration_s),
        average_before_kbps=monitor.average_rate_kbps(config.warmup_s, burst_window[0]),
        average_during_kbps=monitor.average_rate_kbps(burst_window[0] + 5.0, burst_window[1]),
        average_after_kbps=monitor.average_rate_kbps(burst_window[1] + 10.0, duration_s),
    )
    return result


# ----------------------------------------------------------------------
# Figure 8(f): heterogeneous round-trip times
# ----------------------------------------------------------------------
@dataclass
class RttFairnessResult:
    """Average throughput of receivers with heterogeneous round-trip times."""

    protected: bool
    #: (round-trip time in ms, average throughput in Kbps), one per receiver.
    points: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def spread_ratio(self) -> float:
        """Max/min receiver throughput; close to 1.0 means RTT-independent."""
        rates = [rate for _, rate in self.points if rate > 0]
        if not rates:
            return float("inf")
        return max(rates) / min(rates)


def run_heterogeneous_rtt(
    protected: bool,
    config: Optional[ExperimentConfig] = None,
    receiver_count: int = 20,
    rtt_range_ms: Tuple[float, float] = (30.0, 220.0),
    duration_s: float = 120.0,
) -> RttFairnessResult:
    """Run the Figure 8(f) experiment for one protocol variant.

    The bottleneck propagation delay is 5 ms (as in the paper) and the
    receivers' access-link delays are chosen so their round-trip times spread
    uniformly across ``rtt_range_ms``.
    """
    config = config or PAPER_DEFAULTS
    fixed_one_way_ms = (config.access_delay_s + 0.005) * 1e3  # sender access + bottleneck
    rtts = [
        rtt_range_ms[0] + (rtt_range_ms[1] - rtt_range_ms[0]) * i / max(1, receiver_count - 1)
        for i in range(receiver_count)
    ]
    access_delays = [max(0.0005, (rtt / 2.0 - fixed_one_way_ms) / 1e3) for rtt in rtts]
    spec = ScenarioSpec(
        name=f"figure8-rtt-fairness-{'ds' if protected else 'dl'}",
        protected=protected,
        expected_sessions=1,
        sessions=(
            SessionDecl(
                "mc",
                receivers=receiver_count,
                receiver_access_delays=tuple(access_delays),
            ),
        ),
        duration_s=duration_s,
        config=config,
    )
    scenario = Scenario.from_spec(spec)
    session = scenario.sessions[0]
    # The paper lowers the bottleneck delay to 5 ms for this experiment; the
    # queue stays sized for the default 20 ms path as in the NS-2 setup.
    scenario.network.bottleneck.delay_s = 0.005
    scenario.network.bottleneck_reverse.delay_s = 0.005
    scenario.run(duration_s)
    result = RttFairnessResult(protected=protected)
    for rtt, receiver in zip(rtts, session.receivers):
        result.points.append((rtt, receiver.average_rate_kbps(config.warmup_s, duration_s)))
    return result


# ----------------------------------------------------------------------
# Figures 8(g)/8(h): subscription convergence
# ----------------------------------------------------------------------
@dataclass
class ConvergenceResult:
    """Throughput series and convergence time of staggered receivers."""

    protected: bool
    join_times_s: Tuple[float, ...]
    series: List[List[ThroughputSample]] = field(default_factory=list)
    level_histories: List[List[Tuple[float, int]]] = field(default_factory=list)
    convergence_time_s: Optional[float] = None
    final_levels: List[int] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return self.convergence_time_s is not None


def convergence_spec(
    protected: bool = False,
    config: Optional[ExperimentConfig] = None,
    join_times_s: Tuple[float, ...] = (0.0, 10.0, 20.0, 30.0),
    duration_s: float = 40.0,
) -> ScenarioSpec:
    """Declarative form of the Figure 8(g)/(h) staggered-join experiment."""
    config = config or PAPER_DEFAULTS
    return ScenarioSpec(
        name=f"figure8-convergence-{'ds' if protected else 'dl'}",
        protected=protected,
        expected_sessions=1,
        sessions=(
            SessionDecl(
                "mc",
                receivers=len(join_times_s),
                receiver_start_times=tuple(join_times_s),
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "figure8-convergence",
    "Figures 8(g)/(h): subscription convergence of receivers joining at 0/10/20/30 s",
)(convergence_spec)


def run_convergence(
    protected: bool,
    config: Optional[ExperimentConfig] = None,
    join_times_s: Tuple[float, ...] = (0.0, 10.0, 20.0, 30.0),
    duration_s: float = 40.0,
) -> ConvergenceResult:
    """Run the Figure 8(g)/(h) experiment for one protocol variant."""
    spec = convergence_spec(
        protected, config=config, join_times_s=join_times_s, duration_s=duration_s
    )
    config = spec.config
    scenario = Scenario.from_spec(spec)
    session = scenario.sessions[0]
    scenario.run(duration_s)
    histories = [receiver.level_history for receiver in session.receivers]
    result = ConvergenceResult(
        protected=protected,
        join_times_s=join_times_s,
        series=[
            receiver.monitor.smoothed_series(window_bins=3, end_time_s=duration_s)
            for receiver in session.receivers
        ],
        level_histories=[list(history) for history in histories],
        convergence_time_s=convergence_time(
            histories, start_s=max(join_times_s), end_s=duration_s
        ),
        final_levels=[receiver.level for receiver in session.receivers],
    )
    return result
