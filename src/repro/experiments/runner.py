"""Parallel experiment runner with JSON result caching.

The runner executes :class:`~repro.experiments.spec.ScenarioSpec` instances —
optionally fanned out over a spec × seed × parameter grid — and returns
:class:`RunResult` objects whose ``metrics`` are plain JSON data.

Both execution paths go through the same serialised round-trip: a spec is
canonicalised to JSON, handed to :func:`run_spec_json` (in-process when
``jobs == 1``, in a :class:`~concurrent.futures.ProcessPoolExecutor` worker
otherwise), and the result comes back as canonical JSON.  Because the
simulator is deterministic, the serial and parallel paths produce
byte-identical result documents for the same spec and seed — the property
tests assert exactly that.

Results can be cached on disk (``cache_dir``): the cache key is the SHA-256
of the spec's canonical JSON, so a cache hit is definitionally the same
experiment.  Cache entries are written atomically (tmp sibling +
``os.replace``) and unparsable entries read as misses, so runners can share
one cache directory and an interrupted run can never poison later ones.

Specs with ``shards=N`` expand into one job per topology region (planned and
merged by :mod:`repro.experiments.shard`); region jobs ride the same process
pool as ordinary specs and the merged result is byte-deterministic across
the serial and pooled paths, like everything else.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..analysis.protection import (
    combined_containment_s,
    excess_goodput_kbps,
    goodput_containment_s,
    time_to_containment_s,
    weighted_excess_goodput_kbps,
    weighted_honest_baseline_kbps,
)
from .scenario import Scenario
from .spec import ScenarioSpec, SessionDecl

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CellPlan",
    "ExperimentExecutionError",
    "ExperimentRunner",
    "JobExecutor",
    "ResultCache",
    "RunResult",
    "blob_descriptors",
    "cache_stats",
    "collect_metrics",
    "collect_protection_metrics",
    "describe_job",
    "execute_spec",
    "plan_cell",
    "prune_cache",
    "run_spec_json",
    "run_job",
]

#: Bumped whenever the metric document schema (or what a run means for a
#: given spec) changes.  Mixed into every cache key together with the package
#: version so refactors can never resurrect stale cached results.
CACHE_SCHEMA_VERSION = 2


def _cache_version_tag() -> str:
    """The ``<package version>:<schema version>:`` prefix of every cache key.

    Looked up at call time (not import time) so the regression tests can
    exercise a version change without reinstalling the package.
    """
    import repro

    return f"{repro.__version__}:{CACHE_SCHEMA_VERSION}:"


@dataclass(frozen=True)
class RunResult:
    """Outcome of one spec execution, as plain JSON-serialisable data."""

    scenario: str
    seed: int
    protected: bool
    duration_s: float
    metrics: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form of the result (inverse of :meth:`from_dict`)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "protected": self.protected,
            "duration_s": self.duration_s,
            "metrics": self.metrics,
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) — stable byte-for-byte."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            scenario=payload["scenario"],
            seed=payload["seed"],
            protected=payload["protected"],
            duration_s=payload["duration_s"],
            metrics=dict(payload["metrics"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Rebuild a result from its canonical JSON form."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# metric extraction
# ----------------------------------------------------------------------
def collect_metrics(scenario: Scenario, spec: ScenarioSpec) -> Dict[str, Any]:
    """Measure a finished scenario into plain JSON data.

    Per multicast session: the per-receiver average goodput over
    ``[warmup, duration]``, its mean, and the final subscription levels.
    Per TCP connection: the average goodput.  SIGMA counters are aggregated
    over all edge agents.  With ``spec.record_series`` the per-session
    first-receiver throughput series is included as ``[time_s, kbps]`` pairs.
    """
    config = spec.config
    duration = spec.effective_duration_s
    warmup = config.warmup_s
    metrics: Dict[str, Any] = {"multicast": {}}
    for decl, session in zip(spec.sessions, scenario.sessions):
        receiver_kbps = [
            receiver.average_rate_kbps(warmup, duration) for receiver in session.receivers
        ]
        entry: Dict[str, Any] = {
            "receiver_kbps": receiver_kbps,
            "average_kbps": sum(receiver_kbps) / len(receiver_kbps),
            "final_levels": [receiver.level for receiver in session.receivers],
        }
        if decl.population:
            # Population-weighted view, present only for sessions that
            # declare cohorts (keeps legacy metric documents byte-identical).
            populations = [model.population for model in session.models]
            total = sum(populations)
            entry["receiver_population"] = populations
            entry["population"] = total
            entry["weighted_average_kbps"] = (
                sum(rate * count for rate, count in zip(receiver_kbps, populations))
                / total
            )
        if session.overhead is not None:
            delta_pct, sigma_pct = session.overhead.as_percentages()
            entry["overhead_percent"] = {"delta": delta_pct, "sigma": sigma_pct}
        if spec.record_series:
            entry["series"] = [
                [sample.time_s, sample.rate_kbps]
                for sample in session.receiver.monitor.smoothed_series(
                    window_bins=5, end_time_s=duration
                )
            ]
        metrics["multicast"][decl.session_id] = entry
    if spec.tcp:
        metrics["tcp_kbps"] = {
            decl.name: connection.monitor.average_rate_kbps(warmup, duration)
            for decl, connection in zip(spec.tcp, scenario.tcp_connections)
        }
    if scenario.sigma_agents:
        metrics["sigma"] = {
            "valid_submissions": sum(a.valid_submissions for a in scenario.sigma_agents),
            "invalid_submissions": sum(a.invalid_submissions for a in scenario.sigma_agents),
            "revocations": sum(a.revocations for a in scenario.sigma_agents),
            "igmp_joins_ignored": sum(a.igmp_joins_ignored for a in scenario.sigma_agents),
            "guess_alarms": sum(a.guess_alarms for a in scenario.sigma_agents),
            "edge_agents": len(scenario.sigma_agents),
        }
    protection = collect_protection_metrics(scenario, spec)
    if protection is not None:
        metrics["protection"] = protection
    return metrics


def _attacker_object_indices(decl: SessionDecl, session: Any) -> Dict[int, bool]:
    """Map attacking receiver-object indices to "came from a population block".

    Object indices align with the realised ``session.receivers``: the
    ``decl.receivers`` individuals first, then each population block.  How
    many objects a block realised as depends on its model (``count``
    individuals, ``cohorts`` per-cohort objects, one vector receiver per
    edge router), so the mapping reads the session's recorded
    ``block_slices`` instead of re-deriving the arithmetic.
    """
    attackers: Dict[int, bool] = {index: False for index in decl.attacker_indices()}
    for block_index in decl.adversarial_blocks():
        start, stop = session.block_slices[block_index]
        for object_index in range(start, stop):
            attackers[object_index] = True
    return attackers


def collect_protection_metrics(
    scenario: Scenario, spec: ScenarioSpec
) -> Optional[Dict[str, Any]]:
    """Protection summary of a finished attack scenario (None without attackers).

    Per attacker: goodput over its attack window, excess over the honest
    baseline (mean goodput of every non-attacking multicast receiver over the
    earliest attack window), time to containment derived from the level
    history against the session's fair entitlement, and the adversary's
    attack counters.  Attackers are the individually-targeted receivers plus
    every adversarial population block; cohort attackers additionally report
    their ``population`` and the population-weighted excess.
    """
    config = spec.config
    duration = spec.effective_duration_s
    # Sessions whose attack never starts within the run contribute nothing: a
    # clamped zero-width window would fabricate "contained in 0.0 s" results.
    session_onsets = {
        decl.session_id: onset
        for decl in spec.sessions
        for onset in [decl.attack_onset_s()]
        if onset is not None and onset < duration
    }
    if not session_onsets:
        return None
    global_onset = min(session_onsets.values())

    # Honest receivers weighted by the population each model stands for:
    # individuals weigh 1, a cohort weighs its member count.  A population
    # block is honest unless it carries its own attack declaration.
    honest_rates = []
    for decl, session in zip(spec.sessions, scenario.sessions):
        attacked = _attacker_object_indices(decl, session)
        for index, receiver in enumerate(session.receivers):
            if index not in attacked:
                honest_rates.append(
                    (receiver.average_rate_kbps(global_onset, duration), receiver.population)
                )
    baseline = weighted_honest_baseline_kbps(honest_rates, config.fair_share_bps / 1e3)

    sessions: Dict[str, Any] = {}
    for decl, session in zip(spec.sessions, scenario.sessions):
        attackers = _attacker_object_indices(decl, session)
        onset = session_onsets.get(decl.session_id)
        if not attackers or onset is None:
            continue
        bound_level = session.spec.fair_level(config.fair_share_bps)
        entries: Dict[str, Any] = {}
        #: Delivered-rate bound: the honest entitlement's cumulative rate,
        #: with slack for 1-second bin jitter around slot boundaries.
        bound_kbps = 1.25 * session.spec.cumulative_rate_bps(bound_level) / 1e3
        for index in sorted(attackers):
            from_population = attackers[index]
            receiver = session.receivers[index]
            attacker_kbps = receiver.average_rate_kbps(onset, duration)
            level_containment = time_to_containment_s(
                receiver.level_history, onset, bound_level, duration
            )
            rate_series = [
                (sample.time_s, sample.rate_kbps)
                for sample in receiver.monitor.series(end_time_s=duration)
            ]
            goodput_containment = goodput_containment_s(
                rate_series, onset, bound_kbps, duration
            )
            entry: Dict[str, Any] = {
                "goodput_kbps": attacker_kbps,
                "excess_kbps": excess_goodput_kbps(attacker_kbps, baseline),
                "containment_s": combined_containment_s(
                    level_containment, goodput_containment
                ),
                "bound_level": bound_level,
            }
            if from_population:
                # Cohort attackers (and their individual reference
                # realisation) report the population-weighted view; legacy
                # individual attackers keep their historical shape.
                entry["population"] = receiver.population
                entry["weighted_excess_kbps"] = weighted_excess_goodput_kbps(
                    attacker_kbps, baseline, receiver.population
                )
            stats = getattr(receiver, "adversary_stats", None)
            if stats is not None:
                entry["counters"] = stats()
            entries[str(index)] = entry
        sessions[decl.session_id] = {"onset_s": onset, "attackers": entries}
    return {"honest_baseline_kbps": baseline, "sessions": sessions}


def execute_spec(spec: ScenarioSpec) -> RunResult:
    """Interpret and run one spec in-process, returning its result."""
    scenario = Scenario.from_spec(spec)
    duration = spec.effective_duration_s
    scenario.run(duration)
    return RunResult(
        scenario=spec.name,
        seed=spec.seed,
        protected=spec.protected,
        duration_s=duration,
        metrics=collect_metrics(scenario, spec),
    )


def run_spec_json(spec_json: str) -> str:
    """Worker entry point: canonical spec JSON in, canonical result JSON out.

    Module-level (and string-typed) so it pickles cleanly into pool workers;
    the JSON round-trip also guarantees the serial path exercises exactly the
    same serialisation as the parallel one.
    """
    return execute_spec(ScenarioSpec.from_json(spec_json)).to_json()


def run_job(job: Tuple[str, str]) -> str:
    """Dispatching worker entry point: a ``(kind, payload)`` job in, JSON out.

    ``kind`` is ``"spec"`` (an ordinary spec run through
    :func:`run_spec_json`), ``"region"`` (one region of a sharded spec,
    through :func:`repro.experiments.shard.run_region_json`),
    ``"checkpoint"`` (build one prefix checkpoint) or ``"warm"`` (restore a
    prefix checkpoint and run a cell to the end), the latter two through
    :mod:`repro.experiments.warmstart`.  Module-level and built from plain
    strings so it pickles into pool workers; the shard and warm-start
    modules are imported lazily to keep the import graph acyclic.
    """
    kind, payload = job
    if kind == "region":
        from .shard import run_region_json

        return run_region_json(payload)
    if kind == "checkpoint":
        from .warmstart import run_checkpoint_json

        return run_checkpoint_json(payload)
    if kind == "warm":
        from .warmstart import run_warm_json

        return run_warm_json(payload)
    return run_spec_json(payload)


# ----------------------------------------------------------------------
# job-level execution (shared by the batch runner and the service daemon)
# ----------------------------------------------------------------------
class ExperimentExecutionError(RuntimeError):
    """A job's worker process died and bounded retries did not recover it.

    Raised instead of the raw :class:`BrokenProcessPool` traceback that used
    to abort the whole grid: the message names the job (kind, scenario,
    seed), how many attempts were made, and the usual causes, so the failure
    is actionable rather than a lost batch.
    """


def describe_job(job: Tuple[str, str]) -> str:
    """Human-readable identity of a ``(kind, payload)`` job for error text."""
    kind, payload = job
    try:
        document = json.loads(payload)
    except (TypeError, ValueError):
        return f"{kind} job"
    spec = document
    if kind in ("warm", "region"):
        spec = document.get("spec", {})
    elif kind == "checkpoint":
        spec = document.get("prefix", {})
    name = spec.get("name", "?")
    seed = spec.get("config", {}).get("seed", "?")
    return f"{kind} job for scenario {name!r} (seed {seed})"


def _crash_message(job: Tuple[str, str], attempts: int, retries: int) -> str:
    """The actionable error text for a job whose workers kept dying."""
    return (
        f"worker process crashed while running the {describe_job(job)} and "
        f"did not recover after {attempts} attempt(s) ({retries} retr"
        f"{'y' if retries == 1 else 'ies'} allowed). A crashed worker is "
        "usually an OOM kill or a native-extension fault; rerun with jobs=1 "
        "to execute the job in-process and see the real failure."
    )


class JobExecutor:
    """Run ``(kind, payload)`` jobs, serially or over a worker-process pool.

    This is the execution substrate both :class:`ExperimentRunner` and the
    service daemon (:mod:`repro.service`) schedule onto.  With ``jobs > 1``
    jobs fan out over a :class:`ProcessPoolExecutor`; a worker that dies
    mid-job (OOM kill, native crash) no longer aborts the batch with a raw
    :class:`BrokenProcessPool` — the pool is rebuilt and the dead worker's
    jobs are retried, up to ``retries`` times each, before an actionable
    :class:`ExperimentExecutionError` is raised.  Because every job is a
    pure function of its payload (the simulator is byte-deterministic), a
    retried job returns exactly the bytes the crashed attempt would have.

    ``worker`` defaults to :func:`run_job`; tests inject crashing stand-ins.
    """

    def __init__(
        self,
        jobs: int = 1,
        retries: int = 2,
        worker: Optional[Callable[[Tuple[str, str]], str]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.jobs = jobs
        self.retries = retries
        self._worker = worker
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Pools discarded after a worker crash (observability; the service
        #: surfaces this as worker health).
        self.restarts = 0

    def _resolve_worker(self) -> Callable[[Tuple[str, str]], str]:
        """The worker function — the module-level default unless injected."""
        return self._worker if self._worker is not None else run_job

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool so the next attempt starts fresh workers."""
        pool, self._pool = self._pool, None
        if pool is not None:
            self.restarts += 1
            pool.shutdown(wait=False, cancel_futures=True)

    def run_all(self, jobs: Sequence[Tuple[str, str]]) -> List[str]:
        """Execute every job, returning outputs in input order.

        Serial (``jobs == 1`` or a single job) runs in-process, where an
        exception is a real simulation failure and propagates unchanged.
        Pooled runs retry each job whose worker crashed on a fresh pool.
        """
        jobs = list(jobs)
        worker = self._resolve_worker()
        if self.jobs == 1 or len(jobs) <= 1:
            return [worker(job) for job in jobs]
        outputs: List[Optional[str]] = [None] * len(jobs)
        attempts = [0] * len(jobs)
        pending = list(range(len(jobs)))
        while pending:
            pool = self._ensure_pool()
            futures = [(index, pool.submit(worker, jobs[index])) for index in pending]
            failed: List[int] = []
            for index, future in futures:
                try:
                    outputs[index] = future.result()
                except BrokenProcessPool:
                    attempts[index] += 1
                    if attempts[index] > self.retries:
                        self._discard_pool()
                        raise ExperimentExecutionError(
                            _crash_message(jobs[index], attempts[index], self.retries)
                        ) from None
                    failed.append(index)
            if failed:
                self._discard_pool()
            pending = failed
        return [output for output in outputs if output is not None]

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "JobExecutor":
        """Context-manager entry: the executor itself."""
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        """Context-manager exit: close the pool."""
        self.close()


class ResultCache:
    """The on-disk, content-addressed result store.

    One directory maps ``sha256(version tag + canonical spec JSON)`` to the
    spec's canonical result document (``<key>.json``).  The store is safe to
    share between concurrent runners, the service daemon and its clients:
    entries are published atomically (pid-suffixed tmp + :func:`os.replace`)
    and a torn or corrupt entry reads as a miss, never as state.  With no
    directory every operation is a no-op/miss, so callers need no branching.
    """

    def __init__(self, directory: Optional[Path]) -> None:
        self.directory = Path(directory) if directory is not None else None

    @staticmethod
    def key(spec: ScenarioSpec) -> str:
        """SHA-256 over a version tag plus the spec's canonical JSON.

        Sound only because runs are byte-deterministic per spec (see
        ``docs/determinism.md``).  The package version and
        :data:`CACHE_SCHEMA_VERSION` are mixed into the key: a cached result
        is only reusable by the *same* code that produced it, so refactors
        that change behaviour or the metric schema can never serve stale
        documents from an old cache directory.
        """
        return hashlib.sha256(
            (_cache_version_tag() + spec.to_json()).encode("utf-8")
        ).hexdigest()

    def path(self, spec: ScenarioSpec) -> Optional[Path]:
        """The entry path for ``spec``, or ``None`` without a directory."""
        if self.directory is None:
            return None
        return self.directory / f"{self.key(spec)}.json"

    def load(self, spec: ScenarioSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None`` on a miss.

        A cache entry that cannot be parsed back into a :class:`RunResult`
        — a file torn by a crash mid-write under the old non-atomic writer,
        or truncated by a full disk — is treated as a miss (the entry is
        re-run and atomically overwritten), never as an error: a shared
        cache directory must not be able to poison later runs.
        """
        path = self.path(spec)
        if path is None or not path.exists():
            return None
        try:
            return RunResult.from_json(path.read_text())
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def load_key(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw result document stored under ``key``, or ``None``.

        The service's ``cache-get`` op answers from here without touching
        the worker pool; the same torn-entry-is-a-miss contract applies.
        """
        if self.directory is None:
            return None
        try:
            payload = (self.directory / f"{key}.json").read_text()
            return RunResult.from_json(payload).to_dict()
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, spec: ScenarioSpec, output: str) -> None:
        """Atomically publish ``output`` as the cache entry for ``spec``.

        The document is written to a pid-suffixed ``.tmp`` sibling and
        :func:`os.replace`-d into place, so concurrent writers sharing one
        directory and interrupted runs can never leave a torn entry under
        the final name — readers see the old state or the whole new
        document, nothing in between.
        """
        path = self.path(spec)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(output)
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise


def blob_descriptors(spec: ScenarioSpec, plan: Any) -> List[Tuple]:
    """``(key, prefix spec dict, barrier_s, membership_log)`` per blob.

    An unsharded cell has one blob; a sharded cell has one per region
    (the prefix spec shards into regions that align one-to-one with the
    real spec's — canonicalization never touches populations or the
    topology).
    """
    if spec.shards is None:
        return [(plan.checkpoint_key(), plan.spec.to_dict(), plan.barrier_s, False)]
    from .shard import plan_shards
    from .warmstart import PrefixPlan

    return [
        (
            PrefixPlan(plan.barrier_s, region.spec).checkpoint_key(),
            region.spec.to_dict(),
            plan.barrier_s,
            True,
        )
        for region in plan_shards(plan.spec).regions
    ]


@dataclass
class CellPlan:
    """The executable shape of one grid cell: jobs in, one result out.

    ``setup_jobs`` build missing prefix-checkpoint blobs and must finish
    before ``jobs`` start; ``jobs`` are the cell's main work (one spec/warm
    job, or one region job per shard).  :meth:`merge` folds the main jobs'
    outputs into the cell's :class:`RunResult` — for a sharded cell that is
    the deterministic region merge, otherwise the single output parsed.
    Shared by the batch runner's durable-cache path and the service daemon,
    so both produce byte-identical results by construction.
    """

    spec: ScenarioSpec
    setup_jobs: List[Tuple[str, str]] = field(default_factory=list)
    jobs: List[Tuple[str, str]] = field(default_factory=list)
    shard_plan: Optional[Any] = None
    warm: bool = False
    checkpoint_hits: int = 0
    checkpoint_misses: int = 0

    def merge(self, outputs: Sequence[str]) -> RunResult:
        """Fold the main jobs' outputs into this cell's result."""
        if self.shard_plan is None:
            return RunResult.from_json(outputs[0])
        from .shard import merge_region_results

        documents = [json.loads(output) for output in outputs]
        return merge_region_results(self.shard_plan, documents)


def plan_cell(
    spec: ScenarioSpec,
    checkpoint_dir: Optional[Path] = None,
    warm_start: bool = True,
) -> CellPlan:
    """Plan the jobs realising one cell, warm-starting when durably stored.

    Mirrors the batch runner's policy for a lone cell with a durable cache
    directory: when the spec has a plannable prefix and ``checkpoint_dir``
    is durable, the cell resumes from the shared ``ck_*.pkl`` blob store —
    publishing the blob on a miss so every later cell (from any client)
    sweeping the same prefix reuses it.  Without a directory, or for specs
    with no shareable prefix, the cell runs cold.  Sharded specs expand into
    one region job per shard either way.
    """
    from .warmstart import checkpoint_payload, plan_prefix, warm_payload

    prefix_plan = plan_prefix(spec) if warm_start and checkpoint_dir else None
    plan = CellPlan(spec=spec, warm=prefix_plan is not None)
    descriptors: List[Tuple] = []
    if prefix_plan is not None:
        from .warmstart import CheckpointStore

        store = CheckpointStore(Path(checkpoint_dir))
        descriptors = blob_descriptors(spec, prefix_plan)
        for key, prefix_dict, barrier_s, membership_log in descriptors:
            if store.exists(key):
                plan.checkpoint_hits += 1
                continue
            plan.checkpoint_misses += 1
            plan.setup_jobs.append(
                (
                    "checkpoint",
                    checkpoint_payload(
                        key, prefix_dict, barrier_s, str(checkpoint_dir),
                        membership_log=membership_log,
                    ),
                )
            )
    if spec.shards is not None:
        from .shard import plan_shards, region_payloads

        plan.shard_plan = plan_shards(spec)
        payloads = region_payloads(plan.shard_plan)
        if plan.warm:
            payloads = _attach_warm_blocks(payloads, descriptors, str(checkpoint_dir))
        plan.jobs = [("region", payload) for payload in payloads]
    elif plan.warm:
        key, prefix_dict, barrier_s, _membership_log = descriptors[0]
        plan.jobs = [
            (
                "warm",
                warm_payload(
                    spec.to_dict(), prefix_dict, barrier_s, str(checkpoint_dir), key
                ),
            )
        ]
    else:
        plan.jobs = [("spec", spec.to_json())]
    return plan


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class ExperimentRunner:
    """Fan specs out over processes, with optional on-disk result caching.

    With ``warm_start`` (the default) the runner additionally plans
    common-prefix warm-starts across each batch
    (:mod:`repro.experiments.warmstart`): pending cells whose canonical
    prefix specs are byte-equal share one checkpoint of the pre-attack
    dynamics, built once and resumed per cell.  Warm results are
    byte-identical to cold runs, so they are cached like any other result.
    ``verify_warm_start`` re-runs one cell per prefix group cold and raises
    on any byte divergence — the runtime spot-check behind the CLI's
    ``--verify-warm-start``.

    Execution rides a :class:`JobExecutor`: a worker that dies mid-job is
    retried on a fresh pool up to ``retries`` times before the batch fails
    with an actionable :class:`ExperimentExecutionError` (instead of the
    historical raw :class:`BrokenProcessPool` losing the whole grid).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Path] = None,
        warm_start: bool = True,
        verify_warm_start: bool = False,
        retries: int = 2,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._cache = ResultCache(self.cache_dir)
        self.warm_start = warm_start
        self.verify_warm_start = verify_warm_start
        self.retries = retries
        self.cache_hits = 0
        self.cache_misses = 0
        #: Prefix checkpoints found already published when a batch planned
        #: its warm-starts / built because they were missing.
        self.checkpoint_hits = 0
        self.checkpoint_misses = 0
        #: Cells executed from a restored prefix instead of from ``t=0``.
        self.warm_runs = 0
        #: Wall seconds spent planning prefixes and hashing checkpoint keys
        #: (pure orchestration overhead, no simulation inside).
        self.plan_overhead_s = 0.0
        #: Wall seconds spent building/publishing missing prefix blobs
        #: (phase-1 checkpoint jobs; simulation of the shared prefix).
        self.checkpoint_wall_s = 0.0
        self._scratch: Optional[tempfile.TemporaryDirectory] = None

    def _checkpoint_dir(self) -> Path:
        """Where prefix blobs live: the result cache, or a runner-lifetime
        scratch directory so batches without a ``cache_dir`` still share
        prefixes within (and across) their own grids."""
        if self.cache_dir is not None:
            return self.cache_dir
        if self._scratch is None:
            self._scratch = tempfile.TemporaryDirectory(prefix="repro-warmstart-")
        return Path(self._scratch.name)

    # ------------------------------------------------------------------
    @staticmethod
    def cache_key(spec: ScenarioSpec) -> str:
        """SHA-256 cache key of ``spec`` (see :meth:`ResultCache.key`)."""
        return ResultCache.key(spec)

    def _read_cached(self, spec: ScenarioSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None`` (see :class:`ResultCache`)."""
        return self._cache.load(spec)

    def _write_cache(self, spec: ScenarioSpec, output: str) -> None:
        """Atomically publish ``output`` for ``spec`` (see :class:`ResultCache`)."""
        self._cache.store(spec, output)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[ScenarioSpec]) -> List[RunResult]:
        """Execute every spec, preserving input order in the results.

        Cache lookups happen first; identical pending specs are deduplicated
        (one execution, one counted miss, the result fanned out to every
        occurrence).  A spec with ``shards=N`` expands into ``N`` region
        jobs planned by :mod:`repro.experiments.shard`; region jobs and
        ordinary specs share one flat job list over the process pool, and
        each sharded spec's region documents are merged deterministically
        before caching.
        """
        specs = list(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)
        occurrences: Dict[str, List[int]] = {}
        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = self._read_cached(spec)
            if cached is not None:
                results[index] = cached
                self.cache_hits += 1
                continue
            group = occurrences.setdefault(spec.to_json(), [])
            if not group:
                pending.append(index)
                self.cache_misses += 1
            group.append(index)

        if pending:
            self._execute_pending(specs, pending, occurrences, results)
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    def _plan_warm_starts(
        self, specs: Sequence[ScenarioSpec], pending: Sequence[int]
    ) -> Tuple[Dict[int, Any], Dict[int, bool], Dict[int, List[Tuple]], List[Tuple[str, str]]]:
        """Group pending cells by shared prefix and plan checkpoint jobs.

        Returns ``(plans, warm_cells, blob_descriptors, phase1_jobs)``:
        per-cell :class:`~repro.experiments.warmstart.PrefixPlan` objects,
        the cells to warm-start (mapped to their runtime-verify flag), each
        warm cell's blob descriptors (one per region on sharded specs) and
        the phase-1 ``("checkpoint", payload)`` jobs for blobs not yet
        published.  A cell warms when its prefix is shared by another
        pending cell, when its blobs already exist — or, with a durable
        ``cache_dir``, always: the prefix must be simulated anyway, so
        publishing the blob costs one pickle and seeds every future
        invocation sweeping the same prefix (the CLI's one-cell-at-a-time
        usage pattern).  Without a ``cache_dir`` a lone cell stays cold —
        a scratch-directory blob nothing will ever share is pure overhead.
        """
        plans: Dict[int, Any] = {}
        warm_cells: Dict[int, bool] = {}
        descriptors: Dict[int, List[Tuple]] = {}
        phase1: List[Tuple[str, str]] = []
        if not self.warm_start:
            return plans, warm_cells, descriptors, phase1
        from .warmstart import CheckpointStore, checkpoint_payload, plan_prefix

        groups: Dict[str, List[int]] = {}
        for index in pending:
            plan = plan_prefix(specs[index])
            if plan is not None:
                plans[index] = plan
                groups.setdefault(plan.checkpoint_key(), []).append(index)
        if not groups:
            return plans, warm_cells, descriptors, phase1

        store = CheckpointStore(self._checkpoint_dir())
        planned_keys: Set[str] = set()
        for members in groups.values():
            blobs = blob_descriptors(specs[members[0]], plans[members[0]])
            published = all(store.exists(key) for key, *_ in blobs)
            if len(members) < 2 and not published and self.cache_dir is None:
                continue
            for position, index in enumerate(members):
                warm_cells[index] = self.verify_warm_start and position == 0
                descriptors[index] = blobs
            for key, prefix_dict, barrier_s, membership_log in blobs:
                if key in planned_keys:
                    continue
                planned_keys.add(key)
                if store.exists(key):
                    self.checkpoint_hits += 1
                    continue
                self.checkpoint_misses += 1
                phase1.append(
                    (
                        "checkpoint",
                        checkpoint_payload(
                            key,
                            prefix_dict,
                            barrier_s,
                            str(store.directory),
                            membership_log=membership_log,
                        ),
                    )
                )
        return plans, warm_cells, descriptors, phase1

    def _execute_pending(
        self,
        specs: Sequence[ScenarioSpec],
        pending: Sequence[int],
        occurrences: Dict[str, List[int]],
        results: List[Optional[RunResult]],
    ) -> None:
        """Run the uncached cells: plan warm-starts, fan out, merge, cache."""
        plan_started = time.perf_counter()
        plans, warm_cells, descriptors, phase1 = self._plan_warm_starts(specs, pending)
        self.plan_overhead_s += time.perf_counter() - plan_started
        checkpoint_dir = str(self._checkpoint_dir()) if warm_cells else ""

        jobs: List[Tuple[str, str]] = []
        # (spec index, shard plan or None, first job offset, job count)
        segments: List[Tuple[int, Optional[Any], int, int]] = []
        # spec index -> (shard plan, offset, count) of the cold verify jobs
        verify_segments: Dict[int, Tuple[Any, int, int]] = {}
        for index in pending:
            spec = specs[index]
            warm = index in warm_cells
            if warm:
                self.warm_runs += 1
            if spec.shards is not None:
                from .shard import plan_shards, region_payloads

                plan = plan_shards(spec)
                payloads = region_payloads(plan)
                if warm:
                    payloads = _attach_warm_blocks(
                        payloads, descriptors[index], checkpoint_dir
                    )
                segments.append((index, plan, len(jobs), len(payloads)))
                jobs.extend(("region", payload) for payload in payloads)
                if warm and warm_cells[index]:
                    # Sharded runtime verify: re-run the regions cold and
                    # compare the merged documents byte for byte.
                    cold = region_payloads(plan)
                    verify_segments[index] = (plan, len(jobs), len(cold))
                    jobs.extend(("region", payload) for payload in cold)
            elif warm:
                from .warmstart import warm_payload

                prefix_plan = plans[index]
                segments.append((index, None, len(jobs), 1))
                jobs.append(
                    (
                        "warm",
                        warm_payload(
                            spec.to_dict(),
                            prefix_plan.spec.to_dict(),
                            prefix_plan.barrier_s,
                            checkpoint_dir,
                            prefix_plan.checkpoint_key(),
                            verify=warm_cells[index],
                        ),
                    )
                )
            else:
                segments.append((index, None, len(jobs), 1))
                jobs.append(("spec", spec.to_json()))

        with JobExecutor(jobs=self.jobs, retries=self.retries) as executor:
            checkpoint_started = time.perf_counter()
            executor.run_all(phase1)
            self.checkpoint_wall_s += time.perf_counter() - checkpoint_started
            outputs = executor.run_all(jobs)

        for index, plan, offset, count in segments:
            if plan is None:
                output = outputs[offset]
                result = RunResult.from_json(output)
            else:
                from .shard import merge_region_results

                documents = [json.loads(outputs[offset + i]) for i in range(count)]
                result = merge_region_results(plan, documents)
                output = result.to_json()
                if index in verify_segments:
                    cold_plan, cold_offset, cold_count = verify_segments[index]
                    cold_documents = [
                        json.loads(outputs[cold_offset + i]) for i in range(cold_count)
                    ]
                    cold_output = merge_region_results(
                        cold_plan, cold_documents
                    ).to_json()
                    if cold_output != output:
                        raise RuntimeError(
                            f"warm-start divergence on {specs[index].name!r} "
                            f"(seed {specs[index].seed}): the warm sharded "
                            "result does not byte-match the cold run"
                        )
            for duplicate in occurrences[specs[index].to_json()]:
                results[duplicate] = result
            self._write_cache(specs[index], output)

    # ------------------------------------------------------------------
    def run_one(self, spec: ScenarioSpec) -> RunResult:
        """Execute a single spec (through the cache like any other run)."""
        return self.run([spec])[0]

    def run_seed_sweep(self, spec: ScenarioSpec, seeds: Iterable[int]) -> List[RunResult]:
        """Run the same spec under each seed."""
        return self.run([spec.with_seed(seed) for seed in seeds])

    def run_grid(
        self,
        spec: ScenarioSpec,
        seeds: Iterable[int] = (0,),
        overrides: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> List[RunResult]:
        """Run a spec × seed × override grid (overrides are spec field dicts)."""
        variants: List[ScenarioSpec] = []
        for override in overrides if overrides is not None else [{}]:
            base = replace(spec, **dict(override)) if override else spec
            for seed in seeds:
                variants.append(base.with_seed(seed))
        return self.run(variants)


def _attach_warm_blocks(
    payloads: Sequence[str], descriptors: Sequence[Tuple], directory: str
) -> List[str]:
    """Region payloads with their prefix-checkpoint ``warm`` blocks attached.

    Region payloads and blob descriptors are both in region order, so they
    zip one-to-one.
    """
    attached: List[str] = []
    for payload, (key, prefix_dict, barrier_s, _membership_log) in zip(
        payloads, descriptors
    ):
        document = json.loads(payload)
        document["warm"] = {
            "dir": directory,
            "key": key,
            "prefix": prefix_dict,
            "barrier_s": barrier_s,
        }
        attached.append(json.dumps(document, sort_keys=True, separators=(",", ":")))
    return attached


# ----------------------------------------------------------------------
# cache maintenance
# ----------------------------------------------------------------------
def cache_stats(cache_dir: Path) -> Dict[str, Any]:
    """Size and entry counts of one cache directory, by entry kind.

    ``results`` counts the runner's ``<sha256>.json`` result documents,
    ``checkpoints`` the warm-start ``ck_<sha256>.pkl`` prefix blobs.
    """
    directory = Path(cache_dir)

    def tally(paths: Iterable[Path]) -> Dict[str, int]:
        entries = 0
        total = 0
        for path in paths:
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return {"entries": entries, "bytes": total}

    results = tally(directory.glob("*.json"))
    checkpoints = tally(directory.glob("ck_*.pkl"))
    return {
        "path": str(directory),
        "results": results,
        "checkpoints": checkpoints,
        "total_bytes": results["bytes"] + checkpoints["bytes"],
    }


def prune_cache(cache_dir: Path, max_bytes: int) -> Dict[str, Any]:
    """Evict cache entries, oldest first, until the store fits ``max_bytes``.

    Both entry kinds (result documents and checkpoint blobs) and any
    leftover ``.tmp`` siblings compete by modification time; eviction is
    safe at any point because every reader treats a missing or torn entry
    as a miss.
    """
    if max_bytes < 0:
        raise ValueError("max_bytes must be non-negative")
    directory = Path(cache_dir)
    entries: List[Tuple[float, str, Path, int]] = []
    for pattern in ("*.json", "ck_*.pkl", "*.tmp"):
        for path in directory.glob(pattern):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.name, path, stat.st_size))
    entries.sort()
    total = sum(size for _, _, _, size in entries)
    deleted = 0
    freed = 0
    for _mtime, _name, path, size in entries:
        if total - freed <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        deleted += 1
        freed += size
    return {
        "path": str(directory),
        "deleted": deleted,
        "freed_bytes": freed,
        "remaining_bytes": total - freed,
    }
