"""Figure 9 — communication overhead of DELTA and SIGMA.

Section 5.4 quantifies the cost of the protection as the ratio of protection
bits to data bits, both analytically (the closed-form expressions implemented
in :mod:`repro.core.overhead`) and for a concrete FLID-DS session: 500-byte
packets, 4 Mbps cumulative rate, 100 Kbps minimal group, 16-bit keys, 8-bit
slot numbers and FEC sized for 50 % loss.

Two sweeps are reported:

* Figure 9(a): overhead versus the number of groups (2 to 20) at 250 ms slots;
* Figure 9(b): overhead versus the slot duration (0.2 s to 1 s) with 10 groups.

The paper finds DELTA stays around 0.8 % and SIGMA under 0.6 %.  In addition
to the analytic curves, ``run_measured_overhead`` runs a short FLID-DS session
through the full simulator and reports the overhead actually accumulated on
the wire, so the model and the implementation can be cross-checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.overhead import OverheadModel, OverheadPoint
from .config import PAPER_DEFAULTS, ExperimentConfig
from .registry import register_scenario
from .scenario import Scenario
from .spec import ScenarioSpec, SessionDecl

__all__ = [
    "OverheadSweepResult",
    "MeasuredOverheadResult",
    "figure9_model",
    "measured_overhead_spec",
    "run_group_count_sweep",
    "run_slot_duration_sweep",
    "run_measured_overhead",
    "PAPER_GROUP_COUNTS",
    "PAPER_SLOT_DURATIONS",
]

PAPER_GROUP_COUNTS: Tuple[int, ...] = tuple(range(2, 21, 2))
PAPER_SLOT_DURATIONS: Tuple[float, ...] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def figure9_model(
    slot_duration_s: float = 0.25, group_count: int = 10
) -> OverheadModel:
    """The §5.4 parameterisation: 500-byte packets, 4 Mbps session, 16-bit keys."""
    return OverheadModel(
        data_bits_per_packet=4000,
        cumulative_rate_bps=4_000_000.0,
        minimal_rate_bps=100_000.0,
        key_bits=16,
        slot_number_bits=8,
        fec_expansion=2.0,
        group_count=group_count,
        slot_duration_s=slot_duration_s,
    )


@dataclass
class OverheadSweepResult:
    """One Figure 9 curve pair (DELTA and SIGMA percentages)."""

    parameter_name: str
    points: List[OverheadPoint] = field(default_factory=list)

    @property
    def max_delta_percent(self) -> float:
        return max(point.delta_percent for point in self.points)

    @property
    def max_sigma_percent(self) -> float:
        return max(point.sigma_percent for point in self.points)


def run_group_count_sweep(
    group_counts: Sequence[int] = PAPER_GROUP_COUNTS, slot_duration_s: float = 0.25
) -> OverheadSweepResult:
    """Figure 9(a): overhead versus the number of groups."""
    model = figure9_model(slot_duration_s=slot_duration_s)
    return OverheadSweepResult(
        parameter_name="groups",
        points=model.sweep_group_count(list(group_counts)),
    )


def run_slot_duration_sweep(
    durations_s: Sequence[float] = PAPER_SLOT_DURATIONS, group_count: int = 10
) -> OverheadSweepResult:
    """Figure 9(b): overhead versus the time-slot duration."""
    model = figure9_model(group_count=group_count)
    return OverheadSweepResult(
        parameter_name="slot duration (s)",
        points=model.sweep_slot_duration(list(durations_s)),
    )


# ----------------------------------------------------------------------
# Measured overhead from the full simulator
# ----------------------------------------------------------------------
def measured_overhead_spec(
    config: Optional[ExperimentConfig] = None,
    duration_s: float = 30.0,
    bottleneck_bps: Optional[float] = None,
) -> ScenarioSpec:
    """Declarative form of the measured-overhead FLID-DS session.

    A generous bottleneck keeps the receiver at the maximal level, and
    suppression of unsubscribed groups is disabled, so the full cumulative
    session rate flows — matching the analytic model's denominator.
    """
    config = config or PAPER_DEFAULTS
    if bottleneck_bps is None:
        bottleneck_bps = 2.0 * figure9_model(slot_duration_s=config.flid_ds_slot_s).cumulative_rate_bps
    return ScenarioSpec(
        name="figure9-measured-overhead",
        protected=True,
        expected_sessions=1,
        bottleneck_bps=bottleneck_bps,
        sessions=(
            SessionDecl(
                "overhead", track_overhead=True, suppress_unsubscribed_groups=False
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "figure9-measured-overhead",
    "Figure 9 cross-check: DELTA/SIGMA overhead measured on the wire for one "
    "FLID-DS session",
)(measured_overhead_spec)


@dataclass
class MeasuredOverheadResult:
    """Overhead measured on the wire for one simulated FLID-DS session."""

    delta_percent: float
    sigma_percent: float
    model_delta_percent: float
    model_sigma_percent: float
    data_bits: int
    duration_s: float

    @property
    def delta_within_factor(self) -> float:
        """Measured / modelled DELTA overhead (1.0 = exact match)."""
        if self.model_delta_percent == 0:
            return float("inf")
        return self.delta_percent / self.model_delta_percent


def run_measured_overhead(
    config: Optional[ExperimentConfig] = None,
    duration_s: float = 30.0,
    group_count: int = 10,
) -> MeasuredOverheadResult:
    """Run a FLID-DS session and compare measured overhead with the model.

    The session uses the §5.4 parameters scaled to a bottleneck large enough
    that every group stays subscribed (the model assumes the full cumulative
    rate is flowing), so the measured per-packet DELTA overhead and per-slot
    SIGMA overhead are directly comparable with the analytic expressions.
    """
    config = config or PAPER_DEFAULTS
    model = figure9_model(slot_duration_s=config.flid_ds_slot_s, group_count=group_count)
    spec = measured_overhead_spec(
        config=config, duration_s=duration_s, bottleneck_bps=2.0 * model.cumulative_rate_bps
    )
    scenario = Scenario.from_spec(spec)
    session = scenario.sessions[0]
    scenario.run(duration_s)
    overhead = session.overhead
    assert overhead is not None
    delta_pct, sigma_pct = overhead.as_percentages()
    return MeasuredOverheadResult(
        delta_percent=delta_pct,
        sigma_percent=sigma_pct,
        model_delta_percent=OverheadModel(
            data_bits_per_packet=config.packet_bytes * 8,
            cumulative_rate_bps=session.spec.max_rate_bps(),
            minimal_rate_bps=session.spec.base_rate_bps,
            key_bits=config.key_bits,
            group_count=group_count,
            slot_duration_s=config.flid_ds_slot_s,
        ).delta_overhead_percent(),
        model_sigma_percent=OverheadModel(
            data_bits_per_packet=config.packet_bytes * 8,
            cumulative_rate_bps=session.spec.max_rate_bps(),
            minimal_rate_bps=session.spec.base_rate_bps,
            key_bits=config.key_bits,
            group_count=group_count,
            slot_duration_s=config.flid_ds_slot_s,
        ).sigma_overhead_percent(),
        data_bits=overhead.data_bits,
        duration_s=duration_s,
    )
