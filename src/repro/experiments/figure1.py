"""Figures 1 and 7 — impact of inflated subscription, with and without protection.

The scenario (§1 and §5.2): receivers ``F1`` and ``F2`` belong to two
different multicast sessions and share a 1 Mbps bottleneck with two TCP Reno
receivers ``T1`` and ``T2``; every flow's fair share is 250 Kbps.  At
``t = 100 s`` receiver ``F1`` starts misbehaving and inflates its
subscription.

* With FLID-DL (Figure 1) the attack succeeds: F1's throughput jumps to
  roughly 690 Kbps while F2, T1 and T2 are squeezed far below their fair
  share.
* With FLID-DS (Figure 7) DELTA and SIGMA deny F1 the keys for the extra
  groups, so all four flows keep roughly their fair share.

``run_inflated_subscription_experiment`` runs either variant and returns the
four per-flow throughput time-series plus before/after averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.fairness import jain_index
from ..simulator.monitors import ThroughputSample
from .config import PAPER_DEFAULTS, ExperimentConfig
from .registry import register_scenario
from .scenario import Scenario
from .spec import ScenarioSpec, SessionDecl, TcpDecl

__all__ = [
    "InflatedSubscriptionResult",
    "inflated_subscription_spec",
    "run_inflated_subscription_experiment",
]

#: Time at which F1 starts misbehaving (both figures).
DEFAULT_ATTACK_START_S = 100.0


def inflated_subscription_spec(
    protected: bool,
    config: Optional[ExperimentConfig] = None,
    attack_start_s: float = DEFAULT_ATTACK_START_S,
    duration_s: Optional[float] = None,
) -> ScenarioSpec:
    """Declarative form of the Figure 1 / Figure 7 scenario.

    Four flows (2 multicast + 2 TCP) at a 250 Kbps fair share share a 1 Mbps
    dumbbell bottleneck; multicast receiver F1 turns misbehaving at
    ``attack_start_s``.
    """
    config = config or PAPER_DEFAULTS
    duration = config.duration_s if duration_s is None else duration_s
    attack_start = min(attack_start_s, duration)
    return ScenarioSpec(
        name="figure7-defence" if protected else "figure1-attack",
        protected=protected,
        expected_sessions=4,
        sessions=(
            SessionDecl("F1", receivers=1, misbehaving=(0,), attack_start_s=attack_start),
            SessionDecl("F2", receivers=1),
        ),
        tcp=(TcpDecl("T1"), TcpDecl("T2")),
        duration_s=duration,
        config=config,
    )


register_scenario(
    "figure1-attack",
    "Figure 1: inflated-subscription attack on FLID-DL — F1 squeezes F2/T1/T2",
)(lambda **params: inflated_subscription_spec(protected=False, **params))

register_scenario(
    "figure7-defence",
    "Figure 7: the same attack against FLID-DS — DELTA/SIGMA hold the fair share",
)(lambda **params: inflated_subscription_spec(protected=True, **params))


@dataclass
class InflatedSubscriptionResult:
    """Outcome of one Figure 1 / Figure 7 run."""

    protected: bool
    attack_start_s: float
    duration_s: float
    fair_share_kbps: float
    #: Per-flow 1-second throughput series, keyed by flow name (F1, F2, T1, T2).
    series: Dict[str, List[ThroughputSample]] = field(default_factory=dict)
    #: Average throughput (Kbps) before the attack, keyed by flow name.
    average_before_kbps: Dict[str, float] = field(default_factory=dict)
    #: Average throughput (Kbps) while the attack is active, keyed by flow name.
    average_during_kbps: Dict[str, float] = field(default_factory=dict)

    @property
    def attacker_gain(self) -> float:
        """F1 throughput during the attack relative to its fair share."""
        return self.average_during_kbps["F1"] / self.fair_share_kbps

    @property
    def fairness_before(self) -> float:
        return jain_index(list(self.average_before_kbps.values()))

    @property
    def fairness_during(self) -> float:
        return jain_index(list(self.average_during_kbps.values()))

    def victim_flows(self) -> List[str]:
        return [name for name in self.average_during_kbps if name != "F1"]


def run_inflated_subscription_experiment(
    protected: bool,
    config: Optional[ExperimentConfig] = None,
    attack_start_s: float = DEFAULT_ATTACK_START_S,
    duration_s: Optional[float] = None,
) -> InflatedSubscriptionResult:
    """Run the Figure 1 (``protected=False``) or Figure 7 (``protected=True``) scenario."""
    spec = inflated_subscription_spec(
        protected, config=config, attack_start_s=attack_start_s, duration_s=duration_s
    )
    config = spec.config
    duration = spec.effective_duration_s
    attack_start = min(attack_start_s, duration)

    scenario = Scenario.from_spec(spec)
    f1_session, f2_session = scenario.sessions
    t1, t2 = scenario.tcp_connections
    scenario.run(duration)

    monitors = {
        "F1": f1_session.receiver.monitor,
        "F2": f2_session.receiver.monitor,
        "T1": t1.monitor,
        "T2": t2.monitor,
    }
    result = InflatedSubscriptionResult(
        protected=protected,
        attack_start_s=attack_start,
        duration_s=duration,
        fair_share_kbps=config.fair_share_bps / 1e3,
    )
    warmup = config.warmup_s
    for name, monitor in monitors.items():
        result.series[name] = monitor.smoothed_series(window_bins=5, end_time_s=duration)
        result.average_before_kbps[name] = monitor.average_rate_kbps(warmup, attack_start)
        result.average_during_kbps[name] = monitor.average_rate_kbps(attack_start, duration)
    return result
