"""Scenario builder for the §5 evaluation topologies.

Every figure of the paper uses the same single-bottleneck arrangement with a
different mix of traffic; :class:`Scenario` assembles those mixes:

* any number of multicast sessions, each either FLID-DL (unprotected, the
  receiver-side edge router runs IGMP) or FLID-DS (protected, the edge router
  runs a SIGMA agent);
* well-behaved or misbehaving (inflated-subscription) receivers per session,
  with configurable attack start times and per-receiver access-link delays;
* any number of TCP Reno connections;
* optional on-off CBR background or burst traffic.

The builder exposes the created senders/receivers/connections so experiments
and tests can interrogate throughput monitors, SIGMA statistics and level
histories after :meth:`run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.sigma import SigmaConfig, SigmaRouterAgent
from ..core.timeslot import SlotClock
from ..multicast_cc import (
    FlidDlReceiver,
    FlidDlSender,
    FlidDsReceiver,
    FlidDsSender,
    InflatedSubscriptionFlidDlReceiver,
    InflatedSubscriptionFlidDsReceiver,
    SessionSpec,
)
from ..multicast_cc.receiver_base import LayeredReceiverBase
from ..multicast_cc.sender_base import LayeredSenderBase
from ..simulator.igmp import install_igmp
from ..simulator.monitors import OverheadAccumulator
from ..simulator.node import Host
from ..simulator.topology import DumbbellConfig, DumbbellNetwork
from ..transport.cbr import CbrSink, OnOffCbrSource
from ..transport.tcp import TcpConnection
from .config import ExperimentConfig

__all__ = ["MulticastSession", "Scenario"]


@dataclass
class MulticastSession:
    """Handles to one multicast session created by the scenario builder."""

    spec: SessionSpec
    protected: bool
    sender: LayeredSenderBase
    receivers: List[LayeredReceiverBase] = field(default_factory=list)
    overhead: Optional[OverheadAccumulator] = None

    @property
    def receiver(self) -> LayeredReceiverBase:
        """The session's first (often only) receiver."""
        return self.receivers[0]


class Scenario:
    """One §5-style experiment: a dumbbell plus a configurable traffic mix."""

    def __init__(
        self,
        config: ExperimentConfig,
        protected: bool,
        bottleneck_bps: Optional[float] = None,
        expected_sessions: int = 1,
        sigma_config: Optional[SigmaConfig] = None,
    ) -> None:
        self.config = config
        self.protected = protected
        dumbbell_config = config.dumbbell(expected_sessions, bottleneck_bps)
        self.network = DumbbellNetwork(dumbbell_config)
        self.sessions: List[MulticastSession] = []
        self.tcp_connections: List[TcpConnection] = []
        self.cbr_sources: List[OnOffCbrSource] = []
        self.cbr_sinks: List[CbrSink] = []
        self.sigma: Optional[SigmaRouterAgent] = None
        self._next_port = 5000

        if protected:
            slot_clock = SlotClock(self.network.sim, config.flid_ds_slot_s)
            self.sigma = SigmaRouterAgent(
                self.network.right,
                self.network.multicast,
                slot_clock,
                config=sigma_config,
            )
            slot_clock.start()
        else:
            install_igmp(self.network.right, self.network.multicast)

    # ------------------------------------------------------------------
    # multicast sessions
    # ------------------------------------------------------------------
    def add_multicast_session(
        self,
        session_id: Optional[str] = None,
        receivers: int = 1,
        misbehaving: Tuple[int, ...] = (),
        attack_start_s: float = 0.0,
        receiver_start_times: Optional[List[float]] = None,
        receiver_access_delays: Optional[List[Optional[float]]] = None,
        track_overhead: bool = False,
        suppress_unsubscribed_groups: bool = True,
    ) -> MulticastSession:
        """Create one multicast session with its sender and receivers.

        ``misbehaving`` lists the (0-based) receiver indices that mount the
        inflated-subscription attack starting at ``attack_start_s``.
        """
        index = len(self.sessions) + 1
        session_id = session_id or f"mc{index}"
        spec = self.config.session_spec(session_id, self.protected).with_addresses(
            self.network.allocate_groups(self.config.group_count)
        )
        overhead = OverheadAccumulator() if track_overhead else None

        sender_host = self.network.add_sender(f"{session_id}-src")
        sender: LayeredSenderBase
        if self.protected:
            sender = FlidDsSender(
                self.network,
                sender_host,
                spec,
                key_bits=self.config.key_bits,
                overhead=overhead,
                suppress_unsubscribed_groups=suppress_unsubscribed_groups,
            )
        else:
            sender = FlidDlSender(
                self.network,
                sender_host,
                spec,
                overhead=overhead,
                suppress_unsubscribed_groups=suppress_unsubscribed_groups,
            )

        session = MulticastSession(
            spec=spec, protected=self.protected, sender=sender, overhead=overhead
        )
        start_times = receiver_start_times or [0.0] * receivers
        access_delays = receiver_access_delays or [None] * receivers
        for r_index in range(receivers):
            host = self.network.add_receiver(
                f"{session_id}-rx{r_index + 1}", access_delay_s=access_delays[r_index]
            )
            receiver = self._make_receiver(
                spec, host, misbehaving=r_index in misbehaving, attack_start_s=attack_start_s
            )
            session.receivers.append(receiver)
            receiver.start(start_times[r_index])
        sender.start()
        self.sessions.append(session)
        return session

    def _make_receiver(
        self,
        spec: SessionSpec,
        host: Host,
        misbehaving: bool,
        attack_start_s: float,
    ) -> LayeredReceiverBase:
        if self.protected:
            if misbehaving:
                return InflatedSubscriptionFlidDsReceiver(
                    self.network,
                    host,
                    spec,
                    attack_start_s=attack_start_s,
                    key_bits=self.config.key_bits,
                )
            return FlidDsReceiver(self.network, host, spec, key_bits=self.config.key_bits)
        if misbehaving:
            return InflatedSubscriptionFlidDlReceiver(
                self.network, host, spec, attack_start_s=attack_start_s
            )
        return FlidDlReceiver(self.network, host, spec)

    # ------------------------------------------------------------------
    # unicast traffic
    # ------------------------------------------------------------------
    def add_tcp_connection(self, name: Optional[str] = None, start_s: float = 0.0) -> TcpConnection:
        """Add a TCP Reno connection crossing the bottleneck left to right."""
        index = len(self.tcp_connections) + 1
        name = name or f"tcp{index}"
        source = self.network.add_sender(f"{name}-src")
        sink_host = self.network.add_receiver(f"{name}-dst")
        self.network.build_routes()
        connection = TcpConnection.create(
            source, sink_host, port=self._allocate_port(), segment_bytes=self.config.packet_bytes, name=name
        )
        connection.start(start_s)
        self.tcp_connections.append(connection)
        return connection

    def add_onoff_cbr(
        self,
        rate_bps: float,
        on_s: float = 5.0,
        off_s: float = 5.0,
        active_window: Optional[Tuple[float, float]] = None,
        name: str = "cbr",
    ) -> Tuple[OnOffCbrSource, CbrSink]:
        """Add an on-off CBR session crossing the bottleneck."""
        source_host = self.network.add_sender(f"{name}-src")
        sink_host = self.network.add_receiver(f"{name}-dst")
        self.network.build_routes()
        port = self._allocate_port()
        sink = CbrSink(sink_host, port, name=f"{name}-sink")
        source = OnOffCbrSource(
            source_host,
            sink_host,
            port,
            rate_bps=rate_bps,
            on_s=on_s,
            off_s=off_s,
            packet_bytes=self.config.packet_bytes,
            active_window=active_window,
            name=name,
        )
        source.start()
        self.cbr_sources.append(source)
        self.cbr_sinks.append(sink)
        return source, sink

    def _allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, duration_s: Optional[float] = None) -> None:
        """Build routes and run the simulation for the configured duration."""
        self.network.run(duration_s if duration_s is not None else self.config.duration_s)

    # ------------------------------------------------------------------
    # results helpers
    # ------------------------------------------------------------------
    def multicast_average_kbps(
        self, start_s: Optional[float] = None, end_s: Optional[float] = None
    ) -> List[float]:
        """Average throughput of each session's first receiver."""
        start = self.config.warmup_s if start_s is None else start_s
        end = self.config.duration_s if end_s is None else end_s
        return [s.receiver.average_rate_kbps(start, end) for s in self.sessions]

    def tcp_average_kbps(
        self, start_s: Optional[float] = None, end_s: Optional[float] = None
    ) -> List[float]:
        start = self.config.warmup_s if start_s is None else start_s
        end = self.config.duration_s if end_s is None else end_s
        return [c.monitor.average_rate_kbps(start, end) for c in self.tcp_connections]
