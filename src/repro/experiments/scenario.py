"""Scenario construction: the interpreter of declarative scenario specs.

Historically :class:`Scenario` was a dumbbell-only builder; it is now an
interpreter over the general topology layer.  It can be driven two ways:

* **declaratively** — :meth:`Scenario.from_spec` takes a
  :class:`~repro.experiments.spec.ScenarioSpec` (topology by name plus session
  / cross-traffic declarations) and realises the whole experiment;
* **imperatively** — the historical API (construct, then
  :meth:`add_multicast_session` / :meth:`add_tcp_connection` /
  :meth:`add_onoff_cbr`) still works and now accepts an arbitrary
  :class:`~repro.simulator.topology.TopologySpec`, defaulting to the paper's
  dumbbell.

Group management is installed on *every* receiver-side router of the
topology: an IGMP manager per router for the unprotected baseline, or one
SIGMA agent per router (sharing a single slot clock) for the protected
system — on multi-bottleneck topologies such as the parking lot, star and
binary tree, each edge router polices its own local receivers.

The builder exposes the created senders/receivers/connections so experiments
and tests can interrogate throughput monitors, SIGMA statistics and level
histories after :meth:`run`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..adversary.cohort import (
    AdversarialCohortFlidDlReceiver,
    AdversarialCohortFlidDsReceiver,
)
from ..adversary.receivers import AdversarialFlidDlReceiver, AdversarialFlidDsReceiver
from ..adversary.vector import (
    AdversarialVectorFlidDlReceiver,
    AdversarialVectorFlidDsReceiver,
)
from ..adversary.registry import build_strategies
from ..adversary.spec import AttackSpec
from ..core.sigma import SigmaConfig, SigmaRouterAgent
from ..core.timeslot import SlotClock
from ..multicast_cc import (
    AdversarialCohort,
    CohortFlidDlReceiver,
    CohortFlidDsReceiver,
    FlidDlReceiver,
    FlidDlSender,
    FlidDsReceiver,
    FlidDsSender,
    IndividualReceiver,
    PopulationTable,
    ReceiverCohort,
    ReceiverModel,
    SessionSpec,
    VectorFlidDlReceiver,
    VectorFlidDsReceiver,
)
from ..multicast_cc.population import split_counts
from ..multicast_cc.receiver_base import LayeredReceiverBase
from ..multicast_cc.sender_base import LayeredSenderBase
from ..simulator.igmp import IgmpGroupManager, install_igmp
from ..simulator.monitors import OverheadAccumulator
from ..simulator.node import Host
from ..simulator.topology import (
    DumbbellConfig,
    DumbbellNetwork,
    NetworkGraph,
    TopologySpec,
    build_topology,
)
from ..transport.cbr import CbrSink, OnOffCbrSource
from ..transport.tcp import TcpConnection
from .config import ExperimentConfig
from .spec import CohortDecl, ScenarioSpec

#: Stamped into every :meth:`Scenario.checkpoint` blob; bump whenever the
#: pickled state layout changes so stale blobs read as misses, never as state.
CHECKPOINT_VERSION = 1

__all__ = ["MulticastSession", "Scenario"]


@dataclass
class MulticastSession:
    """Handles to one multicast session created by the scenario builder.

    ``receivers`` lists the live receiver *objects* (one per model — a
    cohort receiver appears once however many members it aggregates);
    ``models`` wraps each in its :class:`~repro.multicast_cc.receiver_model`
    so metric code can weight by population without branching on kind.
    """

    spec: SessionSpec
    protected: bool
    sender: LayeredSenderBase
    receivers: List[LayeredReceiverBase] = field(default_factory=list)
    models: List[ReceiverModel] = field(default_factory=list)
    overhead: Optional[OverheadAccumulator] = None
    #: Per population block, the half-open ``(start, stop)`` range of indices
    #: its realised receiver objects occupy in ``receivers`` — one entry per
    #: ``SessionDecl.population`` declaration, in declaration order.  How
    #: many objects a block realises as depends on the model (``count`` for
    #: individuals, ``cohorts`` for per-cohort objects, one per edge router
    #: for vector blocks), so downstream code maps declarations to objects
    #: through these slices rather than re-deriving the arithmetic.
    block_slices: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def receiver(self) -> LayeredReceiverBase:
        """The session's first (often only) receiver."""
        return self.receivers[0]

    @property
    def total_population(self) -> int:
        """End systems served by the session across all receiver models."""
        return sum(model.population for model in self.models)

    def _adopt(
        self,
        receiver: LayeredReceiverBase,
        cohort: bool = False,
        adversarial: bool = False,
    ) -> None:
        """Register a built receiver object under the matching model."""
        self.receivers.append(receiver)
        if cohort:
            model: ReceiverModel = (
                AdversarialCohort(receiver) if adversarial else ReceiverCohort(receiver)
            )
        else:
            model = IndividualReceiver(receiver)
        self.models.append(model)


class Scenario:
    """One experiment: a topology graph plus a configurable traffic mix."""

    def __init__(
        self,
        config: ExperimentConfig,
        protected: bool,
        bottleneck_bps: Optional[float] = None,
        expected_sessions: int = 1,
        sigma_config: Optional[SigmaConfig] = None,
        topology: Optional[TopologySpec] = None,
        dumbbell_config: Optional[DumbbellConfig] = None,
    ) -> None:
        self.config = config
        self.protected = protected
        if topology is None:
            self.network: NetworkGraph = DumbbellNetwork(
                dumbbell_config or config.dumbbell(expected_sessions, bottleneck_bps)
            )
        else:
            self.network = NetworkGraph(topology, seed=config.seed)
        self.sessions: List[MulticastSession] = []
        self.tcp_connections: List[TcpConnection] = []
        self.cbr_sources: List[OnOffCbrSource] = []
        self.cbr_sinks: List[CbrSink] = []
        self.sigma_agents: List[SigmaRouterAgent] = []
        self.igmp_managers: List[IgmpGroupManager] = []
        self.slot_clock: Optional[SlotClock] = None
        #: Columnar population state shared by every vector block of the
        #: scenario (``None`` until the first ``model="vector"`` block).
        self.population_table: Optional[PopulationTable] = None
        self._next_port = 5000

        if protected:
            # One slot clock drives every edge agent so all receiver-side
            # routers revoke/grant on the same slot boundaries (§3.2).
            self.slot_clock = SlotClock(self.network.sim, config.flid_ds_slot_s)
            for router in self.network.receiver_edge_routers:
                self.sigma_agents.append(
                    SigmaRouterAgent(
                        router,
                        self.network.multicast,
                        self.slot_clock,
                        config=sigma_config,
                    )
                )
            self.slot_clock.start()
        else:
            for router in self.network.receiver_edge_routers:
                self.igmp_managers.append(install_igmp(router, self.network.multicast))

    @property
    def sigma(self) -> Optional[SigmaRouterAgent]:
        """The first (on a dumbbell: the only) SIGMA edge agent."""
        return self.sigma_agents[0] if self.sigma_agents else None

    # ------------------------------------------------------------------
    # declarative construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: ScenarioSpec, sigma_config: Optional[SigmaConfig] = None) -> "Scenario":
        """Realise a declarative :class:`ScenarioSpec` into a live scenario."""
        params = dict(spec.topology_params)
        topology: Optional[TopologySpec] = None
        dumbbell_config = None
        if spec.topology == "dumbbell":
            # Dumbbells always go through DumbbellConfig (sized from fair
            # share × expected sessions) so parameter overrides — including
            # seed and graft/prune delays — reach the realised network.
            if params:
                dumbbell_config = spec.config.dumbbell(
                    spec.expected_sessions, spec.bottleneck_bps
                )
                for key, value in params.items():
                    if not hasattr(dumbbell_config, key):
                        raise TypeError(f"unknown dumbbell parameter {key!r}")
                    setattr(dumbbell_config, key, value)
        else:
            topology = build_topology(spec.topology, **params)
        scenario = cls(
            spec.config,
            spec.protected,
            bottleneck_bps=spec.bottleneck_bps,
            expected_sessions=spec.expected_sessions,
            sigma_config=sigma_config,
            topology=topology,
            dumbbell_config=dumbbell_config,
        )
        for session in spec.sessions:
            scenario.add_multicast_session(
                session.session_id,
                receivers=session.receivers,
                misbehaving=tuple(session.misbehaving),
                attack_start_s=session.attack_start_s,
                attacks=session.attacks,
                receiver_start_times=(
                    list(session.receiver_start_times)
                    if session.receiver_start_times is not None
                    else None
                ),
                receiver_access_delays=(
                    list(session.receiver_access_delays)
                    if session.receiver_access_delays is not None
                    else None
                ),
                receiver_routers=(
                    list(session.receiver_routers)
                    if session.receiver_routers is not None
                    else None
                ),
                track_overhead=session.track_overhead,
                suppress_unsubscribed_groups=session.suppress_unsubscribed_groups,
                population=session.population,
            )
        for tcp in spec.tcp:
            scenario.add_tcp_connection(
                tcp.name,
                start_s=tcp.start_s,
                sender_router=tcp.sender_router,
                receiver_router=tcp.receiver_router,
            )
        for cbr in spec.cbr:
            scenario.add_onoff_cbr(
                rate_bps=cbr.rate_bps,
                on_s=cbr.on_s,
                off_s=cbr.off_s,
                active_window=(
                    (cbr.active_window[0], cbr.active_window[1])
                    if cbr.active_window is not None
                    else None
                ),
                name=cbr.name,
                sender_router=cbr.sender_router,
                receiver_router=cbr.receiver_router,
            )
        return scenario

    # ------------------------------------------------------------------
    # multicast sessions
    # ------------------------------------------------------------------
    def add_multicast_session(
        self,
        session_id: Optional[str] = None,
        receivers: int = 1,
        misbehaving: Tuple[int, ...] = (),
        attack_start_s: float = 0.0,
        attacks: Sequence[AttackSpec] = (),
        receiver_start_times: Optional[List[float]] = None,
        receiver_access_delays: Optional[List[Optional[float]]] = None,
        receiver_routers: Optional[List[Optional[str]]] = None,
        track_overhead: bool = False,
        suppress_unsubscribed_groups: bool = True,
        population: Sequence[CohortDecl] = (),
    ) -> MulticastSession:
        """Create one multicast session with its sender and receivers.

        ``attacks`` lists :class:`~repro.adversary.spec.AttackSpec`
        declarations; each targets one or more (0-based) receiver indices and
        several may stack on the same receiver.  ``misbehaving`` is the
        historical shorthand: the listed indices mount the paper's default
        inflated-subscription stack from ``attack_start_s``.
        ``receiver_routers`` optionally pins receivers to named routers.

        ``population`` appends blocks of homogeneous honest receivers after
        the individual ones: each :class:`~repro.experiments.spec.CohortDecl`
        is realised either as one aggregated cohort receiver (its default)
        or, for reference runs, as ``count`` per-object receivers.  Attacks
        never target population blocks.
        """
        index = len(self.sessions) + 1
        session_id = session_id or f"mc{index}"
        spec = self.config.session_spec(session_id, self.protected).with_addresses(
            self.network.allocate_groups(self.config.group_count)
        )
        overhead = OverheadAccumulator() if track_overhead else None

        sender_host = self.network.add_sender(f"{session_id}-src")
        sender: LayeredSenderBase
        if self.protected:
            sender = FlidDsSender(
                self.network,
                sender_host,
                spec,
                key_bits=self.config.key_bits,
                overhead=overhead,
                suppress_unsubscribed_groups=suppress_unsubscribed_groups,
            )
        else:
            sender = FlidDlSender(
                self.network,
                sender_host,
                spec,
                overhead=overhead,
                suppress_unsubscribed_groups=suppress_unsubscribed_groups,
            )

        session = MulticastSession(
            spec=spec, protected=self.protected, sender=sender, overhead=overhead
        )
        per_receiver = self._attacks_per_receiver(
            receivers, misbehaving, attack_start_s, attacks
        )
        start_times = receiver_start_times or [0.0] * receivers
        access_delays = receiver_access_delays or [None] * receivers
        routers = receiver_routers or [None] * receivers
        for r_index in range(receivers):
            host = self.network.add_receiver(
                f"{session_id}-rx{r_index + 1}",
                access_delay_s=access_delays[r_index],
                router=routers[r_index],
            )
            receiver = self._make_receiver(spec, host, per_receiver.get(r_index, ()))
            session._adopt(receiver)
            receiver.start(start_times[r_index])
        for c_index, cohort in enumerate(population):
            start = len(session.receivers)
            self._add_population(session, spec, session_id, c_index, cohort)
            session.block_slices.append((start, len(session.receivers)))
        sender.start()
        self.sessions.append(session)
        return session

    def _add_population(
        self,
        session: MulticastSession,
        spec: SessionSpec,
        session_id: str,
        c_index: int,
        cohort: CohortDecl,
    ) -> None:
        """Realise one population block as cohorts, individuals or columns.

        A block carrying an :class:`~repro.adversary.spec.AttackSpec`
        realises as an adversarial cohort (every member mounts the declared
        batch-exact strategy); with ``model="individual"`` the same attack
        is mounted by each per-object member — the reference realisation
        the adversarial-cohort equivalence tests compare against.  A
        ``cohorts=K`` split realises ``model="cohort"`` as K per-cohort
        receiver objects and ``model="vector"`` as K rows of per-edge
        columnar blocks (one vectorised receiver per edge router).
        """
        attacks = (cohort.attack,) if cohort.attack is not None else ()
        if cohort.model == "individual":
            # Reference realisation: the same population as per-object
            # receivers (what the equivalence tests and the scale benchmark
            # compare the aggregated model against).
            for member in range(cohort.count):
                host = self.network.add_receiver(
                    f"{session_id}-pop{c_index + 1}-rx{member + 1}",
                    router=cohort.router,
                )
                receiver = self._make_receiver(spec, host, attacks)
                session._adopt(receiver)
                receiver.start(cohort.start_s)
            return
        if cohort.model == "vector":
            self._add_vector_block(session, spec, session_id, c_index, cohort, attacks)
            return
        counts = split_counts(cohort.count, cohort.cohorts or 1)
        for k, members in enumerate(counts):
            # The single-cohort host keeps its historical name so legacy
            # scenarios stay byte-identical; split cohorts get a -k suffix.
            suffix = "" if len(counts) == 1 else f"-{k + 1}"
            host = self.network.add_receiver(
                f"{session_id}-cohort{c_index + 1}{suffix}", router=cohort.router
            )
            receiver: LayeredReceiverBase
            if attacks:
                strategies = build_strategies(attacks, self.network, spec, host.name)
                if self.protected:
                    receiver = AdversarialCohortFlidDsReceiver(
                        self.network,
                        host,
                        spec,
                        strategies,
                        population=members,
                        key_bits=self.config.key_bits,
                    )
                else:
                    receiver = AdversarialCohortFlidDlReceiver(
                        self.network, host, spec, strategies, population=members
                    )
            elif self.protected:
                receiver = CohortFlidDsReceiver(
                    self.network,
                    host,
                    spec,
                    population=members,
                    key_bits=self.config.key_bits,
                )
            else:
                receiver = CohortFlidDlReceiver(
                    self.network, host, spec, population=members
                )
            if cohort.churn is not None:
                receiver.attach_churn(cohort.churn)
            session._adopt(receiver, cohort=True, adversarial=bool(attacks))
            receiver.start(cohort.start_s)

    def _add_vector_block(
        self,
        session: MulticastSession,
        spec: SessionSpec,
        session_id: str,
        c_index: int,
        cohort: CohortDecl,
        attacks: Sequence[AttackSpec],
    ) -> None:
        """Realise one ``model="vector"`` block through the columnar engine.

        The block's cohorts become rows of the scenario-level
        :class:`~repro.multicast_cc.population.PopulationTable`, spread
        round-robin across the receiver edge routers (or pinned to
        ``cohort.router``); each edge with at least one row gets **one**
        vectorised receiver — Python object count scales with edges, not
        cohorts.
        """
        counts = split_counts(cohort.count, cohort.cohorts or 1)
        if cohort.router is not None:
            edges: List[str] = [cohort.router]
        else:
            edges = list(self.network.spec.receiver_routers)
        per_edge: Dict[str, List[int]] = {edge: [] for edge in edges}
        for row, members in enumerate(counts):
            per_edge[edges[row % len(edges)]].append(members)
        table = self._require_population_table()
        for e_index, edge in enumerate(edges):
            edge_counts = per_edge[edge]
            if not edge_counts:
                continue
            host = self.network.add_receiver(
                f"{session_id}-vec{c_index + 1}-{e_index + 1}", router=edge
            )
            receiver: LayeredReceiverBase
            if attacks:
                strategies = build_strategies(attacks, self.network, spec, host.name)
                if self.protected:
                    receiver = AdversarialVectorFlidDsReceiver(
                        self.network,
                        host,
                        spec,
                        strategies,
                        counts=edge_counts,
                        table=table,
                        router=edge,
                        key_bits=self.config.key_bits,
                    )
                else:
                    receiver = AdversarialVectorFlidDlReceiver(
                        self.network,
                        host,
                        spec,
                        strategies,
                        counts=edge_counts,
                        table=table,
                        router=edge,
                    )
            elif self.protected:
                receiver = VectorFlidDsReceiver(
                    self.network,
                    host,
                    spec,
                    counts=edge_counts,
                    table=table,
                    router=edge,
                    key_bits=self.config.key_bits,
                )
            else:
                receiver = VectorFlidDlReceiver(
                    self.network,
                    host,
                    spec,
                    counts=edge_counts,
                    table=table,
                    router=edge,
                )
            session._adopt(receiver, cohort=True, adversarial=bool(attacks))
            receiver.start(cohort.start_s)

    def _require_population_table(self) -> PopulationTable:
        """The scenario-level population table, created on first vector block.

        Lazy so legacy scenarios never touch the columnar machinery (or the
        backend selection) at all.
        """
        if self.population_table is None:
            self.population_table = PopulationTable()
        return self.population_table

    def _attacks_per_receiver(
        self,
        receivers: int,
        misbehaving: Tuple[int, ...],
        attack_start_s: float,
        attacks: Sequence[AttackSpec],
    ) -> Dict[int, List[AttackSpec]]:
        """Resolve legacy + declared attacks into per-receiver stacks.

        The legacy ``misbehaving`` shorthand expands to the paper's default
        attacker for the scenario's protocol: plain ``inflated-join`` against
        FLID-DL (Figure 1), or the composite Figure 7 stack (bare joins on
        top of the honest pipeline, key replay, key guessing) against
        FLID-DS.  Declared attacks follow in declaration order.
        """
        per_receiver: Dict[int, List[AttackSpec]] = {}
        if misbehaving:
            if self.protected:
                legacy = [
                    AttackSpec(
                        "inflated-join",
                        receivers=misbehaving,
                        start_s=attack_start_s,
                        params={"suppress_honest": False},
                    ),
                    AttackSpec("key-replay", receivers=misbehaving, start_s=attack_start_s),
                    AttackSpec("key-guessing", receivers=misbehaving, start_s=attack_start_s),
                ]
            else:
                legacy = [
                    AttackSpec("inflated-join", receivers=misbehaving, start_s=attack_start_s)
                ]
            attacks = legacy + list(attacks)
        for attack in attacks:
            for index in attack.receivers:
                if not 0 <= index < receivers:
                    raise ValueError(
                        f"attack {attack.strategy!r} targets receiver {index}, "
                        f"out of range for {receivers} receivers"
                    )
                per_receiver.setdefault(index, []).append(attack)
        return per_receiver

    def _make_receiver(
        self,
        spec: SessionSpec,
        host: Host,
        attacks: Sequence[AttackSpec],
    ) -> LayeredReceiverBase:
        if not attacks:
            if self.protected:
                return FlidDsReceiver(
                    self.network, host, spec, key_bits=self.config.key_bits
                )
            return FlidDlReceiver(self.network, host, spec)
        strategies = build_strategies(attacks, self.network, spec, host.name)
        if self.protected:
            return AdversarialFlidDsReceiver(
                self.network, host, spec, strategies, key_bits=self.config.key_bits
            )
        return AdversarialFlidDlReceiver(self.network, host, spec, strategies)

    # ------------------------------------------------------------------
    # unicast traffic
    # ------------------------------------------------------------------
    def add_tcp_connection(
        self,
        name: Optional[str] = None,
        start_s: float = 0.0,
        sender_router: Optional[str] = None,
        receiver_router: Optional[str] = None,
    ) -> TcpConnection:
        """Add a TCP Reno connection crossing the topology left to right."""
        index = len(self.tcp_connections) + 1
        name = name or f"tcp{index}"
        source = self.network.add_sender(f"{name}-src", router=sender_router)
        sink_host = self.network.add_receiver(f"{name}-dst", router=receiver_router)
        self.network.build_routes()
        connection = TcpConnection.create(
            source, sink_host, port=self._allocate_port(), segment_bytes=self.config.packet_bytes, name=name
        )
        connection.start(start_s)
        self.tcp_connections.append(connection)
        return connection

    def add_onoff_cbr(
        self,
        rate_bps: float,
        on_s: float = 5.0,
        off_s: float = 5.0,
        active_window: Optional[Tuple[float, float]] = None,
        name: str = "cbr",
        sender_router: Optional[str] = None,
        receiver_router: Optional[str] = None,
    ) -> Tuple[OnOffCbrSource, CbrSink]:
        """Add an on-off CBR session crossing the topology."""
        source_host = self.network.add_sender(f"{name}-src", router=sender_router)
        sink_host = self.network.add_receiver(f"{name}-dst", router=receiver_router)
        self.network.build_routes()
        port = self._allocate_port()
        sink = CbrSink(sink_host, port, name=f"{name}-sink")
        source = OnOffCbrSource(
            source_host,
            sink_host,
            port,
            rate_bps=rate_bps,
            on_s=on_s,
            off_s=off_s,
            packet_bytes=self.config.packet_bytes,
            active_window=active_window,
            name=name,
        )
        source.start()
        self.cbr_sources.append(source)
        self.cbr_sinks.append(sink)
        return source, sink

    def _allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, duration_s: Optional[float] = None) -> None:
        """Build routes and run the simulation for the configured duration."""
        self.network.run(duration_s if duration_s is not None else self.config.duration_s)

    # ------------------------------------------------------------------
    # checkpoint / warm-start
    # ------------------------------------------------------------------
    def run_to_barrier(self, barrier_s: float) -> None:
        """Run the simulation strictly *up to* a slot barrier (exclusive).

        Events scheduled at exactly ``barrier_s`` stay queued and fire first
        when the scenario is resumed, so ``run_to_barrier(b)`` followed by
        ``run(d)`` executes exactly the event sequence of a cold ``run(d)``.
        The clock still advances to ``barrier_s`` even if the queues drain
        early, matching :meth:`~repro.simulator.engine.Simulator.run`.
        """
        self.network.ensure_routes()
        self.network.sim.run(until=barrier_s, inclusive=False)

    def checkpoint(self) -> bytes:
        """Serialise the complete live simulation state into one blob.

        Every piece of mutable state — the two event lanes, timer groups,
        named RNG streams, population tables, SIGMA/IGMP agents, monitors
        and receiver models — hangs off this object graph, and every
        scheduled callable is a named bound method, so a single pickle
        captures the full simulation.  Rebuild with :meth:`restore`.
        """
        return pickle.dumps(
            (CHECKPOINT_VERSION, self), protocol=pickle.HIGHEST_PROTOCOL
        )

    @classmethod
    def restore(cls, blob: bytes) -> "Scenario":
        """Rebuild a checkpointed scenario from :meth:`checkpoint` output.

        Raises :class:`ValueError` when the blob was written by an
        incompatible checkpoint layout (callers treat that as a cache miss).
        """
        payload = pickle.loads(blob)
        if (
            not isinstance(payload, tuple)
            or len(payload) != 2
            or payload[0] != CHECKPOINT_VERSION
            or not isinstance(payload[1], cls)
        ):
            raise ValueError("incompatible scenario checkpoint")
        return payload[1]

    def rebind_spec(self, spec: ScenarioSpec) -> None:
        """Swap a restored prefix's placeholder declarations for ``spec``'s.

        A warm-start prefix runs with canonical placeholder attacks and
        churn processes that are inert before the barrier (see
        :mod:`repro.experiments.warmstart`), so divergent grid cells share
        one checkpoint.  Rebinding is exact: strategy RNG stream names
        depend only on (session, host, attack index, strategy) and a
        zero-draw stream equals a freshly created one, while churned blocks
        keep their ``_churn_initial`` booking because an inert process never
        changed the population before the barrier.
        """
        for decl, session in zip(spec.sessions, self.sessions):
            per_receiver = self._attacks_per_receiver(
                decl.receivers,
                tuple(decl.misbehaving),
                decl.attack_start_s,
                decl.attacks,
            )
            for r_index, attacks in per_receiver.items():
                self._rebind_strategies(session, session.receivers[r_index], attacks)
            for b_index, cohort in enumerate(decl.population):
                start, stop = session.block_slices[b_index]
                for receiver in session.receivers[start:stop]:
                    if cohort.attack is not None:
                        self._rebind_strategies(session, receiver, (cohort.attack,))
                    if cohort.churn is not None:
                        receiver._churn = cohort.churn

    def _rebind_strategies(
        self,
        session: MulticastSession,
        receiver: LayeredReceiverBase,
        attacks: Sequence[AttackSpec],
    ) -> None:
        strategies = build_strategies(
            list(attacks), self.network, session.spec, receiver.host.name
        )
        receiver._strategies = strategies
        context = receiver._attack_ctx
        if context is not None:
            for strategy in strategies:
                strategy.on_attach(context)

    # ------------------------------------------------------------------
    # results helpers
    # ------------------------------------------------------------------
    def multicast_average_kbps(
        self, start_s: Optional[float] = None, end_s: Optional[float] = None
    ) -> List[float]:
        """Average throughput of each session's first receiver."""
        start = self.config.warmup_s if start_s is None else start_s
        end = self.config.duration_s if end_s is None else end_s
        return [s.receiver.average_rate_kbps(start, end) for s in self.sessions]

    def tcp_average_kbps(
        self, start_s: Optional[float] = None, end_s: Optional[float] = None
    ) -> List[float]:
        start = self.config.warmup_s if start_s is None else start_s
        end = self.config.duration_s if end_s is None else end_s
        return [c.monitor.average_rate_kbps(start, end) for c in self.tcp_connections]
