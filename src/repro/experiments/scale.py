"""Scale scenarios: cohort-aggregated audiences of 10k-100k+ receivers.

The paper's claims are scaling claims — SIGMA's bound on inflated
subscription damage holds for *any* honest audience size, and the §5.4
overhead model is independent of the receiver count because keys travel once
per edge router, not once per receiver.  The historical scenarios exercise
tens of receivers; the scenarios here push the population axis three orders
of magnitude further by realising populations as
:class:`~repro.experiments.spec.CohortDecl` blocks (one aggregated receiver
per edge interface; see ``docs/scale.md``):

* ``scale-dumbbell-10k`` — the Figure 1/7 inflated-subscription duel with a
  10,000-receiver honest audience behind the bottleneck: one individual
  attacker inflates its subscription into a cohort-backed session, SIGMA
  contains it, and the protection metrics are population-weighted.
* ``scale-overhead-100k`` — the Figure 9 measured-overhead cross-check with
  a 100,000-receiver audience: DELTA/SIGMA overhead on the wire must stay at
  its per-session value however large the audience grows (the overhead
  model's group-count axis, extended along the population dimension).
* ``attack-inflated-100k`` — the robustness claim at full scale: an
  **adversarial cohort** of inflated-join attackers against a
  100,000-receiver honest audience, both aggregated, protection metrics
  population-weighted (completes in seconds on one CPU; the acceptance
  budget is 60 s wall).
* ``attack-keys-100k`` — the §4 key-oriented attacks at full scale: a
  key-replay cohort and a key-guessing cohort (the formerly randomised
  strategies, batch-exact since PR 8) against a 100,000-receiver honest
  audience, every counter population-weighted.
* ``attack-collusion-100k`` — §4.3 key sharing at full scale on the
  parking lot: an upstream publisher-colluder cohort keeps full entitlement
  and feeds the shared pool while a downstream exploiting-colluder cohort,
  squeezed by a CBR burst, submits the pooled keys across its own congested
  bottleneck — with a 100,000-receiver honest audience behind the same
  squeezed hop.
* ``attack-churn-flash-crowd`` — audience dynamics: a churn-attack receiver
  probing the grace windows while the honest cohort's population jumps
  100 → 100,000 mid-session through a
  :class:`~repro.multicast_cc.churn.ChurnProcess` burst.
* ``scale-protection`` — one point of the audience × attacker-fraction
  protection grid; :func:`run_scale_protection_sweep` fans the full grid
  through the parallel :class:`~repro.experiments.runner.ExperimentRunner`
  (see ``examples/attack_at_scale.py``).
* ``scale-dumbbell-1m`` — the columnar-engine flagship: a 1,000,000-receiver
  honest audience split across thousands of cohort rows on a generated
  multi-edge dumbbell, with an adversarial inflated-join population riding
  the same edges — both realised as ``model="vector"`` blocks advanced one
  array pass per slot by the :mod:`~repro.multicast_cc.population` engine
  (completes on one CPU inside the 5-minute CI scale-smoke budget).
* ``scale-dumbbell-10m`` — the region-sharded flagship: the same duel at
  10,000,000 receivers on a ``sharded-dumbbell`` topology whose 8 regions
  run as independent process-pool workers with a deterministic
  boundary-event merge (``shards=8``; see :mod:`repro.experiments.shard`
  and ``docs/scale.md``).

Builders accept ``model="individual"`` to realise the same spec with
per-object receivers — the reference the equivalence tests and the
``benchmarks/bench_scale_cohort.py`` speedup assertion compare against
(at small counts; per-object 100k receivers would not fit in memory).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..adversary.spec import AttackSpec
from ..multicast_cc.churn import ChurnProcess
from .config import PAPER_DEFAULTS, ExperimentConfig
from .registry import register_scenario
from .runner import ExperimentRunner, RunResult
from .spec import CbrDecl, CohortDecl, ScenarioSpec, SessionDecl

__all__ = [
    "scale_dumbbell_spec",
    "scale_dumbbell_1m_spec",
    "scale_dumbbell_10m_spec",
    "scale_overhead_spec",
    "attack_inflated_100k_spec",
    "attack_keys_100k_spec",
    "attack_collusion_100k_spec",
    "attack_churn_flash_crowd_spec",
    "scale_protection_spec",
    "run_scale_protection_sweep",
]


def scale_dumbbell_spec(
    receivers: int = 10_000,
    protected: bool = True,
    attack_start_s: float = 10.0,
    duration_s: Optional[float] = 30.0,
    model: str = "cohort",
    cohorts: Optional[int] = None,
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> ScenarioSpec:
    """Inflated-subscription duel against a ``receivers``-strong audience.

    Two sessions share a fair-share-sized dumbbell bottleneck: an
    ``audience`` session whose honest population is one cohort of
    ``receivers`` members, and an ``attacker`` session whose single
    individual receiver mounts the paper's default inflated-subscription
    stack from ``attack_start_s`` — few attackers, many honest receivers,
    exactly the paper's threat model at scale.  ``cohorts`` splits the
    audience into that many cohort rows (the axis the columnar-engine
    benchmark sweeps); ``None`` keeps the single-cohort legacy shape.
    """
    return ScenarioSpec(
        name="scale-dumbbell-10k",
        protected=protected,
        expected_sessions=2,
        sessions=(
            SessionDecl(
                "audience",
                receivers=0,
                population=(CohortDecl(receivers, model=model, cohorts=cohorts),),
            ),
            SessionDecl(
                "attacker",
                receivers=1,
                misbehaving=(0,),
                attack_start_s=attack_start_s,
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "scale-dumbbell-10k",
    "Inflated-subscription attack against a 10,000-receiver cohort audience "
    "on the paper's dumbbell (population-weighted protection metrics)",
)(scale_dumbbell_spec)


def scale_dumbbell_1m_spec(
    receivers: int = 1_000_000,
    cohorts: int = 4_096,
    attackers: int = 10_000,
    attacker_cohorts: int = 64,
    edges: int = 32,
    protected: bool = True,
    attack_start_s: float = 8.0,
    intensity: float = 1.0,
    duration_s: Optional[float] = 20.0,
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> ScenarioSpec:
    """The million-receiver duel on a generated multi-edge dumbbell.

    An ``audience`` session of ``receivers`` honest members split across
    ``cohorts`` cohort rows and an ``attackers`` session mounting the
    inflated-join strategy from ``attack_start_s`` share one fair-share-sized
    bottleneck feeding ``edges`` edge routers.  Both populations are
    ``model="vector"`` blocks: the columnar engine round-robins the cohort
    rows over the edge routers and advances each edge's block through the
    array-form decision rules in one pass per slot, so the Python object
    count scales with ``edges`` — not ``cohorts``, and certainly not
    ``receivers``.  That is what lets a 1M-receiver scenario finish on one
    CPU inside the CI scale-smoke budget (see ``docs/scale.md``).
    """
    return ScenarioSpec(
        name="scale-dumbbell-1m",
        protected=protected,
        expected_sessions=2,
        topology="multi-edge-dumbbell",
        topology_params={
            "edges": edges,
            "bottleneck_bandwidth_bps": 2 * config.fair_share_bps,
        },
        sessions=(
            SessionDecl(
                "audience",
                receivers=0,
                population=(
                    CohortDecl(receivers, model="vector", cohorts=cohorts),
                ),
            ),
            SessionDecl(
                "attackers",
                receivers=0,
                population=(
                    CohortDecl(
                        attackers,
                        model="vector",
                        cohorts=attacker_cohorts,
                        attack=AttackSpec(
                            "inflated-join",
                            start_s=attack_start_s,
                            intensity=intensity,
                        ),
                    ),
                ),
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "scale-dumbbell-1m",
    "Inflated-join attacker population against a 1,000,000-receiver honest "
    "audience on a 32-edge dumbbell — thousands of cohort rows advanced by "
    "the columnar population engine in one array pass per slot",
)(scale_dumbbell_1m_spec)


def scale_dumbbell_10m_spec(
    receivers: int = 10_000_000,
    cohorts: int = 8_192,
    attackers: int = 100_000,
    attacker_cohorts: int = 512,
    regions: int = 8,
    edges_per_region: int = 8,
    shards: int = 8,
    protected: bool = True,
    attack_start_s: float = 8.0,
    intensity: float = 1.0,
    duration_s: Optional[float] = 20.0,
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> ScenarioSpec:
    """The region-sharded flagship: ten million receivers across 8 regions.

    The ``scale-dumbbell-1m`` duel taken one order of magnitude further on a
    ``sharded-dumbbell`` topology: ``regions`` independently-bottlenecked
    multi-edge dumbbells hang off a shared trunk, the honest audience and
    the batched inflated-join attacker population are ``model="vector"``
    blocks round-robined over all ``regions × edges_per_region`` edge
    routers, and ``shards=N`` lets the runner execute each region in its own
    process-pool worker with a deterministic boundary-event merge
    (:mod:`repro.experiments.shard`).  The merged result is byte-identical
    between the serial and pooled paths — and, because each region has its
    own private bottleneck, to the unsharded run of the same topology.
    """
    return ScenarioSpec(
        name="scale-dumbbell-10m",
        protected=protected,
        expected_sessions=2,
        topology="sharded-dumbbell",
        topology_params={
            "regions": regions,
            "edges_per_region": edges_per_region,
            "bottleneck_bandwidth_bps": 2 * config.fair_share_bps,
        },
        sessions=(
            SessionDecl(
                "audience",
                receivers=0,
                population=(
                    CohortDecl(receivers, model="vector", cohorts=cohorts),
                ),
            ),
            SessionDecl(
                "attackers",
                receivers=0,
                population=(
                    CohortDecl(
                        attackers,
                        model="vector",
                        cohorts=attacker_cohorts,
                        attack=AttackSpec(
                            "inflated-join",
                            start_s=attack_start_s,
                            intensity=intensity,
                        ),
                    ),
                ),
            ),
        ),
        duration_s=duration_s,
        shards=shards,
        config=config,
    )


register_scenario(
    "scale-dumbbell-10m",
    "Inflated-join attacker population against a 10,000,000-receiver honest "
    "audience sharded across 8 topology regions, each region a process-pool "
    "worker, merged deterministically at slot barriers",
)(scale_dumbbell_10m_spec)


def scale_overhead_spec(
    receivers: int = 100_000,
    duration_s: Optional[float] = 30.0,
    model: str = "cohort",
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> ScenarioSpec:
    """Figure 9's measured overhead with a ``receivers``-strong audience.

    A generous bottleneck (twice the maximal cumulative session rate) keeps
    the audience at the top subscription level and suppression is disabled,
    so the full session rate flows and the measured DELTA/SIGMA overhead is
    directly comparable with the analytic model — which predicts it does not
    depend on the audience size at all, because keys travel per edge router.
    """
    max_rate_bps = config.base_rate_bps * config.rate_factor ** (config.group_count - 1)
    return ScenarioSpec(
        name="scale-overhead-100k",
        protected=True,
        expected_sessions=1,
        bottleneck_bps=2.0 * max_rate_bps,
        sessions=(
            SessionDecl(
                "audience",
                receivers=0,
                track_overhead=True,
                suppress_unsubscribed_groups=False,
                population=(CohortDecl(receivers, model=model),),
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "scale-overhead-100k",
    "Figure 9 overhead cross-check with a 100,000-receiver cohort audience: "
    "protection overhead is independent of the population size",
)(scale_overhead_spec)


def attack_inflated_100k_spec(
    receivers: int = 100_000,
    attackers: int = 100,
    protected: bool = True,
    attack_start_s: float = 10.0,
    intensity: float = 1.0,
    duration_s: Optional[float] = 30.0,
    model: str = "cohort",
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> ScenarioSpec:
    """The paper's robustness claim at full scale: cohorts on both sides.

    Two sessions share a fair-share-sized dumbbell bottleneck: an
    ``audience`` session whose honest population is one cohort of
    ``receivers`` members, and an ``attackers`` session realised as an
    *adversarial cohort* — ``attackers`` members all mounting the
    inflated-join strategy from ``attack_start_s``.  SIGMA must contain the
    whole attacker population (weighted excess goodput near zero); the
    unprotected variant (``protected=False``) shows the aggregate damage an
    IGMP edge would concede.
    """
    return ScenarioSpec(
        name="attack-inflated-100k",
        protected=protected,
        expected_sessions=2,
        sessions=(
            SessionDecl(
                "audience",
                receivers=0,
                population=(CohortDecl(receivers, model=model),),
            ),
            SessionDecl(
                "attackers",
                receivers=0,
                population=(
                    CohortDecl(
                        attackers,
                        model=model,
                        attack=AttackSpec(
                            "inflated-join",
                            start_s=attack_start_s,
                            intensity=intensity,
                        ),
                    ),
                ),
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "attack-inflated-100k",
    "Inflated-join attacker cohort against a 100,000-receiver honest cohort: "
    "the containment claim at full scale, protection metrics "
    "population-weighted",
)(attack_inflated_100k_spec)


def attack_keys_100k_spec(
    receivers: int = 100_000,
    replayers: int = 50,
    guessers: int = 50,
    protected: bool = True,
    attack_start_s: float = 10.0,
    intensity: float = 1.0,
    duration_s: Optional[float] = 30.0,
    model: str = "cohort",
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> ScenarioSpec:
    """The §4 key-oriented attacks against a ``receivers``-strong audience.

    Two adversarial cohorts — ``replayers`` members replaying legitimately
    reconstructed keys out of scope (§4.1) and ``guessers`` members
    submitting random keys (§4.2) — share a fair-share-sized dumbbell
    bottleneck with a ``receivers``-member honest cohort.  Both strategies
    draw per-cohort randomness from their named seeded streams and book
    counters at member weight, so the whole attacker population costs two
    receiver objects however large it is declared.  SIGMA must hold every
    replay in ``invalid_submissions`` and alarm on the guess volume while
    the honest audience's goodput stays at its fair share.
    """
    return ScenarioSpec(
        name="attack-keys-100k",
        protected=protected,
        expected_sessions=2,
        sessions=(
            SessionDecl(
                "audience",
                receivers=0,
                population=(CohortDecl(receivers, model=model),),
            ),
            SessionDecl(
                "attackers",
                receivers=0,
                population=(
                    CohortDecl(
                        replayers,
                        model=model,
                        attack=AttackSpec(
                            "key-replay",
                            start_s=attack_start_s,
                            intensity=intensity,
                        ),
                    ),
                    CohortDecl(
                        guessers,
                        model=model,
                        attack=AttackSpec(
                            "key-guessing",
                            start_s=attack_start_s,
                            intensity=intensity,
                        ),
                    ),
                ),
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "attack-keys-100k",
    "Key-replay and key-guessing attacker cohorts against a "
    "100,000-receiver honest cohort: the paper's §4 key-oriented attacks "
    "at full scale, randomness drawn per cohort, counters "
    "population-weighted",
)(attack_keys_100k_spec)


def attack_collusion_100k_spec(
    receivers: int = 100_000,
    publishers: int = 50,
    exploiters: int = 50,
    protected: bool = True,
    attack_start_s: float = 10.0,
    intensity: float = 1.0,
    hops: int = 3,
    duration_s: Optional[float] = 30.0,
    model: str = "cohort",
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> ScenarioSpec:
    """§4.3 collusion at full scale: pooled keys across the parking lot.

    The ``attack-collusion-parking-lot`` shape with cohorts on both ends: an
    upstream publisher-colluder cohort sits at ``r1`` where nothing is
    congested, keeps its full entitlement, and publishes every reconstructed
    key into the shared pool at member weight; a downstream
    exploiting-colluder cohort sits behind the last hop, which a CBR burst
    squeezes to collapse its honest entitlement, and submits the pooled
    high-group keys across its own congested bottleneck.  The
    ``receivers``-member honest audience shares that squeezed hop.  The keys
    are valid, so SIGMA accepts them — but the colluders' bottleneck still
    drops the excess, which is the §4.3 containment claim the
    population-weighted protection metrics must show at scale.
    """
    last = f"r{hops}"
    effective_duration = duration_s if duration_s is not None else config.duration_s
    pool_params = {"pool": "lot"}
    return ScenarioSpec(
        name="attack-collusion-100k",
        protected=protected,
        expected_sessions=2,
        topology="parking-lot",
        topology_params={
            "hops": hops,
            "bottleneck_bandwidth_bps": 3 * config.fair_share_bps,
        },
        sessions=(
            SessionDecl(
                "colluders",
                receivers=0,
                population=(
                    CohortDecl(
                        publishers,
                        router="r1",
                        model=model,
                        attack=AttackSpec(
                            "collusion",
                            start_s=attack_start_s,
                            intensity=intensity,
                            params=pool_params,
                        ),
                    ),
                    CohortDecl(
                        exploiters,
                        router=last,
                        model=model,
                        attack=AttackSpec(
                            "collusion",
                            start_s=attack_start_s,
                            intensity=intensity,
                            params=pool_params,
                        ),
                    ),
                ),
            ),
            SessionDecl(
                "audience",
                receivers=0,
                population=(CohortDecl(receivers, router=last, model=model),),
            ),
        ),
        cbr=(
            CbrDecl(
                "squeeze",
                rate_bps=2 * config.fair_share_bps,
                on_s=5.0,
                off_s=2.0,
                active_window=(attack_start_s, effective_duration),
                receiver_router=last,
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "attack-collusion-100k",
    "Publisher and exploiting collusion cohorts pooling keys across the "
    "parking lot while a CBR burst squeezes the exploiters' hop — §4.3 key "
    "sharing against a 100,000-receiver honest audience",
)(attack_collusion_100k_spec)


def attack_churn_flash_crowd_spec(
    initial: int = 100,
    surge: int = 99_900,
    surge_at_s: float = 12.0,
    attack_start_s: float = 6.0,
    protected: bool = True,
    duration_s: Optional[float] = 30.0,
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> ScenarioSpec:
    """Flash-crowd churn under attack: the audience surges 100 → 100k.

    A churn-attack receiver flaps its membership (probing the §3.2.2 grace
    windows) while the honest cohort's population jumps by ``surge`` members
    at ``surge_at_s`` — the flash-crowd case the cohort churn process
    models.  Protection must hold through the surge, and the
    population-weighted IGMP/SIGMA counters must track the instantaneous
    membership.
    """
    return ScenarioSpec(
        name="attack-churn-flash-crowd",
        protected=protected,
        expected_sessions=2,
        sessions=(
            SessionDecl(
                "crowd",
                receivers=0,
                population=(
                    CohortDecl(
                        initial,
                        churn=ChurnProcess(burst=((surge_at_s, surge),)),
                    ),
                ),
            ),
            SessionDecl(
                "attacker",
                receivers=1,
                attacks=(AttackSpec("churn", start_s=attack_start_s),),
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "attack-churn-flash-crowd",
    "Churn attacker probing the grace windows while the honest audience "
    "flash-crowds from 100 to 100,000 members mid-session",
)(attack_churn_flash_crowd_spec)


def scale_protection_spec(
    audience: int = 10_000,
    attacker_fraction: float = 0.01,
    strategy: str = "inflated-join",
    protected: bool = True,
    attack_start_s: float = 10.0,
    intensity: float = 1.0,
    duration_s: Optional[float] = 30.0,
    model: str = "cohort",
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> ScenarioSpec:
    """One point of the audience × attacker-fraction protection grid.

    ``attacker_fraction`` of the audience misbehaves (at least one member),
    as an adversarial cohort mounting ``strategy`` — any registered strategy,
    the whole registry batches exactly — against the honest remainder: the
    axes along which the paper's containment claim must stay flat.
    ``intensity`` scales the strategy's aggression (the figure-8 sweep axis
    the warm-start benchmark shares one prefix checkpoint across).
    """
    if not 0.0 < attacker_fraction < 1.0:
        raise ValueError("attacker_fraction must be in (0, 1)")
    attackers = max(1, round(audience * attacker_fraction))
    honest = max(1, audience - attackers)
    return ScenarioSpec(
        name="scale-protection",
        protected=protected,
        expected_sessions=2,
        sessions=(
            SessionDecl(
                "audience",
                receivers=0,
                population=(CohortDecl(honest, model=model),),
            ),
            SessionDecl(
                "attackers",
                receivers=0,
                population=(
                    CohortDecl(
                        attackers,
                        model=model,
                        attack=AttackSpec(
                            strategy,
                            start_s=attack_start_s,
                            intensity=intensity,
                        ),
                    ),
                ),
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "scale-protection",
    "One audience × attacker-fraction × strategy grid point: an attacker "
    "cohort sized as a fraction of the honest audience, mounting any "
    "registered strategy (run_scale_protection_sweep fans the full grid)",
)(scale_protection_spec)


def run_scale_protection_sweep(
    audiences: Sequence[int] = (1_000, 10_000, 100_000),
    attacker_fractions: Sequence[float] = (0.001, 0.01, 0.1),
    strategies: Sequence[str] = ("inflated-join",),
    jobs: int = 1,
    seeds: Sequence[int] = (0,),
    duration_s: float = 30.0,
    attack_start_s: float = 10.0,
    protected: bool = True,
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> List[RunResult]:
    """Fan the audience × attacker-fraction × strategy grid through the runner.

    Returns one :class:`~repro.experiments.runner.RunResult` per (audience,
    fraction, strategy, seed), in grid order — each carrying the
    population-weighted ``protection`` block.  ``strategies`` defaults to
    the historical inflated-join axis; pass e.g. ``("key-replay",
    "key-guessing", "collusion")`` for the batched key-oriented sweep rows.
    ``examples/attack_at_scale.py`` renders the grid as a containment table.
    """
    specs = [
        scale_protection_spec(
            audience=audience,
            attacker_fraction=fraction,
            strategy=strategy,
            protected=protected,
            attack_start_s=attack_start_s,
            duration_s=duration_s,
            config=config,
        ).with_seed(seed)
        for audience in audiences
        for fraction in attacker_fractions
        for strategy in strategies
        for seed in seeds
    ]
    return ExperimentRunner(jobs=jobs).run(specs)
