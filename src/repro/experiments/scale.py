"""Scale scenarios: cohort-aggregated audiences of 10k-100k+ receivers.

The paper's claims are scaling claims — SIGMA's bound on inflated
subscription damage holds for *any* honest audience size, and the §5.4
overhead model is independent of the receiver count because keys travel once
per edge router, not once per receiver.  The historical scenarios exercise
tens of receivers; the two scenarios here push the population axis three
orders of magnitude further by realising the honest audience as a
:class:`~repro.experiments.spec.CohortDecl` (one aggregated receiver per
edge interface; see ``docs/scale.md``):

* ``scale-dumbbell-10k`` — the Figure 1/7 inflated-subscription duel with a
  10,000-receiver honest audience behind the bottleneck: one individual
  attacker inflates its subscription into a cohort-backed session, SIGMA
  contains it, and the protection metrics are population-weighted.
* ``scale-overhead-100k`` — the Figure 9 measured-overhead cross-check with
  a 100,000-receiver audience: DELTA/SIGMA overhead on the wire must stay at
  its per-session value however large the audience grows (the overhead
  model's group-count axis, extended along the population dimension).

Both builders accept ``model="individual"`` to realise the same spec with
per-object receivers — the reference the equivalence tests and the
``benchmarks/bench_scale_cohort.py`` speedup assertion compare against
(at small counts; per-object 100k receivers would not fit in memory).
"""

from __future__ import annotations

from typing import Optional

from .config import PAPER_DEFAULTS, ExperimentConfig
from .registry import register_scenario
from .spec import CohortDecl, ScenarioSpec, SessionDecl

__all__ = ["scale_dumbbell_spec", "scale_overhead_spec"]


def scale_dumbbell_spec(
    receivers: int = 10_000,
    protected: bool = True,
    attack_start_s: float = 10.0,
    duration_s: Optional[float] = 30.0,
    model: str = "cohort",
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> ScenarioSpec:
    """Inflated-subscription duel against a ``receivers``-strong audience.

    Two sessions share a fair-share-sized dumbbell bottleneck: an
    ``audience`` session whose honest population is one cohort of
    ``receivers`` members, and an ``attacker`` session whose single
    individual receiver mounts the paper's default inflated-subscription
    stack from ``attack_start_s`` — few attackers, many honest receivers,
    exactly the paper's threat model at scale.
    """
    return ScenarioSpec(
        name="scale-dumbbell-10k",
        protected=protected,
        expected_sessions=2,
        sessions=(
            SessionDecl(
                "audience",
                receivers=0,
                population=(CohortDecl(receivers, model=model),),
            ),
            SessionDecl(
                "attacker",
                receivers=1,
                misbehaving=(0,),
                attack_start_s=attack_start_s,
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "scale-dumbbell-10k",
    "Inflated-subscription attack against a 10,000-receiver cohort audience "
    "on the paper's dumbbell (population-weighted protection metrics)",
)(scale_dumbbell_spec)


def scale_overhead_spec(
    receivers: int = 100_000,
    duration_s: Optional[float] = 30.0,
    model: str = "cohort",
    config: ExperimentConfig = PAPER_DEFAULTS,
) -> ScenarioSpec:
    """Figure 9's measured overhead with a ``receivers``-strong audience.

    A generous bottleneck (twice the maximal cumulative session rate) keeps
    the audience at the top subscription level and suppression is disabled,
    so the full session rate flows and the measured DELTA/SIGMA overhead is
    directly comparable with the analytic model — which predicts it does not
    depend on the audience size at all, because keys travel per edge router.
    """
    max_rate_bps = config.base_rate_bps * config.rate_factor ** (config.group_count - 1)
    return ScenarioSpec(
        name="scale-overhead-100k",
        protected=True,
        expected_sessions=1,
        bottleneck_bps=2.0 * max_rate_bps,
        sessions=(
            SessionDecl(
                "audience",
                receivers=0,
                track_overhead=True,
                suppress_unsubscribed_groups=False,
                population=(CohortDecl(receivers, model=model),),
            ),
        ),
        duration_s=duration_s,
        config=config,
    )


register_scenario(
    "scale-overhead-100k",
    "Figure 9 overhead cross-check with a 100,000-receiver cohort audience: "
    "protection overhead is independent of the population size",
)(scale_overhead_spec)
