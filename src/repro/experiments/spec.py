"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, serialisable description of one §5-style
experiment: which topology to build (by name, from the simulator's topology
registry), which multicast sessions to run (protocol variant, receiver
placement, misbehaviour schedules), which TCP/CBR cross traffic to add, and
the shared :class:`~repro.experiments.config.ExperimentConfig` knobs.

Specs are plain frozen dataclasses with a canonical JSON form, so they can be

* interpreted by :meth:`repro.experiments.scenario.Scenario.from_spec`,
* shipped to worker processes by the parallel
  :class:`~repro.experiments.runner.ExperimentRunner`,
* hashed for result caching, and
* registered under a name in :mod:`repro.experiments.registry`.

The canonical JSON of a spec plus the seed inside its config fully determine
an experiment's output bit-for-bit (the engine and the multicast forwarding
plane are deterministic), which the property tests assert.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ..adversary.spec import AttackSpec
from ..multicast_cc.churn import ChurnProcess
from .config import PAPER_DEFAULTS, ExperimentConfig

__all__ = ["CohortDecl", "SessionDecl", "TcpDecl", "CbrDecl", "ScenarioSpec"]


@dataclass(frozen=True)
class CohortDecl:
    """``count`` homogeneous honest receivers added to a session's population.

    ``model`` selects how the scenario interpreter realises them:

    * ``"cohort"`` (default) — one aggregated
      :mod:`~repro.multicast_cc.cohort` receiver whose per-slot cost is
      amortised over the population (sessions scale to 100k+ receivers);
    * ``"individual"`` — ``count`` ordinary per-object receivers, the
      reference realisation the equivalence tests and the scale benchmark
      compare against;
    * ``"vector"`` — the columnar engine
      (:mod:`~repro.multicast_cc.vector`): the block's cohorts become rows
      of a :class:`~repro.multicast_cc.population.PopulationTable` block,
      one vectorised receiver per edge router instead of one object per
      cohort (sessions scale past 1M receivers).

    ``cohorts`` splits the block's ``count`` members into that many
    homogeneous cohorts (as even as possible; ``None`` means one).  With
    ``model="cohort"`` each becomes its own per-cohort receiver object —
    the reference path the columnar benchmark measures against — while
    ``model="vector"`` packs them as rows of per-edge columnar blocks.

    ``router`` optionally pins the cohort to a named edge router (default:
    the topology's round-robin receiver placement — for ``"vector"`` the
    cohorts are spread round-robin *across* the receiver edge routers);
    ``start_s`` is the members' shared join time.

    ``attack`` makes the block an **adversarial cohort**: every member
    mounts the declared strategy (the whole registry batches exactly —
    :data:`~repro.adversary.spec.COHORT_BATCHED_STRATEGIES`; the attack's
    ``receivers`` indices are ignored, the block itself is the target).
    ``churn`` drives the member count by a deterministic
    :class:`~repro.multicast_cc.churn.ChurnProcess` (flash crowds, gradual
    arrival/departure); churn requires the aggregated ``"cohort"`` model.
    Any *other* heterogeneity — staggered joins, randomised attacks —
    belongs in individual receivers or in *separate* cohorts, never inside
    one cohort (see ``docs/scale.md`` for when aggregation is exact).
    """

    count: int
    router: Optional[str] = None
    start_s: float = 0.0
    model: str = "cohort"
    attack: Optional[AttackSpec] = None
    churn: Optional[ChurnProcess] = None
    cohorts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("a cohort needs at least one receiver")
        if self.model not in ("cohort", "individual", "vector"):
            raise ValueError(f"unknown receiver model {self.model!r}")
        if self.cohorts is not None:
            if self.cohorts < 1:
                raise ValueError("cohorts must be >= 1 when given")
            if self.cohorts > self.count:
                raise ValueError(
                    f"cannot split {self.count} members into {self.cohorts} "
                    "cohorts (each cohort needs at least one member)"
                )
            if self.model == "individual":
                raise ValueError(
                    "cohorts only applies to aggregated models; individual "
                    "receivers are already one object per member"
                )
        # Every declarable strategy batches exactly over a cohort: AttackSpec
        # itself rejects registered strategies without batched decision rules
        # (BATCHED_DECISION_RULES), so no per-model gate is needed here.
        if self.churn is not None and (
            self.model != "cohort" or (self.cohorts or 1) != 1
        ):
            raise ValueError(
                "population churn needs a single aggregated cohort "
                "(individual receivers cannot arrive or depart dynamically, "
                "and a churn process drives exactly one cohort's membership)"
            )
        if self.churn is not None and self.attack is not None:
            # A churned attacker population would book attack counters with
            # a stale member count (the attack context weight is fixed at
            # admission); churn composes with attacks from *outside* the
            # cohort instead — see docs/scale.md.
            raise ValueError(
                "a cohort cannot both churn and attack; declare the churned "
                "honest audience and the attacker population as separate blocks"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CohortDecl":
        """Rebuild a cohort declaration from its plain-data form."""
        attack = payload.get("attack")
        churn = payload.get("churn")
        return cls(
            count=payload["count"],
            router=payload.get("router"),
            start_s=payload.get("start_s", 0.0),
            model=payload.get("model", "cohort"),
            attack=AttackSpec.from_dict(attack) if attack is not None else None,
            churn=ChurnProcess.from_dict(churn) if churn is not None else None,
            cohorts=payload.get("cohorts"),
        )


@dataclass(frozen=True)
class SessionDecl:
    """One multicast session of a scenario.

    ``attacks`` declares the misbehaviour: each
    :class:`~repro.adversary.spec.AttackSpec` names a registered strategy,
    its parameters and schedule, and the (0-based) receiver indices mounting
    it — several attacks may stack on one receiver.  The historical shorthand
    remains: ``misbehaving`` lists receiver indices that mount the paper's
    default inflated-subscription attack from ``attack_start_s`` (translated
    by the scenario interpreter into the protocol-appropriate strategy
    stack).  ``receiver_routers`` optionally pins each receiver to a named
    router of the topology; ``None`` entries (or omitting the field) fall
    back to the topology's round-robin receiver placement.

    ``population`` appends :class:`CohortDecl` blocks *after* the
    ``receivers`` individual ones.  ``attacks`` entries can only target
    individual receiver indices (``0 .. receivers-1``); a population block
    becomes adversarial by carrying its own :class:`CohortDecl.attack`
    (batch-exact strategies only), which is the paper's threat model taken
    to scale — bounded attacker cohorts against large honest audiences.  A
    session declaring a population may set ``receivers=0``.
    """

    session_id: str
    receivers: int = 1
    misbehaving: Tuple[int, ...] = ()
    attack_start_s: float = 0.0
    attacks: Tuple[AttackSpec, ...] = ()
    receiver_start_times: Optional[Tuple[float, ...]] = None
    receiver_access_delays: Optional[Tuple[Optional[float], ...]] = None
    receiver_routers: Optional[Tuple[Optional[str], ...]] = None
    track_overhead: bool = False
    suppress_unsubscribed_groups: bool = True
    population: Tuple[CohortDecl, ...] = ()

    def __post_init__(self) -> None:
        if self.receivers < 0:
            raise ValueError("receivers cannot be negative")
        if self.receivers < 1 and not self.population:
            raise ValueError("a session needs at least one receiver")
        for index in self.misbehaving:
            if not 0 <= index < self.receivers:
                raise ValueError(f"misbehaving index {index} out of range")
        for attack in self.attacks:
            for index in attack.receivers:
                if not 0 <= index < self.receivers:
                    raise ValueError(
                        f"attack {attack.strategy!r} targets receiver {index}, "
                        f"out of range for {self.receivers} receivers"
                    )
        for name, values in (
            ("receiver_start_times", self.receiver_start_times),
            ("receiver_access_delays", self.receiver_access_delays),
            ("receiver_routers", self.receiver_routers),
        ):
            if values is not None and len(values) != self.receivers:
                raise ValueError(f"{name} must have one entry per receiver")

    # ------------------------------------------------------------------
    def attacker_indices(self) -> Tuple[int, ...]:
        """Sorted *individual* receiver indices mounting any attack."""
        indices = set(self.misbehaving)
        for attack in self.attacks:
            indices.update(attack.receivers)
        return tuple(sorted(indices))

    def adversarial_blocks(self) -> Tuple[int, ...]:
        """Indices (into ``population``) of blocks that carry an attack."""
        return tuple(
            index for index, block in enumerate(self.population)
            if block.attack is not None
        )

    def attack_onset_s(self) -> Optional[float]:
        """Earliest scheduled attack start, or ``None`` without attackers."""
        onsets = [attack.start_s for attack in self.attacks]
        if self.misbehaving:
            onsets.append(self.attack_start_s)
        onsets.extend(
            block.attack.start_s for block in self.population
            if block.attack is not None
        )
        return min(onsets) if onsets else None

    def total_population(self) -> int:
        """End systems the session stands for: individuals plus cohorts."""
        return self.receivers + sum(cohort.count for cohort in self.population)


@dataclass(frozen=True)
class TcpDecl:
    """One TCP Reno connection crossing the topology."""

    name: str
    start_s: float = 0.0
    sender_router: Optional[str] = None
    receiver_router: Optional[str] = None


@dataclass(frozen=True)
class CbrDecl:
    """One on-off CBR source crossing the topology."""

    name: str = "cbr"
    rate_bps: float = 100_000.0
    on_s: float = 5.0
    off_s: float = 5.0
    active_window: Optional[Tuple[float, float]] = None
    sender_router: Optional[str] = None
    receiver_router: Optional[str] = None


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one experiment run.

    ``topology`` names a factory in :data:`repro.simulator.topology.TOPOLOGIES`
    and ``topology_params`` are its keyword arguments.  For the default
    ``dumbbell`` kind with no explicit parameters, the bottleneck is sized from
    the config's fair share times ``expected_sessions`` (or ``bottleneck_bps``
    when given), exactly as the imperative builder always did.

    ``shards`` opts the spec into region-sharded execution: the runner
    partitions the topology's annotated regions into ``shards`` standalone
    sub-scenarios, runs them (serially or on the process pool) and merges the
    results deterministically (:mod:`repro.experiments.shard`).  It must
    match the topology's region count and is omitted from the canonical JSON
    when unset, so every pre-sharding spec hash and golden digest stays
    byte-identical.
    """

    name: str
    protected: bool
    sessions: Tuple[SessionDecl, ...] = ()
    tcp: Tuple[TcpDecl, ...] = ()
    cbr: Tuple[CbrDecl, ...] = ()
    topology: str = "dumbbell"
    topology_params: Mapping[str, Any] = field(default_factory=dict)
    expected_sessions: int = 1
    bottleneck_bps: Optional[float] = None
    duration_s: Optional[float] = None
    record_series: bool = False
    shards: Optional[int] = None
    config: ExperimentConfig = PAPER_DEFAULTS

    def __post_init__(self) -> None:
        if self.shards is not None and self.shards < 2:
            raise ValueError(
                "shards must be >= 2 when set (omit it for unsharded execution)"
            )

    # ------------------------------------------------------------------
    # derived values
    # ------------------------------------------------------------------
    @property
    def effective_duration_s(self) -> float:
        """The run duration: the spec override or the config default."""
        return self.config.duration_s if self.duration_s is None else self.duration_s

    @property
    def seed(self) -> int:
        """The RNG seed carried inside the spec's config."""
        return self.config.seed

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------
    def with_seed(self, seed: int) -> "ScenarioSpec":
        """A copy of this spec whose config carries ``seed``."""
        return replace(self, config=self.config.with_seed(seed))

    def with_duration(self, duration_s: float) -> "ScenarioSpec":
        """A copy of this spec with an overridden run duration."""
        return replace(self, duration_s=duration_s)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form: nested dataclasses become dicts, tuples lists.

        A session's ``population`` key is omitted when empty — and a cohort
        block's ``attack``/``churn``/``cohorts`` keys, and the spec-level
        ``shards`` key, are omitted when unset — so that the canonical JSON
        (and therefore every golden digest and cache key) of a spec
        predating each field is byte-identical to what it always was.
        """
        payload = asdict(self)
        payload["topology_params"] = dict(self.topology_params)
        if payload.get("shards") is None:
            payload.pop("shards", None)
        for session in payload["sessions"]:
            if not session.get("population"):
                session.pop("population", None)
                continue
            for block in session["population"]:
                if block.get("attack") is None:
                    block.pop("attack", None)
                if block.get("churn") is None:
                    block.pop("churn", None)
                if block.get("cohorts") is None:
                    block.pop("cohorts", None)
        return payload

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — stable for hashing."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (inverse mapping)."""
        def _tuple(value, convert=lambda x: x):
            return None if value is None else tuple(convert(v) for v in value)

        sessions = tuple(
            SessionDecl(
                session_id=s["session_id"],
                receivers=s.get("receivers", 1),
                misbehaving=tuple(s.get("misbehaving", ())),
                attack_start_s=s.get("attack_start_s", 0.0),
                attacks=tuple(
                    AttackSpec.from_dict(a) for a in s.get("attacks", ())
                ),
                receiver_start_times=_tuple(s.get("receiver_start_times")),
                receiver_access_delays=_tuple(s.get("receiver_access_delays")),
                receiver_routers=_tuple(s.get("receiver_routers")),
                track_overhead=s.get("track_overhead", False),
                suppress_unsubscribed_groups=s.get("suppress_unsubscribed_groups", True),
                population=tuple(
                    CohortDecl.from_dict(c) for c in s.get("population", ())
                ),
            )
            for s in payload.get("sessions", ())
        )
        tcp = tuple(
            TcpDecl(
                name=t["name"],
                start_s=t.get("start_s", 0.0),
                sender_router=t.get("sender_router"),
                receiver_router=t.get("receiver_router"),
            )
            for t in payload.get("tcp", ())
        )
        cbr = tuple(
            CbrDecl(
                name=c.get("name", "cbr"),
                rate_bps=c.get("rate_bps", 100_000.0),
                on_s=c.get("on_s", 5.0),
                off_s=c.get("off_s", 5.0),
                active_window=_tuple(c.get("active_window")),
                sender_router=c.get("sender_router"),
                receiver_router=c.get("receiver_router"),
            )
            for c in payload.get("cbr", ())
        )
        config = ExperimentConfig(**payload.get("config", {}))
        return cls(
            name=payload["name"],
            protected=payload["protected"],
            sessions=sessions,
            tcp=tcp,
            cbr=cbr,
            topology=payload.get("topology", "dumbbell"),
            topology_params=dict(payload.get("topology_params", {})),
            expected_sessions=payload.get("expected_sessions", 1),
            bottleneck_bps=payload.get("bottleneck_bps"),
            duration_s=payload.get("duration_s"),
            record_series=payload.get("record_series", False),
            shards=payload.get("shards"),
            config=config,
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from its canonical JSON form."""
        return cls.from_dict(json.loads(text))
