"""Experiments reproducing every figure of the paper's evaluation (§5).

The stack is layered:

* :mod:`repro.experiments.config` — the shared §5.1 settings.
* :mod:`repro.experiments.spec` — declarative, serialisable scenario
  specifications (:class:`ScenarioSpec`): topology by name, sessions, attack
  schedules, TCP/CBR cross traffic.
* :mod:`repro.experiments.registry` — named scenario registry (see
  ``python -m repro list``).
* :mod:`repro.experiments.scenario` — the interpreter realising specs on the
  simulator's topology graph layer.
* :mod:`repro.experiments.runner` — the parallel
  :class:`ExperimentRunner`: spec × seed × parameter grids over a process
  pool, with atomic JSON result caching.
* :mod:`repro.experiments.shard` — region-sharded execution for 10M+
  receivers: the planner splitting a ``shards=N`` spec into standalone
  region sub-scenarios, the region worker, and the deterministic
  boundary-event merge.
* :mod:`repro.experiments.warmstart` — common-prefix warm-starts for sweep
  grids: canonical prefix planning, slot-barrier checkpoints, and the
  content-addressed blob store the runner resumes cells from.
* :mod:`repro.experiments.figure1` / :mod:`figure8` / :mod:`figure9` — the
  paper's figures, built on the layers above.
"""

from .config import PAPER_DEFAULTS, ExperimentConfig
from .spec import CbrDecl, CohortDecl, ScenarioSpec, SessionDecl, TcpDecl
from .registry import (
    ScenarioEntry,
    list_scenarios,
    register_scenario,
    scenario_entry,
    scenario_spec,
)
from .runner import (
    CellPlan,
    ExperimentExecutionError,
    ExperimentRunner,
    JobExecutor,
    ResultCache,
    RunResult,
    cache_stats,
    collect_metrics,
    collect_protection_metrics,
    execute_spec,
    plan_cell,
    prune_cache,
    run_spec_json,
)
from .figure1 import (
    DEFAULT_ATTACK_START_S,
    InflatedSubscriptionResult,
    inflated_subscription_spec,
    run_inflated_subscription_experiment,
)
from .figure8 import (
    PAPER_SESSION_COUNTS,
    ConvergenceResult,
    ResponsivenessResult,
    RttFairnessResult,
    ThroughputVsSessionsResult,
    convergence_spec,
    responsiveness_spec,
    run_convergence,
    run_heterogeneous_rtt,
    run_responsiveness,
    run_throughput_vs_sessions,
    throughput_vs_sessions_spec,
)
from .attacks import attack_duel_spec
from .figure9 import (
    PAPER_GROUP_COUNTS,
    PAPER_SLOT_DURATIONS,
    MeasuredOverheadResult,
    OverheadSweepResult,
    figure9_model,
    measured_overhead_spec,
    run_group_count_sweep,
    run_measured_overhead,
    run_slot_duration_sweep,
)
from .scale import (
    attack_churn_flash_crowd_spec,
    attack_collusion_100k_spec,
    attack_inflated_100k_spec,
    attack_keys_100k_spec,
    run_scale_protection_sweep,
    scale_dumbbell_1m_spec,
    scale_dumbbell_10m_spec,
    scale_dumbbell_spec,
    scale_overhead_spec,
    scale_protection_spec,
)
from .scenario import MulticastSession, Scenario
from .shard import ShardPlan, merge_region_results, plan_shards, run_region_json
from .warmstart import (
    CheckpointStore,
    PrefixPlan,
    checkpoint_payload,
    plan_prefix,
    warm_payload,
)
from ..multicast_cc.churn import ChurnProcess

__all__ = [
    "PAPER_DEFAULTS",
    "ExperimentConfig",
    "CbrDecl",
    "ChurnProcess",
    "CohortDecl",
    "ScenarioSpec",
    "SessionDecl",
    "TcpDecl",
    "attack_churn_flash_crowd_spec",
    "attack_collusion_100k_spec",
    "attack_inflated_100k_spec",
    "attack_keys_100k_spec",
    "run_scale_protection_sweep",
    "scale_dumbbell_1m_spec",
    "scale_dumbbell_10m_spec",
    "scale_dumbbell_spec",
    "scale_overhead_spec",
    "scale_protection_spec",
    "ScenarioEntry",
    "list_scenarios",
    "register_scenario",
    "scenario_entry",
    "scenario_spec",
    "CellPlan",
    "ExperimentExecutionError",
    "ExperimentRunner",
    "JobExecutor",
    "ResultCache",
    "RunResult",
    "cache_stats",
    "collect_metrics",
    "collect_protection_metrics",
    "execute_spec",
    "plan_cell",
    "prune_cache",
    "run_spec_json",
    "CheckpointStore",
    "PrefixPlan",
    "checkpoint_payload",
    "plan_prefix",
    "warm_payload",
    "attack_duel_spec",
    "DEFAULT_ATTACK_START_S",
    "InflatedSubscriptionResult",
    "inflated_subscription_spec",
    "run_inflated_subscription_experiment",
    "PAPER_SESSION_COUNTS",
    "ConvergenceResult",
    "ResponsivenessResult",
    "RttFairnessResult",
    "ThroughputVsSessionsResult",
    "convergence_spec",
    "responsiveness_spec",
    "run_convergence",
    "run_heterogeneous_rtt",
    "run_responsiveness",
    "run_throughput_vs_sessions",
    "throughput_vs_sessions_spec",
    "PAPER_GROUP_COUNTS",
    "PAPER_SLOT_DURATIONS",
    "MeasuredOverheadResult",
    "OverheadSweepResult",
    "figure9_model",
    "measured_overhead_spec",
    "run_group_count_sweep",
    "run_measured_overhead",
    "run_slot_duration_sweep",
    "MulticastSession",
    "Scenario",
    "ShardPlan",
    "merge_region_results",
    "plan_shards",
    "run_region_json",
]
