"""Experiments reproducing every figure of the paper's evaluation (§5).

* :mod:`repro.experiments.figure1` — Figures 1 and 7 (inflated subscription
  without and with DELTA/SIGMA protection).
* :mod:`repro.experiments.figure8` — Figures 8(a)-(h) (preservation of
  congestion control properties).
* :mod:`repro.experiments.figure9` — Figures 9(a)-(b) (communication
  overhead, analytic and measured).
* :mod:`repro.experiments.config` — the shared §5.1 settings.
* :mod:`repro.experiments.scenario` — the single-bottleneck scenario builder.
"""

from .config import PAPER_DEFAULTS, ExperimentConfig
from .figure1 import (
    DEFAULT_ATTACK_START_S,
    InflatedSubscriptionResult,
    run_inflated_subscription_experiment,
)
from .figure8 import (
    PAPER_SESSION_COUNTS,
    ConvergenceResult,
    ResponsivenessResult,
    RttFairnessResult,
    ThroughputVsSessionsResult,
    run_convergence,
    run_heterogeneous_rtt,
    run_responsiveness,
    run_throughput_vs_sessions,
)
from .figure9 import (
    PAPER_GROUP_COUNTS,
    PAPER_SLOT_DURATIONS,
    MeasuredOverheadResult,
    OverheadSweepResult,
    figure9_model,
    run_group_count_sweep,
    run_measured_overhead,
    run_slot_duration_sweep,
)
from .scenario import MulticastSession, Scenario

__all__ = [
    "PAPER_DEFAULTS",
    "ExperimentConfig",
    "DEFAULT_ATTACK_START_S",
    "InflatedSubscriptionResult",
    "run_inflated_subscription_experiment",
    "PAPER_SESSION_COUNTS",
    "ConvergenceResult",
    "ResponsivenessResult",
    "RttFairnessResult",
    "ThroughputVsSessionsResult",
    "run_convergence",
    "run_heterogeneous_rtt",
    "run_responsiveness",
    "run_throughput_vs_sessions",
    "PAPER_GROUP_COUNTS",
    "PAPER_SLOT_DURATIONS",
    "MeasuredOverheadResult",
    "OverheadSweepResult",
    "figure9_model",
    "run_group_count_sweep",
    "run_measured_overhead",
    "run_slot_duration_sweep",
    "MulticastSession",
    "Scenario",
]
