"""Common-prefix planning and checkpoint storage for warm-started grids.

Every paper sweep re-simulates an identical warm-up prefix in each grid
cell: the honest audience runs unperturbed from ``t=0`` until the cell's
attack schedule starts.  This module amortises that prefix across cells.

* :func:`plan_prefix` — the **canonicalizer**.  Given one cell's spec it
  finds the last slot barrier at (or before) the earliest attack onset and
  rewrites every field that is provably inert before that barrier — attack
  strategies/intensities/params, the scenario name, the duration, series
  recording, and churn processes that have not acted yet — into fixed
  placeholders.  Cells whose canonical prefix specs are byte-equal share
  the same pre-attack dynamics, so one checkpoint serves them all.  A field
  that is *active* before the barrier (a churn burst inside the prefix, an
  attack with an early onset) is left in place, which splits the key: such
  cells are never prefix-shared.
* :class:`CheckpointStore` — content-addressed pickle blobs next to the
  runner's result cache (``ck_<sha256>.pkl``), published atomically via a
  pid-suffixed tmp sibling + :func:`os.replace`; torn, corrupt or
  version-mismatched blobs read as misses, never as state.
* :func:`run_checkpoint_json` / :func:`run_warm_json` — module-level worker
  entry points (string-typed, pool-picklable) mirroring
  :func:`~repro.experiments.runner.run_spec_json`: the first builds and
  publishes a prefix checkpoint, the second restores one, rebinds the
  cell's real declarations (:meth:`Scenario.rebind_spec`) and runs to the
  end.  A warm run is byte-identical to a cold run — the golden warm-start
  suite asserts it for every golden scenario and ``verify=True`` re-checks
  it at runtime.

Why byte-identity holds: the barrier cut is *exclusive*
(:meth:`Scenario.run_to_barrier`), so events scheduled at exactly the
barrier fire after restore in their original order; strategy RNG streams
are named by (session, host, attack index, strategy) and a zero-draw
stream equals a freshly seeded one, so rebinding rebuilds them exactly;
and placeholder attacks/churn never act before the barrier by
construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..adversary.spec import AttackSpec
from ..multicast_cc.churn import ChurnProcess
from ..multicast_cc.population import active_backend
from .scenario import CHECKPOINT_VERSION, Scenario
from .spec import CohortDecl, ScenarioSpec, SessionDecl

__all__ = [
    "PrefixPlan",
    "plan_prefix",
    "CheckpointStore",
    "checkpoint_payload",
    "run_checkpoint_json",
    "run_warm_json",
    "warm_payload",
]

#: Placeholder name for every canonical prefix spec — the scenario name
#: never reaches the simulation (hosts are named from session ids), so
#: cells that differ only in their label share a prefix.
PREFIX_NAME = "warm-prefix"

#: Placeholder strategy mounted while the prefix runs.  ``inflated-join``
#: is registered for every protocol variant and batch-exact on cohorts, and
#: with ``start_s`` at the barrier it never acts inside the prefix — it
#: only pins the receiver's adversarial class and attack context, which the
#: real strategies take over at rebind.
PLACEHOLDER_STRATEGY = "inflated-join"


def _canonical_attack(attack: AttackSpec, barrier_s: float) -> AttackSpec:
    """The placeholder standing in for ``attack`` before the barrier.

    ``receivers`` is preserved — it decides which receivers realise as
    adversarial objects at construction time; everything the sweep varies
    (strategy, onset, stop, intensity, params) collapses to fixed values.
    """
    return AttackSpec(
        PLACEHOLDER_STRATEGY, receivers=attack.receivers, start_s=barrier_s
    )


def _churn_inert_before(churn: ChurnProcess, start_s: float, barrier_s: float) -> bool:
    """True when ``churn`` provably changes nothing before the barrier."""
    if churn.arrival_rate > 0 or churn.departure_rate > 0:
        return False
    return all(start_s + elapsed_s >= barrier_s for elapsed_s, _delta in churn.burst)


def _canonical_cohort(cohort: CohortDecl, barrier_s: float) -> CohortDecl:
    changes: Dict[str, Any] = {}
    if cohort.attack is not None:
        changes["attack"] = _canonical_attack(cohort.attack, barrier_s)
    if cohort.churn is not None and _churn_inert_before(
        cohort.churn, cohort.start_s, barrier_s
    ):
        changes["churn"] = ChurnProcess()
    return replace(cohort, **changes) if changes else cohort


def _canonical_session(decl: SessionDecl, barrier_s: float) -> SessionDecl:
    return replace(
        decl,
        attacks=tuple(_canonical_attack(a, barrier_s) for a in decl.attacks),
        attack_start_s=barrier_s if decl.misbehaving else 0.0,
        population=tuple(_canonical_cohort(c, barrier_s) for c in decl.population),
    )


@dataclass(frozen=True)
class PrefixPlan:
    """A cell's shareable prefix: the canonical spec and its slot barrier."""

    barrier_s: float
    spec: ScenarioSpec

    def checkpoint_key(self) -> str:
        """Content address of this prefix's checkpoint blob.

        Mixes the runner cache's version tag (package + schema versions),
        the checkpoint layout version, the active population backend (the
        pickled column types differ across backends) and the barrier into
        the hash, on top of the canonical prefix JSON — so a blob is only
        ever restored by the same code, backend and barrier that wrote it.
        """
        from .runner import _cache_version_tag

        material = (
            f"{_cache_version_tag()}warmstart:{CHECKPOINT_VERSION}:"
            f"{active_backend()}:{self.barrier_s!r}:{self.spec.to_json()}"
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()


def plan_prefix(spec: ScenarioSpec) -> Optional[PrefixPlan]:
    """The shareable prefix of ``spec``, or ``None`` when there is none.

    The barrier is the last slot boundary at or before the earliest attack
    onset (slot duration per the spec's protocol variant).  ``None`` when
    the spec declares no attacks, when the onset leaves less than one full
    slot of shared prefix, or when the barrier would not land strictly
    inside the run.
    """
    onsets = [
        onset
        for decl in spec.sessions
        for onset in [decl.attack_onset_s()]
        if onset is not None
    ]
    if not onsets:
        return None
    duration = spec.effective_duration_s
    config = spec.config
    slot_s = config.flid_ds_slot_s if spec.protected else config.flid_dl_slot_s
    divergence = min(min(onsets), duration)
    slots = int(divergence / slot_s + 1e-9)
    barrier_s = slots * slot_s
    if slots < 1 or barrier_s >= duration:
        return None
    prefix = replace(
        spec,
        name=PREFIX_NAME,
        duration_s=barrier_s,
        record_series=False,
        sessions=tuple(_canonical_session(d, barrier_s) for d in spec.sessions),
    )
    return PrefixPlan(barrier_s=barrier_s, spec=prefix)


# ----------------------------------------------------------------------
# checkpoint storage
# ----------------------------------------------------------------------
class CheckpointStore:
    """Content-addressed prefix checkpoints in one directory.

    Blob files are named ``ck_<key>.pkl`` so they live alongside the
    runner's ``<key>.json`` result entries without colliding.  Publication
    is atomic (pid-suffixed tmp + :func:`os.replace`) and every read
    validates the checkpoint version — a torn or stale blob is a miss.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)

    def path(self, key: str) -> Path:
        """The blob path for ``key``."""
        return self.directory / f"ck_{key}.pkl"

    def exists(self, key: str) -> bool:
        """True when a blob is published under ``key`` (not validated)."""
        return self.path(key).exists()

    def load(self, key: str) -> Optional[Scenario]:
        """Restore the checkpointed scenario for ``key``, or ``None``."""
        path = self.path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            return Scenario.restore(blob)
        except (ValueError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, TypeError):
            return None

    def save(self, key: str, scenario: Scenario) -> None:
        """Atomically publish ``scenario``'s checkpoint under ``key``."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(scenario.checkpoint())
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise


def _build_prefix(
    prefix: ScenarioSpec, barrier_s: float, membership_log: bool
) -> Scenario:
    """Realise a canonical prefix spec and run it up to (excluding) the barrier."""
    scenario = Scenario.from_spec(prefix)
    if membership_log:
        # Region runs record boundary events from t=0; the log must be
        # attached before the prefix runs so it survives inside the blob.
        events: List[Any] = []
        scenario.network.multicast.membership_log = events
    scenario.run_to_barrier(barrier_s)
    return scenario


def _ensure_checkpoint(
    store: CheckpointStore,
    key: str,
    prefix: ScenarioSpec,
    barrier_s: float,
    membership_log: bool,
) -> tuple:
    """(scenario at the barrier, whether an existing blob was reused)."""
    scenario = store.load(key)
    if (
        scenario is not None
        and membership_log
        and scenario.network.multicast.membership_log is None
    ):
        # A blob written without the boundary log cannot serve a region
        # run — events before the barrier would be lost from the merge.
        scenario = None
    if scenario is not None:
        return scenario, True
    scenario = _build_prefix(prefix, barrier_s, membership_log)
    store.save(key, scenario)
    return scenario, False


# ----------------------------------------------------------------------
# worker payloads
# ----------------------------------------------------------------------
def checkpoint_payload(
    key: str,
    prefix_dict: Dict[str, Any],
    barrier_s: float,
    directory: str,
    membership_log: bool = False,
) -> str:
    """The canonical ``("checkpoint", …)`` job payload building one blob.

    One builder shared by the batch runner and the service daemon, so both
    schedule byte-identical jobs onto :func:`run_checkpoint_json`.
    """
    return json.dumps(
        {
            "prefix": prefix_dict,
            "barrier_s": barrier_s,
            "dir": directory,
            "key": key,
            "membership_log": membership_log,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def warm_payload(
    spec_dict: Dict[str, Any],
    prefix_dict: Dict[str, Any],
    barrier_s: float,
    directory: str,
    key: str,
    verify: bool = False,
) -> str:
    """The canonical ``("warm", …)`` job payload resuming one cell.

    One builder shared by the batch runner and the service daemon, so both
    schedule byte-identical jobs onto :func:`run_warm_json`.
    """
    return json.dumps(
        {
            "spec": spec_dict,
            "prefix": prefix_dict,
            "barrier_s": barrier_s,
            "dir": directory,
            "key": key,
            "verify": verify,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


# ----------------------------------------------------------------------
# worker entry points
# ----------------------------------------------------------------------
def run_checkpoint_json(payload_json: str) -> str:
    """Worker entry point: build (or find) one prefix checkpoint.

    Payload: ``{"prefix": spec dict, "barrier_s": float, "dir": str,
    "key": str, "membership_log": bool}``.  Returns a small JSON document
    reporting whether an already-published blob was reused.
    """
    payload = json.loads(payload_json)
    store = CheckpointStore(Path(payload["dir"]))
    key = payload["key"]
    _scenario, reused = _ensure_checkpoint(
        store,
        key,
        ScenarioSpec.from_dict(payload["prefix"]),
        payload["barrier_s"],
        payload.get("membership_log", False),
    )
    return json.dumps({"key": key, "reused": reused})


def run_warm_json(payload_json: str) -> str:
    """Worker entry point: warm-start one grid cell from its prefix.

    Payload: ``{"spec": real spec dict, "prefix": canonical spec dict,
    "barrier_s": float, "dir": str, "key": str, "verify": bool}``.  The
    checkpoint is restored (rebuilt in place on a miss — a concurrently
    pruned or torn blob degrades to a cold prefix, never an error), the
    real declarations are rebound, and the run completes normally.  With
    ``verify`` the cell is also run cold and the result documents must be
    byte-identical — the runtime spot-check behind ``--verify-warm-start``.
    """
    from .runner import RunResult, collect_metrics, execute_spec

    payload = json.loads(payload_json)
    spec = ScenarioSpec.from_dict(payload["spec"])
    prefix = ScenarioSpec.from_dict(payload["prefix"])
    store = CheckpointStore(Path(payload["dir"]))
    scenario, _reused = _ensure_checkpoint(
        store, payload["key"], prefix, payload["barrier_s"], membership_log=False
    )
    scenario.rebind_spec(spec)
    duration = spec.effective_duration_s
    scenario.run(duration)
    result = RunResult(
        scenario=spec.name,
        seed=spec.seed,
        protected=spec.protected,
        duration_s=duration,
        metrics=collect_metrics(scenario, spec),
    )
    output = result.to_json()
    if payload.get("verify"):
        cold = execute_spec(spec).to_json()
        if cold != output:
            raise RuntimeError(
                f"warm-start divergence on {spec.name!r} (seed {spec.seed}): "
                "the warm result does not byte-match the cold run"
            )
    return output
