"""Experimental settings of §5.1.

Unless an experiment overrides them, the settings are exactly the paper's:

* single-bottleneck topology; every session's path is three links with the
  bottleneck in the middle;
* fair share of 250 Kbps per session (the bottleneck capacity is the fair
  share times the number of sessions);
* bottleneck propagation delay 20 ms; access links 10 Mbps with 10 ms delay;
* buffers of two bandwidth-delay products;
* 10 groups per multicast session, 100 Kbps minimal group, cumulative rate
  growing by a factor of 1.5 per group;
* 500 ms FLID-DL slots and 250 ms FLID-DS slots (same control granularity,
  because SIGMA enforces access with a responsiveness of two slots);
* 576-byte data packets;
* 200-second experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..multicast_cc.session import SessionSpec
from ..simulator.topology import DumbbellConfig

__all__ = ["ExperimentConfig", "PAPER_DEFAULTS"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of the §5 evaluation scenarios."""

    fair_share_bps: float = 250_000.0
    bottleneck_delay_s: float = 0.020
    access_bandwidth_bps: float = 10_000_000.0
    access_delay_s: float = 0.010
    buffer_bdp_multiple: float = 2.0

    group_count: int = 10
    base_rate_bps: float = 100_000.0
    rate_factor: float = 1.5
    packet_bytes: int = 576
    flid_dl_slot_s: float = 0.5
    flid_ds_slot_s: float = 0.25
    key_bits: int = 16

    duration_s: float = 200.0
    warmup_s: float = 5.0
    seed: int = 0

    # ------------------------------------------------------------------
    def dumbbell(self, sessions: int, bottleneck_bps: Optional[float] = None) -> DumbbellConfig:
        """Dumbbell configuration for ``sessions`` competing sessions."""
        if bottleneck_bps is None:
            bottleneck_bps = self.fair_share_bps * max(1, sessions)
        return DumbbellConfig(
            bottleneck_bandwidth_bps=bottleneck_bps,
            bottleneck_delay_s=self.bottleneck_delay_s,
            access_bandwidth_bps=self.access_bandwidth_bps,
            access_delay_s=self.access_delay_s,
            buffer_bdp_multiple=self.buffer_bdp_multiple,
            seed=self.seed,
        )

    def session_spec(self, session_id: str, protected: bool) -> SessionSpec:
        """Session description for one FLID-DL (unprotected) or FLID-DS session."""
        return SessionSpec(
            session_id=session_id,
            group_count=self.group_count,
            base_rate_bps=self.base_rate_bps,
            rate_factor=self.rate_factor,
            packet_bytes=self.packet_bytes,
            slot_duration_s=self.flid_ds_slot_s if protected else self.flid_dl_slot_s,
        )

    def with_duration(self, duration_s: float) -> "ExperimentConfig":
        """Copy with a different experiment length (used by fast benchmarks)."""
        return replace(self, duration_s=duration_s)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)


#: The configuration used throughout the paper's §5 unless stated otherwise.
PAPER_DEFAULTS = ExperimentConfig()
