"""Region-sharded execution: planner, region workers and deterministic merge.

The columnar population engine (PR 6) takes one session to a million
receivers on a single CPU; this module is the other half of the scale story
— *hierarchical aggregation* in the sense of the "Scalable Internetworking"
report: partition an annotated topology into regions cut at designated
trunk-to-region links, run each region as an ordinary standalone scenario
(in-process or in a :class:`~concurrent.futures.ProcessPoolExecutor`
worker), and merge the results deterministically.

The three layers:

* :func:`plan_shards` — the **region planner**.  Validates that a spec with
  ``shards=N`` runs on a topology whose :class:`~repro.simulator.topology.
  TopologySpec` annotates exactly ``N`` regions, then splits every session's
  vector population blocks into per-region sub-blocks.  The split is exact:
  receiver edge routers are region-contiguous, so the round-robin row
  placement assigns each region a contiguous share of the
  :func:`~repro.multicast_cc.population.split_counts` row sequence, and
  re-splitting that share inside the region reproduces the very same rows on
  the very same edges.  Each region becomes a standalone
  :class:`~repro.experiments.spec.ScenarioSpec` over the single-region
  sub-topology (``topology_params["region"]``) with identical router names
  and link parameters.
* :func:`run_region_json` — the **worker entry point** (module-level and
  string-typed, so it pickles into pool workers exactly like
  :func:`~repro.experiments.runner.run_spec_json`).  Runs one region,
  records the boundary events (effective membership transitions — the
  result of IGMP/SIGMA signalling crossing the region's cut link) via the
  multicast service's ``membership_log`` hook, and returns per-block metric
  ingredients as JSON.
* :func:`merge_region_results` — the **deterministic merge**.  Reassembles
  per-receiver metric lists in exactly the order the unsharded scenario
  would produce (block-major, then region-major — the receiver index order),
  recomputes the float reductions (averages, population weighting, the
  global honest baseline) in that order, sums the SIGMA counters, and folds
  the boundary events into per-slot barriers (slot-major, then region-major)
  summarised by a SHA-256 digest.  The merge is a pure function of the
  region documents, so running the regions serially or on the pool yields a
  byte-identical merged result — the serial == sharded contract
  (``docs/determinism.md``).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.protection import (
    combined_containment_s,
    excess_goodput_kbps,
    goodput_containment_s,
    time_to_containment_s,
    weighted_excess_goodput_kbps,
    weighted_honest_baseline_kbps,
)
from ..multicast_cc.population import split_counts
from ..simulator.topology import TopologySpec, build_topology
from .scenario import Scenario
from .spec import CohortDecl, ScenarioSpec, SessionDecl
from .runner import RunResult

__all__ = [
    "RegionSession",
    "RegionPlan",
    "ShardPlan",
    "plan_shards",
    "region_payloads",
    "run_region_json",
    "merge_region_results",
]


@dataclass(frozen=True)
class RegionSession:
    """One session's share of a region: which original blocks it carries."""

    session_index: int
    block_indices: Tuple[int, ...]


@dataclass(frozen=True)
class RegionPlan:
    """One region of a :class:`ShardPlan`: a standalone runnable sub-spec."""

    region: int
    spec: ScenarioSpec
    sessions: Tuple[RegionSession, ...]


@dataclass(frozen=True)
class ShardPlan:
    """The full execution plan for one sharded spec."""

    spec: ScenarioSpec
    topology: TopologySpec
    regions: Tuple[RegionPlan, ...]
    slot_s: float
    #: Attack onsets precomputed from the *original* spec (a region sub-spec
    #: may omit sessions, which would shift the global onset): per-session
    #: onset plus the global minimum, or ``None`` without attackers.
    onsets: Optional[Dict[str, Any]]


def _shard_onsets(spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
    """The protection windows of the original spec (see ``collect_protection_metrics``)."""
    duration = spec.effective_duration_s
    session_onsets = {
        decl.session_id: onset
        for decl in spec.sessions
        for onset in [decl.attack_onset_s()]
        if onset is not None and onset < duration
    }
    if not session_onsets:
        return None
    return {"global": min(session_onsets.values()), "sessions": session_onsets}


def plan_shards(spec: ScenarioSpec) -> ShardPlan:
    """Partition a ``shards=N`` spec into ``N`` standalone region sub-specs.

    Raises :class:`ValueError` when the spec is not shardable: the topology
    must annotate exactly ``N`` regions with region-contiguous receiver edge
    routers, sessions must realise their whole population as blocks
    (``receivers=0``; the individual-receiver path uses a topology-global
    placement cursor), every round-robin block must use the columnar
    ``model="vector"`` engine, and globally-coupled features (TCP/CBR cross
    traffic, overhead tracking, series recording) are rejected.
    """
    if spec.shards is None:
        raise ValueError("spec has no shards field set; nothing to plan")
    if spec.topology == "dumbbell":
        raise ValueError(
            "the default dumbbell has no topology regions; sharding needs an "
            "annotated topology such as 'sharded-dumbbell'"
        )
    params = dict(spec.topology_params)
    if "region" in params:
        raise ValueError("topology_params['region'] is reserved for region workers")
    topology = build_topology(spec.topology, **params)
    if not topology.regions:
        raise ValueError(
            f"topology {spec.topology!r} annotates no regions; sharding cuts "
            "at region boundaries"
        )
    if len(topology.regions) != spec.shards:
        raise ValueError(
            f"spec declares shards={spec.shards} but topology "
            f"{spec.topology!r} annotates {len(topology.regions)} regions"
        )
    if spec.tcp or spec.cbr:
        raise ValueError("TCP/CBR cross traffic couples regions; cannot shard")
    if spec.record_series:
        raise ValueError("record_series is not supported on sharded runs")

    edges = topology.receiver_routers
    edge_regions: List[int] = []
    for edge in edges:
        region = topology.region_of(edge)
        if region is None:
            raise ValueError(f"receiver router {edge!r} is not in any region")
        edge_regions.append(region)
    # Region contiguity is what makes the vector-row split exact: each
    # region's edges must form one contiguous run of the receiver list.
    seen: List[int] = []
    for region in edge_regions:
        if seen and seen[-1] != region and region in seen:
            raise ValueError(
                "receiver routers must be region-contiguous for exact "
                "round-robin re-splitting"
            )
        if not seen or seen[-1] != region:
            seen.append(region)

    count = len(topology.regions)
    # region index -> session index -> (block_indices, blocks)
    regional: List[List[Tuple[int, List[int], List[CohortDecl]]]] = [
        [] for _ in range(count)
    ]
    for s_index, decl in enumerate(spec.sessions):
        if decl.receivers != 0:
            raise ValueError(
                f"session {decl.session_id!r} declares individual receivers; "
                "sharded sessions must realise their population as blocks "
                "(receivers=0) so placement does not depend on a "
                "topology-global cursor"
            )
        if decl.track_overhead:
            raise ValueError(
                f"session {decl.session_id!r} tracks overhead, which is a "
                "whole-session accumulator; cannot shard"
            )
        per_region: Dict[int, List[Tuple[int, CohortDecl]]] = {}
        for b_index, block in enumerate(decl.population):
            if block.router is not None:
                region = topology.region_of(block.router)
                if region is None:
                    raise ValueError(
                        f"block router {block.router!r} is not in any region"
                    )
                per_region.setdefault(region, []).append((b_index, block))
                continue
            if block.model != "vector":
                raise ValueError(
                    f"unpinned model={block.model!r} blocks round-robin over a "
                    "topology-global cursor; pin them to a router or use "
                    'model="vector" to shard'
                )
            rows = split_counts(block.count, block.cohorts or 1)
            rows_by_region: Dict[int, List[int]] = {}
            for row, members in enumerate(rows):
                rows_by_region.setdefault(edge_regions[row % len(edges)], []).append(
                    members
                )
            for region in sorted(rows_by_region):
                share = rows_by_region[region]
                per_region.setdefault(region, []).append(
                    (
                        b_index,
                        replace(
                            block,
                            count=sum(share),
                            cohorts=len(share) if len(share) > 1 else None,
                        ),
                    )
                )
        for region, entries in per_region.items():
            entries.sort(key=lambda pair: pair[0])
            regional[region].append(
                (s_index, [b for b, _ in entries], [blk for _, blk in entries])
            )

    region_plans: List[RegionPlan] = []
    for region in range(count):
        sessions: List[SessionDecl] = []
        mapping: List[RegionSession] = []
        for s_index, block_indices, blocks in regional[region]:
            decl = spec.sessions[s_index]
            sessions.append(
                SessionDecl(
                    session_id=decl.session_id,
                    receivers=0,
                    suppress_unsubscribed_groups=decl.suppress_unsubscribed_groups,
                    population=tuple(blocks),
                )
            )
            mapping.append(RegionSession(s_index, tuple(block_indices)))
        region_plans.append(
            RegionPlan(
                region=region + 1,
                spec=replace(
                    spec,
                    topology_params={**params, "region": region + 1},
                    sessions=tuple(sessions),
                    shards=None,
                ),
                sessions=tuple(mapping),
            )
        )
    config = spec.config
    slot_s = config.flid_ds_slot_s if spec.protected else config.flid_dl_slot_s
    return ShardPlan(
        spec=spec,
        topology=topology,
        regions=tuple(region_plans),
        slot_s=slot_s,
        onsets=_shard_onsets(spec),
    )


def region_payloads(plan: ShardPlan) -> List[str]:
    """One worker payload (JSON string) per region, in region order."""
    return [
        json.dumps(
            {
                "kind": "region",
                "region": region.region,
                "spec": region.spec.to_dict(),
                "slot_s": plan.slot_s,
                "onsets": plan.onsets,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        for region in plan.regions
    ]


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _collect_region_sessions(
    scenario: Scenario,
    spec: ScenarioSpec,
    onsets: Optional[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Per-session, per-block metric ingredients of a finished region run.

    Receiver-level lists are kept *per block* (not per session) because the
    merge interleaves blocks across regions block-major; the protection
    ingredients carry everything except the excess fields, which need the
    global honest baseline only the merge can compute.
    """
    config = spec.config
    duration = spec.effective_duration_s
    warmup = config.warmup_s
    sessions: List[Dict[str, Any]] = []
    for decl, session in zip(spec.sessions, scenario.sessions):
        onset = None
        if onsets is not None:
            onset = onsets["sessions"].get(decl.session_id)
        blocks: List[Dict[str, Any]] = []
        bound_level: Optional[int] = None
        for block_decl, (start, stop) in zip(decl.population, session.block_slices):
            rows = session.receivers[start:stop]
            models = session.models[start:stop]
            block: Dict[str, Any] = {
                "receiver_kbps": [
                    receiver.average_rate_kbps(warmup, duration) for receiver in rows
                ],
                "final_levels": [receiver.level for receiver in rows],
                "population": [model.population for model in models],
            }
            if block_decl.attack is None:
                if onsets is not None:
                    block["window_kbps"] = [
                        receiver.average_rate_kbps(onsets["global"], duration)
                        for receiver in rows
                    ]
            elif onset is not None:
                if bound_level is None:
                    bound_level = session.spec.fair_level(config.fair_share_bps)
                bound_kbps = 1.25 * session.spec.cumulative_rate_bps(bound_level) / 1e3
                attackers: List[Dict[str, Any]] = []
                for receiver in rows:
                    attacker_kbps = receiver.average_rate_kbps(onset, duration)
                    level_containment = time_to_containment_s(
                        receiver.level_history, onset, bound_level, duration
                    )
                    rate_series = [
                        (sample.time_s, sample.rate_kbps)
                        for sample in receiver.monitor.series(end_time_s=duration)
                    ]
                    entry: Dict[str, Any] = {
                        "goodput_kbps": attacker_kbps,
                        "containment_s": combined_containment_s(
                            level_containment,
                            goodput_containment_s(
                                rate_series, onset, bound_kbps, duration
                            ),
                        ),
                        "population": receiver.population,
                    }
                    stats = getattr(receiver, "adversary_stats", None)
                    if stats is not None:
                        entry["counters"] = stats()
                    attackers.append(entry)
                block["attackers"] = attackers
            blocks.append(block)
        entry = {"session_id": decl.session_id, "blocks": blocks}
        if bound_level is not None:
            entry["bound_level"] = bound_level
        sessions.append(entry)
    return sessions


def run_region_json(payload_json: str) -> str:
    """Worker entry point: region payload JSON in, region document JSON out.

    Module-level and string-typed so it pickles into pool workers.  The
    returned document carries the per-block metric ingredients, the summed
    SIGMA counters, the recorded boundary events and the region's wall time
    (the only nondeterministic field — the merge drops it).
    """
    payload = json.loads(payload_json)
    spec = ScenarioSpec.from_dict(payload["spec"])
    warm = payload.get("warm")
    if warm is not None:
        # Warm-started region: restore the region's prefix checkpoint (the
        # boundary log was attached before the prefix ran, so pre-barrier
        # events are inside the blob) and rebind the real declarations.
        from pathlib import Path

        from .warmstart import CheckpointStore, _ensure_checkpoint

        scenario, _reused = _ensure_checkpoint(
            CheckpointStore(Path(warm["dir"])),
            warm["key"],
            ScenarioSpec.from_dict(warm["prefix"]),
            warm["barrier_s"],
            membership_log=True,
        )
        events = scenario.network.multicast.membership_log
        scenario.rebind_spec(spec)
    else:
        scenario = Scenario.from_spec(spec)
        events = []
        scenario.network.multicast.membership_log = events
    started = time.perf_counter()
    scenario.run(spec.effective_duration_s)
    wall_s = time.perf_counter() - started
    document: Dict[str, Any] = {
        "region": payload["region"],
        "sessions": _collect_region_sessions(scenario, spec, payload.get("onsets")),
        "boundary": [list(event) for event in events],
        "wall_s": wall_s,
    }
    if scenario.sigma_agents:
        document["sigma"] = {
            "valid_submissions": sum(a.valid_submissions for a in scenario.sigma_agents),
            "invalid_submissions": sum(
                a.invalid_submissions for a in scenario.sigma_agents
            ),
            "revocations": sum(a.revocations for a in scenario.sigma_agents),
            "igmp_joins_ignored": sum(
                a.igmp_joins_ignored for a in scenario.sigma_agents
            ),
            "guess_alarms": sum(a.guess_alarms for a in scenario.sigma_agents),
            "edge_agents": len(scenario.sigma_agents),
        }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# merge side
# ----------------------------------------------------------------------
def merge_boundary_events(
    plan: ShardPlan, documents: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Fold per-region boundary events into deterministic slot barriers.

    Events are bucketed into slots of the protocol's slot duration and
    emitted slot-major, region-major, preserving each region's own event
    order — cross-region ordering *within* a slot is not physically
    meaningful, only the slot barrier is, so the barrier order is the
    deterministic one.  The merged stream is summarised (counts + SHA-256
    digest) rather than embedded, keeping the metric document small.
    """
    slot_s = plan.slot_s
    buckets: Dict[int, List[List[Any]]] = {}
    joins = 0
    leaves = 0
    per_region: Dict[str, int] = {}
    for region_plan, document in zip(plan.regions, documents):
        events = document.get("boundary", [])
        per_region[str(region_plan.region)] = len(events)
        for event in events:
            time_s, group, host, delta = event
            slot = int(time_s / slot_s)
            buckets.setdefault(slot, []).append(
                [slot, region_plan.region, time_s, group, host, delta]
            )
            if delta > 0:
                joins += 1
            else:
                leaves += 1
    merged: List[List[Any]] = []
    for slot in sorted(buckets):
        merged.extend(buckets[slot])
    digest = hashlib.sha256(
        json.dumps(merged, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return {
        "slot_s": slot_s,
        "regions": len(plan.regions),
        "events": joins + leaves,
        "joins": joins,
        "leaves": leaves,
        "per_region": per_region,
        "digest": digest,
    }


def merge_region_results(
    plan: ShardPlan, documents: Sequence[Dict[str, Any]]
) -> RunResult:
    """Deterministically merge region documents into one :class:`RunResult`.

    Per-receiver lists are reassembled in the unsharded scenario's receiver
    index order (block-major, region-major within a block) and every float
    reduction — session averages, population weighting, the global honest
    baseline and the per-attacker excess — is recomputed in that exact
    order, so where the regional physics is decoupled the merged document
    matches the unsharded run's floats term for term.
    """
    spec = plan.spec
    config = spec.config
    duration = spec.effective_duration_s
    if len(documents) != len(plan.regions):
        raise ValueError(
            f"expected {len(plan.regions)} region documents, got {len(documents)}"
        )
    for region_plan, document in zip(plan.regions, documents):
        if document.get("region") != region_plan.region:
            raise ValueError(
                f"region document out of order: expected region "
                f"{region_plan.region}, got {document.get('region')}"
            )

    # session index -> original block index -> region-ordered block documents
    collected: Dict[int, Dict[int, List[Dict[str, Any]]]] = {}
    bound_levels: Dict[int, int] = {}
    for region_plan, document in zip(plan.regions, documents):
        for region_session, session_doc in zip(
            region_plan.sessions, document["sessions"]
        ):
            per_block = collected.setdefault(region_session.session_index, {})
            for local_index, block_index in enumerate(region_session.block_indices):
                per_block.setdefault(block_index, []).append(
                    session_doc["blocks"][local_index]
                )
            if "bound_level" in session_doc:
                bound_levels[region_session.session_index] = session_doc["bound_level"]

    metrics: Dict[str, Any] = {"multicast": {}}
    block_lengths: Dict[int, List[int]] = {}
    for s_index, decl in enumerate(spec.sessions):
        per_block = collected.get(s_index, {})
        receiver_kbps: List[float] = []
        final_levels: List[int] = []
        populations: List[int] = []
        lengths: List[int] = []
        for b_index in range(len(decl.population)):
            length = 0
            for block in per_block.get(b_index, []):
                receiver_kbps.extend(block["receiver_kbps"])
                final_levels.extend(block["final_levels"])
                populations.extend(block["population"])
                length += len(block["receiver_kbps"])
            lengths.append(length)
        block_lengths[s_index] = lengths
        total = sum(populations)
        metrics["multicast"][decl.session_id] = {
            "receiver_kbps": receiver_kbps,
            "average_kbps": sum(receiver_kbps) / len(receiver_kbps),
            "final_levels": final_levels,
            "receiver_population": populations,
            "population": total,
            "weighted_average_kbps": (
                sum(rate * count for rate, count in zip(receiver_kbps, populations))
                / total
            ),
        }

    sigma_docs = [doc["sigma"] for doc in documents if "sigma" in doc]
    if sigma_docs:
        metrics["sigma"] = {
            key: sum(doc[key] for doc in sigma_docs) for key in sigma_docs[0]
        }

    onsets = plan.onsets
    if onsets is not None:
        # The honest baseline sums (rate, weight) pairs in the unsharded
        # iteration order: sessions outer, receiver index order inner.
        honest: List[Tuple[float, int]] = []
        for s_index, decl in enumerate(spec.sessions):
            per_block = collected.get(s_index, {})
            for b_index, block_decl in enumerate(decl.population):
                if block_decl.attack is not None:
                    continue
                for block in per_block.get(b_index, []):
                    honest.extend(
                        zip(block["window_kbps"], block["population"])
                    )
        baseline = weighted_honest_baseline_kbps(honest, config.fair_share_bps / 1e3)
        protection_sessions: Dict[str, Any] = {}
        for s_index, decl in enumerate(spec.sessions):
            onset = onsets["sessions"].get(decl.session_id)
            if onset is None or not decl.adversarial_blocks():
                continue
            adversarial = set(decl.adversarial_blocks())
            per_block = collected.get(s_index, {})
            entries: Dict[str, Any] = {}
            offset = 0
            for b_index in range(len(decl.population)):
                if b_index not in adversarial:
                    offset += block_lengths[s_index][b_index]
                    continue
                for block in per_block.get(b_index, []):
                    for ingredient in block["attackers"]:
                        entry: Dict[str, Any] = {
                            "goodput_kbps": ingredient["goodput_kbps"],
                            "excess_kbps": excess_goodput_kbps(
                                ingredient["goodput_kbps"], baseline
                            ),
                            "containment_s": ingredient["containment_s"],
                            "bound_level": bound_levels[s_index],
                            "population": ingredient["population"],
                            "weighted_excess_kbps": weighted_excess_goodput_kbps(
                                ingredient["goodput_kbps"],
                                baseline,
                                ingredient["population"],
                            ),
                        }
                        if "counters" in ingredient:
                            entry["counters"] = ingredient["counters"]
                        entries[str(offset)] = entry
                        offset += 1
            protection_sessions[decl.session_id] = {
                "onset_s": onset,
                "attackers": entries,
            }
        metrics["protection"] = {
            "honest_baseline_kbps": baseline,
            "sessions": protection_sessions,
        }

    metrics["boundary"] = merge_boundary_events(plan, documents)
    return RunResult(
        scenario=spec.name,
        seed=spec.seed,
        protected=spec.protected,
        duration_s=duration,
        metrics=metrics,
    )
