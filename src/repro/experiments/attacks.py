"""Named attack scenarios sweeping the adversary registry.

Each scenario pits one (or a group of) strategy-driven attackers against
honest multicast receivers and TCP cross traffic, defaulting to the
protected protocol so the registered runs double as protection regressions:
the runner's ``protection`` metrics (excess goodput over the honest
baseline, time to containment) quantify the §5.2 claim per strategy.

Every builder exposes ``protected``, ``intensity`` and ``attack_start_s`` so
``python -m repro run <name> --param …`` and :class:`ExperimentRunner` grids
can sweep attacker type × intensity × onset on any topology; see
``examples/attack_sweep.py``.
"""

from __future__ import annotations

from typing import Optional

from ..adversary.spec import AttackSpec
from .config import PAPER_DEFAULTS
from .registry import register_scenario
from .spec import CbrDecl, ScenarioSpec, SessionDecl, TcpDecl

__all__ = ["attack_duel_spec"]

DEFAULT_ATTACK_START_S = 20.0
DEFAULT_DURATION_S = 60.0


def attack_duel_spec(
    name: str,
    attack: AttackSpec,
    protected: bool = True,
    duration_s: Optional[float] = DEFAULT_DURATION_S,
    config=PAPER_DEFAULTS,
) -> ScenarioSpec:
    """The Figure 1/7 duel with a pluggable attacker strategy.

    Two multicast sessions (attacker ``F1``, honest ``F2``) and one TCP flow
    share a dumbbell bottleneck sized for one fair share per flow; the attack
    spec decides what ``F1`` mounts (``F1`` gets as many receivers as the
    attack targets).  Three flows cross the bottleneck regardless of the
    attacker's receiver count — a multicast session sends one copy across it.
    """
    receivers = max(attack.receivers) + 1
    return ScenarioSpec(
        name=name,
        protected=protected,
        expected_sessions=3,
        sessions=(
            SessionDecl("F1", receivers=receivers, attacks=(attack,)),
            SessionDecl("F2", receivers=1),
        ),
        tcp=(TcpDecl("T1"),),
        duration_s=duration_s,
        config=config,
    )


@register_scenario(
    "attack-flapping",
    "Join/leave churn against SIGMA: the attacker flaps its membership and "
    "milks the admission grace windows",
)
def attack_flapping(
    protected: bool = True,
    intensity: float = 1.0,
    attack_start_s: float = DEFAULT_ATTACK_START_S,
    period_s: float = 4.0,
    duration_s: Optional[float] = DEFAULT_DURATION_S,
    config=PAPER_DEFAULTS,
) -> ScenarioSpec:
    return attack_duel_spec(
        "attack-flapping",
        AttackSpec(
            "churn",
            start_s=attack_start_s,
            intensity=intensity,
            params={"period_s": period_s},
        ),
        protected=protected,
        duration_s=duration_s,
        config=config,
    )


@register_scenario(
    "attack-key-guessing",
    "Random key guessing (§4.2): uniformly random keys for every forbidden "
    "group, every slot",
)
def attack_key_guessing(
    protected: bool = True,
    intensity: float = 1.0,
    attack_start_s: float = DEFAULT_ATTACK_START_S,
    guesses_per_slot: int = 8,
    duration_s: Optional[float] = DEFAULT_DURATION_S,
    config=PAPER_DEFAULTS,
) -> ScenarioSpec:
    return attack_duel_spec(
        "attack-key-guessing",
        AttackSpec(
            "key-guessing",
            start_s=attack_start_s,
            intensity=intensity,
            params={"guesses_per_slot": guesses_per_slot},
        ),
        protected=protected,
        duration_s=duration_s,
        config=config,
    )


@register_scenario(
    "attack-key-replay",
    "Key replay (§4.1): legitimately reconstructed keys re-submitted out of "
    "scope, against higher groups and later slots",
)
def attack_key_replay(
    protected: bool = True,
    intensity: float = 1.0,
    attack_start_s: float = DEFAULT_ATTACK_START_S,
    duration_s: Optional[float] = DEFAULT_DURATION_S,
    config=PAPER_DEFAULTS,
) -> ScenarioSpec:
    return attack_duel_spec(
        "attack-key-replay",
        AttackSpec("key-replay", start_s=attack_start_s, intensity=intensity),
        protected=protected,
        duration_s=duration_s,
        config=config,
    )


@register_scenario(
    "attack-join-storm",
    "IGMP join storm: bare membership reports for every group at every slot "
    "boundary — inflation against IGMP, control-plane noise against SIGMA",
)
def attack_join_storm(
    protected: bool = True,
    intensity: float = 1.0,
    attack_start_s: float = DEFAULT_ATTACK_START_S,
    duration_s: Optional[float] = DEFAULT_DURATION_S,
    config=PAPER_DEFAULTS,
) -> ScenarioSpec:
    return attack_duel_spec(
        "attack-join-storm",
        AttackSpec("join-storm", start_s=attack_start_s, intensity=intensity),
        protected=protected,
        duration_s=duration_s,
        config=config,
    )


@register_scenario(
    "attack-ignore-congestion",
    "Congestion masking (§2.1): the attacker pretends it saw no losses — "
    "DELTA then hands it keys it cannot compute correctly",
)
def attack_ignore_congestion(
    protected: bool = True,
    intensity: float = 1.0,
    attack_start_s: float = DEFAULT_ATTACK_START_S,
    duration_s: Optional[float] = DEFAULT_DURATION_S,
    config=PAPER_DEFAULTS,
) -> ScenarioSpec:
    return attack_duel_spec(
        "attack-ignore-congestion",
        AttackSpec("ignore-congestion", start_s=attack_start_s, intensity=intensity),
        protected=protected,
        duration_s=duration_s,
        config=config,
    )


@register_scenario(
    "attack-composite",
    "The full Figure 7 attacker rebuilt from composed strategies: bare "
    "joins + key replay + key guessing + join storm on one receiver",
)
def attack_composite(
    protected: bool = True,
    intensity: float = 1.0,
    attack_start_s: float = DEFAULT_ATTACK_START_S,
    duration_s: Optional[float] = DEFAULT_DURATION_S,
    config=PAPER_DEFAULTS,
) -> ScenarioSpec:
    attacks = (
        AttackSpec(
            "inflated-join",
            start_s=attack_start_s,
            intensity=intensity,
            params={"suppress_honest": False},
        ),
        AttackSpec("key-replay", start_s=attack_start_s, intensity=intensity),
        AttackSpec("key-guessing", start_s=attack_start_s, intensity=intensity),
        AttackSpec("join-storm", start_s=attack_start_s, intensity=intensity),
    )
    return ScenarioSpec(
        name="attack-composite",
        protected=protected,
        expected_sessions=3,
        sessions=(
            SessionDecl("F1", receivers=1, attacks=attacks),
            SessionDecl("F2", receivers=1),
        ),
        tcp=(TcpDecl("T1"),),
        duration_s=duration_s,
        config=config,
    )


@register_scenario(
    "attack-collusion-parking-lot",
    "Colluding receivers on a 3-hop parking lot share reconstructed keys "
    "out of band (§4.3): the downstream colluder submits the upstream "
    "colluder's keys across its own congested bottleneck",
)
def attack_collusion_parking_lot(
    protected: bool = True,
    intensity: float = 1.0,
    attack_start_s: float = DEFAULT_ATTACK_START_S,
    hops: int = 3,
    duration_s: Optional[float] = DEFAULT_DURATION_S,
    config=PAPER_DEFAULTS,
) -> ScenarioSpec:
    """Collusion across bottlenecks — impossible to express before the
    general topology layer: each colluder sits behind its own SIGMA edge
    router, and only the multi-hop chain makes their entitlements diverge.

    A CBR burst squeezes the last hop, so the downstream colluder's honest
    entitlement collapses while the upstream colluder keeps reconstructing
    high-group keys and publishing them into the shared pool.
    """
    last = f"r{hops}"
    collusion = AttackSpec(
        "collusion",
        receivers=(0, 1),
        start_s=attack_start_s,
        intensity=intensity,
        params={"pool": "lot"},
    )
    return ScenarioSpec(
        name="attack-collusion-parking-lot",
        protected=protected,
        topology="parking-lot",
        topology_params={
            "hops": hops,
            "bottleneck_bandwidth_bps": 3 * config.fair_share_bps,
        },
        sessions=(
            SessionDecl(
                "colluders",
                receivers=2,
                attacks=(collusion,),
                receiver_routers=("r1", last),
            ),
            SessionDecl(
                "victims",
                receivers=2,
                receiver_routers=("r1", last),
            ),
        ),
        cbr=(
            CbrDecl(
                "squeeze",
                rate_bps=2 * config.fair_share_bps,
                on_s=5.0,
                off_s=2.0,
                active_window=(
                    attack_start_s,
                    duration_s if duration_s is not None else config.duration_s,
                ),
                receiver_router=last,
            ),
        ),
        duration_s=duration_s,
        config=config,
    )
