"""Point-to-point links.

A :class:`Link` is a unidirectional pipe between two nodes with a bandwidth,
a propagation delay and a drop-tail output queue.  Duplex connectivity is
built from two links (one per direction), exactly as NS-2's duplex-link
creates two simplex links.

Packet timing follows the textbook store-and-forward model:

* a packet that arrives at an idle link starts transmitting immediately;
* transmission (serialization) takes ``size_bits / bandwidth`` seconds;
* the packet then propagates for ``delay`` seconds and is handed to the
  destination node;
* packets arriving while the link transmits are held in the output queue and
  dropped when the queue is full.

The default queue capacity is two bandwidth-delay products, the setting used
throughout the paper's evaluation (§5.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from .node import Node

__all__ = ["Link", "LinkStats", "default_buffer_bytes"]


def default_buffer_bytes(bandwidth_bps: float, delay_s: float, multiple: float = 2.0) -> int:
    """Queue capacity equal to ``multiple`` bandwidth-delay products.

    The paper sets the buffer space of every link to two bandwidth-delay
    products; a floor of one maximum-size packet keeps very small links
    usable.
    """
    bdp_bytes = bandwidth_bps * delay_s / 8.0
    return max(int(multiple * bdp_bytes), 1600)


class LinkStats:
    """Per-link transmission counters."""

    def __init__(self) -> None:
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        self.delivered_packets = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LinkStats(tx_pkts={self.transmitted_packets}, "
            f"tx_bytes={self.transmitted_bytes})"
        )


class Link:
    """Unidirectional link with serialization, propagation and a FIFO queue."""

    def __init__(
        self,
        sim: Simulator,
        src: "Node",
        dst: "Node",
        bandwidth_bps: float,
        delay_s: float,
        queue: Optional[DropTailQueue] = None,
        name: Optional[str] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive (got {bandwidth_bps})")
        if delay_s < 0:
            raise ValueError(f"propagation delay must be non-negative (got {delay_s})")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        # Note: an empty DropTailQueue is falsy (it defines __len__), so the
        # presence check must be an identity test, not a truthiness test.
        self.queue = (
            queue if queue is not None else DropTailQueue(default_buffer_bytes(bandwidth_bps, delay_s))
        )
        self.name = name or f"{src.name}->{dst.name}"
        self.stats = LinkStats()
        self._busy = False
        #: Optional hook invoked with every packet dropped at this link's queue.
        self.on_drop: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Link({self.name}, {self.bandwidth_bps / 1e6:.2f} Mbps, {self.delay_s * 1e3:.1f} ms)"

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized onto the wire."""
        return self._busy

    def transmission_time(self, packet: Packet) -> float:
        """Serialization delay of ``packet`` on this link."""
        return packet.size_bits / self.bandwidth_bps

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Accept a packet for transmission.

        Returns True when the packet was queued (or started transmitting)
        and False when the drop-tail queue rejected it.
        """
        accepted = self.queue.enqueue(packet)
        if not accepted:
            if self.on_drop is not None:
                self.on_drop(packet)
            pool = packet._pool
            if pool is not None:
                # A dropped pool replica has no remaining consumer: recycle.
                pool.release(packet)
            return False
        if not self._busy:
            self._start_next_transmission()
        return True

    # ------------------------------------------------------------------
    def _start_next_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        size_bytes = packet.size_bytes
        tx_time = size_bytes * 8 / self.bandwidth_bps
        stats = self.stats
        stats.transmitted_packets += 1
        stats.transmitted_bytes += size_bytes
        # Transmission completes after tx_time; the packet arrives at the
        # destination a propagation delay later.  The link becomes free for
        # the next queued packet as soon as serialization finishes.
        self.sim.call_after(tx_time, self._transmission_complete, packet)

    def _transmission_complete(self, packet: Packet) -> None:
        self.sim.call_after(self.delay_s, self._deliver, packet)
        self._start_next_transmission()

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered_packets += 1
        packet.hop_count += 1
        self.dst.receive(packet, self)
