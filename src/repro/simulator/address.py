"""Addressing for the simulated network.

Two address families exist in the simulator, mirroring IPv4 semantics at the
level of detail the paper's evaluation needs:

* **Unicast addresses** identify a single host or router interface and are
  simple integers assigned by the :class:`~repro.simulator.topology.Network`.
* **Multicast group addresses** identify a multicast group.  They live in a
  separate namespace (the analogue of the 224.0.0.0/4 class-D space) so the
  forwarding code can distinguish group-addressed packets without a flag.

The paper's threat model explicitly assumes that group addresses are *not*
secret (a misbehaving receiver can discover them with tools like MSTAT), so
nothing in the design relies on address secrecy; misbehaving receivers in
this code base are handed the full group list of their session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "MULTICAST_BASE",
    "NodeAddress",
    "GroupAddress",
    "is_multicast",
    "GroupAddressAllocator",
]

#: Start of the multicast address space.  Any integer address at or above
#: this value is treated as a group address by the forwarding plane.
MULTICAST_BASE = 0x0E00_0000  # mirrors 224.0.0.0


@dataclass(frozen=True, order=True)
class NodeAddress:
    """Unicast address of a node (host or router)."""

    value: int

    def __post_init__(self) -> None:
        if not (0 <= self.value < MULTICAST_BASE):
            raise ValueError(
                f"unicast address {self.value:#x} outside unicast range "
                f"[0, {MULTICAST_BASE:#x})"
            )

    def __int__(self) -> int:
        return self.value

    def __str__(self) -> str:
        return f"node:{self.value}"


@dataclass(frozen=True, order=True)
class GroupAddress:
    """Multicast group address.

    Group addresses compare and hash by value so they can key routing and
    SIGMA key tables directly.
    """

    value: int

    def __post_init__(self) -> None:
        if self.value < MULTICAST_BASE:
            raise ValueError(
                f"group address {self.value:#x} below multicast base {MULTICAST_BASE:#x}"
            )

    def __int__(self) -> int:
        return self.value

    def __str__(self) -> str:
        return f"group:{self.value - MULTICAST_BASE}"


def is_multicast(address: "NodeAddress | GroupAddress | int") -> bool:
    """Return True when ``address`` falls in the multicast range."""
    if isinstance(address, GroupAddress):
        return True
    if isinstance(address, NodeAddress):
        return False
    return int(address) >= MULTICAST_BASE


class GroupAddressAllocator:
    """Hands out fresh multicast group addresses.

    Multi-group sessions (FLID-DL, FLID-DS, replicated multicast) ask the
    allocator for one address per group.  Addresses are never reused within a
    simulation, which mirrors how session announcements assign distinct class-D
    addresses per layer.
    """

    def __init__(self, start_offset: int = 1) -> None:
        if start_offset < 0:
            raise ValueError("start_offset must be non-negative")
        self._next = MULTICAST_BASE + start_offset

    def allocate(self) -> GroupAddress:
        """Return the next unused group address."""
        address = GroupAddress(self._next)
        self._next += 1
        return address

    def allocate_block(self, count: int) -> list[GroupAddress]:
        """Allocate ``count`` consecutive group addresses (one session)."""
        if count <= 0:
            raise ValueError(f"count must be positive (got {count})")
        return [self.allocate() for _ in range(count)]

    def allocated(self) -> Iterator[GroupAddress]:
        """Iterate over every address handed out so far."""
        for value in range(MULTICAST_BASE + 1, self._next):
            yield GroupAddress(value)
