"""Packet model.

A :class:`Packet` is a plain record: headers are attributes, the payload is
never materialised (only its size in bytes matters for link serialization and
queueing).  Protocol-specific headers — TCP sequence numbers, FLID-DL slot
numbers, DELTA component fields, SIGMA control messages — ride in the
``headers`` dictionary so the forwarding plane stays protocol-agnostic, which
is exactly the property Requirement 3 of the paper demands from the network.

Packet sizes follow the paper's evaluation: data packets are 576 bytes in the
protection/fairness experiments (§5.1) and 500 bytes in the overhead analysis
(§5.4).  DELTA adds small per-packet fields whose size is tracked separately
(``overhead_bits``) so measured overhead can be compared with the analytic
model without perturbing the packet-level dynamics, mirroring how the paper
reports overhead as a ratio of DELTA/SIGMA bits to data bits.

Hot-path design
---------------
The forwarding plane replicates multicast packets at every branching router,
so packet construction and duplication dominate the simulator's allocation
profile.  Three choices keep them cheap:

* ``__slots__`` storage with the multicast flag and the integer routing key
  (``dest_key``) precomputed once at construction instead of per hop;
* :meth:`Packet.replicate` — the router fan-out primitive — shares the
  (logically immutable after send) ``headers`` dictionary between replicas
  instead of copying it; a consumer that genuinely needs to mutate headers
  (the ECN DELTA scrambler) must call :meth:`Packet.mutable_headers`, which
  copies on first write;
* a :class:`PacketPool` recycles the dominant multicast DATA/key packet
  objects.  Only the forwarding plane releases packets, and only at points
  where the packet provably has no remaining consumer (absorbed at a router
  after replication, delivered to the final host, or dropped by a queue).
  Receiver agents must therefore not retain delivered packets beyond
  ``handle_packet`` — they extract header values instead, which the
  aliasing property tests enforce.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

from .address import GroupAddress, NodeAddress

__all__ = [
    "Packet",
    "PacketFactory",
    "PacketPool",
    "DEFAULT_DATA_PACKET_BYTES",
]

#: Default data packet size used throughout §5.1-§5.3 of the paper.
DEFAULT_DATA_PACKET_BYTES = 576

_packet_ids = itertools.count(1)

_EMPTY_HEADERS: dict = {}


class Packet:
    """A simulated packet.

    Attributes
    ----------
    source:
        Unicast address of the originating node.
    destination:
        Either a :class:`NodeAddress` (unicast) or :class:`GroupAddress`
        (multicast).
    size_bytes:
        Total wire size used for serialization and queueing decisions.
    protocol:
        Short string tag identifying the owning protocol (``"tcp"``,
        ``"flid"``, ``"cbr"``, ``"sigma"`` ...).  Purely informational for
        monitors; routers never branch on it.
    headers:
        Free-form protocol headers.  DELTA fields (component, decrease) and
        SIGMA control payloads are carried here.  Treated as immutable once
        the packet is sent; replicas share the dictionary by reference (see
        :meth:`mutable_headers`).
    overhead_bits:
        Number of bits in the packet that are DELTA/SIGMA overhead rather
        than application data; used by the measured-overhead accounting.
    ecn:
        Explicit congestion notification mark, set by routers when an
        ECN-enabled queue is congested (used by the ECN DELTA variant).
        Per-replica state: marking one copy never marks its siblings.
    created_at:
        Simulated time at which the packet was created by its sender.
    dest_key:
        ``int(destination)`` precomputed for forwarding-table lookups.
    hop_count:
        Number of links traversed so far (per replica).
    """

    __slots__ = (
        "source",
        "destination",
        "size_bytes",
        "protocol",
        "headers",
        "overhead_bits",
        "ecn",
        "created_at",
        "uid",
        "hop_count",
        "dest_key",
        "multicast",
        "_owns_headers",
        "_pool",
    )

    def __init__(
        self,
        source: NodeAddress,
        destination: "NodeAddress | GroupAddress",
        size_bytes: int,
        protocol: str = "data",
        headers: Optional[dict] = None,
        overhead_bits: int = 0,
        ecn: bool = False,
        created_at: float = 0.0,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive (got {size_bytes})")
        self.source = source
        self.destination = destination
        self.size_bytes = size_bytes
        self.protocol = protocol
        self.headers = {} if headers is None else headers
        self.overhead_bits = overhead_bits
        self.ecn = ecn
        self.created_at = created_at
        self.uid = next(_packet_ids)
        self.hop_count = 0
        self.dest_key = destination.value
        self.multicast = type(destination) is GroupAddress
        self._owns_headers = True
        self._pool: Optional["PacketPool"] = None

    @property
    def size_bits(self) -> int:
        """Wire size in bits."""
        return self.size_bytes * 8

    @property
    def is_multicast(self) -> bool:
        """True when the packet is addressed to a multicast group."""
        return self.multicast

    def copy(self) -> "Packet":
        """Return an independent copy with its own headers dictionary.

        Retained for callers that intend to mutate headers; the forwarding
        plane itself uses :meth:`replicate`, which shares them.
        """
        clone = Packet(
            source=self.source,
            destination=self.destination,
            size_bytes=self.size_bytes,
            protocol=self.protocol,
            headers=dict(self.headers),
            overhead_bits=self.overhead_bits,
            ecn=self.ecn,
            created_at=self.created_at,
        )
        clone.hop_count = self.hop_count
        return clone

    def replicate(self, pool: Optional["PacketPool"] = None) -> "Packet":
        """Zero-copy duplicate for multicast fan-out.

        The replica shares this packet's ``headers`` dictionary (no copy) and
        carries its own ``ecn`` mark and ``hop_count``.  When ``pool`` is
        given, the replica is drawn from it and will be recycled once the
        forwarding plane proves it dead.
        """
        if pool is not None:
            clone = pool.acquire_blank()
        else:
            clone = Packet.__new__(Packet)
            clone.uid = next(_packet_ids)
            clone._pool = None
        clone.source = self.source
        clone.destination = self.destination
        clone.size_bytes = self.size_bytes
        clone.protocol = self.protocol
        clone.headers = self.headers
        clone.overhead_bits = self.overhead_bits
        clone.ecn = self.ecn
        clone.created_at = self.created_at
        clone.hop_count = self.hop_count
        clone.dest_key = self.dest_key
        clone.multicast = self.multicast
        clone._owns_headers = False
        return clone

    def mutable_headers(self) -> dict:
        """Headers dictionary that is safe to mutate (copy-on-write).

        Replicas share the sender's headers; the first in-flight mutation
        (only the ECN DELTA scrambler does this) detaches a private copy so
        sibling replicas and the original never observe the change.
        """
        if not self._owns_headers:
            self.headers = dict(self.headers)
            self._owns_headers = True
        return self.headers

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Packet(#{self.uid} {self.protocol} {self.source}->{self.destination} "
            f"{self.size_bytes}B)"
        )


class PacketPool:
    """Bounded free-list of :class:`Packet` objects for the multicast plane.

    The pool only ever hands out packets it previously received back through
    :meth:`release`, and :meth:`release` is called exclusively by the
    forwarding plane at the three points where a packet is provably dead:

    * a router absorbed it after replicating to the out-links,
    * the destination host dispatched it to its agents,
    * a drop-tail queue rejected it (after the drop hook ran).

    Packets acquired from a pool are tagged with it; foreign packets (TCP
    segments the sender may retransmit, test fixtures) pass through
    :meth:`release` untouched, so pooling is opt-in per packet, never
    ambient.
    """

    __slots__ = ("_free", "max_size", "recycled", "allocated")

    def __init__(self, max_size: int = 4096) -> None:
        self._free: List[Packet] = []
        self.max_size = max_size
        #: Number of acquisitions served from the free list (introspection).
        self.recycled = 0
        #: Number of fresh allocations made on pool miss (introspection).
        self.allocated = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire_blank(self) -> Packet:
        """A pool-tagged packet with *unset* fields (callers must fill them)."""
        free = self._free
        if free:
            self.recycled += 1
            packet = free.pop()
        else:
            self.allocated += 1
            packet = Packet.__new__(Packet)
        packet._pool = self
        packet.uid = next(_packet_ids)
        return packet

    def acquire(
        self,
        source: NodeAddress,
        destination: "NodeAddress | GroupAddress",
        size_bytes: int,
        protocol: str = "data",
        headers: Optional[dict] = None,
        overhead_bits: int = 0,
        created_at: float = 0.0,
    ) -> Packet:
        """A fully initialised pool-tagged packet (the sender-side entry)."""
        packet = self.acquire_blank()
        packet.source = source
        packet.destination = destination
        packet.size_bytes = size_bytes
        packet.protocol = protocol
        packet.headers = {} if headers is None else headers
        packet.overhead_bits = overhead_bits
        packet.ecn = False
        packet.created_at = created_at
        packet.hop_count = 0
        packet.dest_key = destination.value
        packet.multicast = type(destination) is GroupAddress
        packet._owns_headers = True
        return packet

    def release(self, packet: Packet) -> None:
        """Return a dead pool packet to the free list (no-op for foreign ones).

        The packet's ``headers`` reference is dropped but the dictionary is
        never mutated: replicas sharing it stay valid.  Reuse assigns a new
        ``uid``, so stale references are detectable in debugging.  The pool
        tag doubles as the membership guard: releasing clears it, so a
        double release (or releasing a foreign packet) is a no-op.
        """
        if packet._pool is not self:
            return
        packet._pool = None
        free = self._free
        if len(free) >= self.max_size:
            return
        packet.headers = _EMPTY_HEADERS
        # The shared sentinel must stay CoW-protected: a stale holder that
        # (incorrectly) calls mutable_headers() detaches a private copy
        # instead of mutating the sentinel for every parked packet.
        packet._owns_headers = False
        packet.source = None  # type: ignore[assignment]
        packet.destination = None  # type: ignore[assignment]
        free.append(packet)


class PacketFactory:
    """Creates packets stamped with the current simulated time.

    Senders hold a factory bound to the simulator clock so every packet's
    ``created_at`` reflects its true send time, which end-to-end delay and
    throughput monitors rely on.
    """

    def __init__(self, clock, default_size: int = DEFAULT_DATA_PACKET_BYTES) -> None:
        """``clock`` is any object with a ``now`` attribute (usually the Simulator)."""
        self._clock = clock
        self._default_size = default_size

    @property
    def default_size(self) -> int:
        """Packet size used when :meth:`make` is not given one."""
        return self._default_size

    def make(
        self,
        source: NodeAddress,
        destination: "NodeAddress | GroupAddress",
        size_bytes: Optional[int] = None,
        protocol: str = "data",
        headers: Optional[dict[str, Any]] = None,
        overhead_bits: int = 0,
    ) -> Packet:
        """Create a packet stamped with the current simulated time."""
        return Packet(
            source=source,
            destination=destination,
            size_bytes=self._default_size if size_bytes is None else size_bytes,
            protocol=protocol,
            headers=headers or {},
            overhead_bits=overhead_bits,
            created_at=self._clock.now,
        )
