"""Packet model.

A :class:`Packet` is a plain record: headers are attributes, the payload is
never materialised (only its size in bytes matters for link serialization and
queueing).  Protocol-specific headers — TCP sequence numbers, FLID-DL slot
numbers, DELTA component fields, SIGMA control messages — ride in the
``headers`` dictionary so the forwarding plane stays protocol-agnostic, which
is exactly the property Requirement 3 of the paper demands from the network.

Packet sizes follow the paper's evaluation: data packets are 576 bytes in the
protection/fairness experiments (§5.1) and 500 bytes in the overhead analysis
(§5.4).  DELTA adds small per-packet fields whose size is tracked separately
(``overhead_bits``) so measured overhead can be compared with the analytic
model without perturbing the packet-level dynamics, mirroring how the paper
reports overhead as a ratio of DELTA/SIGMA bits to data bits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from .address import GroupAddress, NodeAddress

__all__ = [
    "Packet",
    "PacketFactory",
    "DEFAULT_DATA_PACKET_BYTES",
]

#: Default data packet size used throughout §5.1-§5.3 of the paper.
DEFAULT_DATA_PACKET_BYTES = 576

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A simulated packet.

    Attributes
    ----------
    source:
        Unicast address of the originating node.
    destination:
        Either a :class:`NodeAddress` (unicast) or :class:`GroupAddress`
        (multicast).
    size_bytes:
        Total wire size used for serialization and queueing decisions.
    protocol:
        Short string tag identifying the owning protocol (``"tcp"``,
        ``"flid"``, ``"cbr"``, ``"sigma"`` ...).  Purely informational for
        monitors; routers never branch on it.
    headers:
        Free-form protocol headers.  DELTA fields (component, decrease) and
        SIGMA control payloads are carried here.
    overhead_bits:
        Number of bits in the packet that are DELTA/SIGMA overhead rather
        than application data; used by the measured-overhead accounting.
    ecn:
        Explicit congestion notification mark, set by routers when an
        ECN-enabled queue is congested (used by the ECN DELTA variant).
    created_at:
        Simulated time at which the packet was created by its sender.
    """

    source: NodeAddress
    destination: "NodeAddress | GroupAddress"
    size_bytes: int
    protocol: str = "data"
    headers: dict[str, Any] = field(default_factory=dict)
    overhead_bits: int = 0
    ecn: bool = False
    created_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    hop_count: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive (got {self.size_bytes})")

    @property
    def size_bits(self) -> int:
        """Wire size in bits."""
        return self.size_bytes * 8

    @property
    def is_multicast(self) -> bool:
        """True when the packet is addressed to a multicast group."""
        return isinstance(self.destination, GroupAddress)

    def copy(self) -> "Packet":
        """Return an independent copy (used when routers replicate packets).

        The copy shares no mutable state with the original: the headers
        dictionary is shallow-copied, which is sufficient because protocol
        code treats header values as immutable once the packet is sent.
        """
        clone = Packet(
            source=self.source,
            destination=self.destination,
            size_bytes=self.size_bytes,
            protocol=self.protocol,
            headers=dict(self.headers),
            overhead_bits=self.overhead_bits,
            ecn=self.ecn,
            created_at=self.created_at,
        )
        clone.hop_count = self.hop_count
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Packet(#{self.uid} {self.protocol} {self.source}->{self.destination} "
            f"{self.size_bytes}B)"
        )


class PacketFactory:
    """Creates packets stamped with the current simulated time.

    Senders hold a factory bound to the simulator clock so every packet's
    ``created_at`` reflects its true send time, which end-to-end delay and
    throughput monitors rely on.
    """

    def __init__(self, clock, default_size: int = DEFAULT_DATA_PACKET_BYTES) -> None:
        """``clock`` is any object with a ``now`` attribute (usually the Simulator)."""
        self._clock = clock
        self._default_size = default_size

    @property
    def default_size(self) -> int:
        return self._default_size

    def make(
        self,
        source: NodeAddress,
        destination: "NodeAddress | GroupAddress",
        size_bytes: Optional[int] = None,
        protocol: str = "data",
        headers: Optional[dict[str, Any]] = None,
        overhead_bits: int = 0,
    ) -> Packet:
        """Create a packet stamped with the current simulated time."""
        return Packet(
            source=source,
            destination=destination,
            size_bytes=self._default_size if size_bytes is None else size_bytes,
            protocol=protocol,
            headers=headers or {},
            overhead_bits=overhead_bits,
            created_at=self._clock.now,
        )
