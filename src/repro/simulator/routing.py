"""Unicast route computation.

Routes are computed once the topology is built (and recomputed on demand if
links are added later).  The metric is propagation delay, which makes the
computed paths identical to the intuitive ones on every topology used in the
paper's evaluation (dumbbells and chains).  Dijkstra's algorithm over the
node/link graph fills per-node forwarding tables mapping destination address
to next-hop link.

Multicast trees are *derived* from these unicast routes by
:mod:`repro.simulator.multicast`: the distribution tree of a group is the
union of the unicast shortest paths from the current forwarding node to every
member host, which on single-source trees matches what a protocol like
PIM-SSM would build.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Tuple

from .link import Link
from .node import Node

__all__ = ["compute_routes", "shortest_path", "RoutingError"]


class RoutingError(RuntimeError):
    """Raised when a path is requested between disconnected nodes."""


def _adjacency(nodes: Iterable[Node]) -> Dict[str, List[Tuple[float, Link]]]:
    adjacency: Dict[str, List[Tuple[float, Link]]] = {}
    for node in nodes:
        edges = []
        for link in node.links.values():
            # Delay is the primary metric; a tiny bandwidth-derived term
            # breaks ties deterministically in favour of faster links.
            cost = link.delay_s + 1e-12 / link.bandwidth_bps
            edges.append((cost, link))
        adjacency[node.name] = edges
    return adjacency


def compute_routes(nodes: Iterable[Node]) -> None:
    """Populate every node's unicast forwarding table.

    Runs Dijkstra from each node.  The topologies in this reproduction have
    at most a few dozen nodes, so the quadratic cost is negligible.
    """
    node_list = list(nodes)
    adjacency = _adjacency(node_list)
    by_name = {node.name: node for node in node_list}

    for source in node_list:
        dist: Dict[str, float] = {source.name: 0.0}
        first_hop: Dict[str, Link] = {}
        heap: List[Tuple[float, str]] = [(0.0, source.name)]
        visited: set[str] = set()
        while heap:
            d, name = heapq.heappop(heap)
            if name in visited:
                continue
            visited.add(name)
            for cost, link in adjacency[name]:
                neighbour = link.dst.name
                nd = d + cost
                if nd < dist.get(neighbour, float("inf")):
                    dist[neighbour] = nd
                    # The first hop from the source is either this link (when
                    # we are at the source) or inherited from the parent.
                    first_hop[neighbour] = link if name == source.name else first_hop[name]
                    heapq.heappush(heap, (nd, neighbour))
        source.routes = {
            int(by_name[dest_name].address): link
            for dest_name, link in first_hop.items()
        }


def shortest_path(src: Node, dst: Node) -> List[Node]:
    """Return the node sequence of the delay-shortest path from src to dst.

    Used by the multicast service to discover which routers lie on the path
    toward a member host.  Raises :class:`RoutingError` when no path exists.
    """
    if src is dst:
        return [src]
    dist: Dict[str, float] = {src.name: 0.0}
    prev: Dict[str, Node] = {}
    heap: List[Tuple[float, str, Node]] = [(0.0, src.name, src)]
    visited: set[str] = set()
    while heap:
        d, name, node = heapq.heappop(heap)
        if name in visited:
            continue
        visited.add(name)
        if node is dst:
            path = [dst]
            while path[-1] is not src:
                path.append(prev[path[-1].name])
            path.reverse()
            return path
        for link in node.links.values():
            neighbour = link.dst
            nd = d + link.delay_s + 1e-12 / link.bandwidth_bps
            if nd < dist.get(neighbour.name, float("inf")):
                dist[neighbour.name] = nd
                prev[neighbour.name] = node
                heapq.heappush(heap, (nd, neighbour.name, neighbour))
    raise RoutingError(f"no path from {src.name} to {dst.name}")
