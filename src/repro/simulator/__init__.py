"""Discrete-event network simulator substrate.

This package replaces NS-2 for the reproduction: an event-heap engine,
store-and-forward links with drop-tail queues, hosts and routers, unicast
routing, IP-multicast forwarding with IGMP-style membership, deterministic
random streams and measurement instrumentation.

Public surface
--------------
The names re-exported here form the simulator's public API; everything else
in the package is an implementation detail.
"""

from .address import (
    MULTICAST_BASE,
    GroupAddress,
    GroupAddressAllocator,
    NodeAddress,
    is_multicast,
)
from .engine import Event, PeriodicTimer, SimulationError, Simulator
from .igmp import IgmpGroupManager, IgmpHostInterface, install_igmp
from .link import Link, LinkStats, default_buffer_bytes
from .monitors import (
    LinkMonitor,
    OverheadAccumulator,
    ThroughputMonitor,
    ThroughputSample,
    jain_fairness,
)
from .multicast import MulticastRoutingService
from .node import ControlChannel, Host, Node, PacketAgent, Router
from .packet import DEFAULT_DATA_PACKET_BYTES, Packet, PacketFactory
from .queues import DropTailQueue, ECNMarkingQueue, QueueStats
from .rng import RandomStreams
from .routing import RoutingError, compute_routes, shortest_path
from .topology import (
    TOPOLOGIES,
    DumbbellConfig,
    DumbbellNetwork,
    LinkSpec,
    Network,
    NetworkGraph,
    TopologySpec,
    build_topology,
    binary_tree_topology,
    dumbbell_topology,
    multi_edge_dumbbell_topology,
    parking_lot_topology,
    sharded_dumbbell_topology,
    star_topology,
)

__all__ = [
    "TOPOLOGIES",
    "LinkSpec",
    "NetworkGraph",
    "TopologySpec",
    "build_topology",
    "binary_tree_topology",
    "dumbbell_topology",
    "multi_edge_dumbbell_topology",
    "parking_lot_topology",
    "sharded_dumbbell_topology",
    "star_topology",
    "MULTICAST_BASE",
    "GroupAddress",
    "GroupAddressAllocator",
    "NodeAddress",
    "is_multicast",
    "Event",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
    "IgmpGroupManager",
    "IgmpHostInterface",
    "install_igmp",
    "Link",
    "LinkStats",
    "default_buffer_bytes",
    "LinkMonitor",
    "OverheadAccumulator",
    "ThroughputMonitor",
    "ThroughputSample",
    "jain_fairness",
    "MulticastRoutingService",
    "ControlChannel",
    "Host",
    "Node",
    "PacketAgent",
    "Router",
    "DEFAULT_DATA_PACKET_BYTES",
    "Packet",
    "PacketFactory",
    "DropTailQueue",
    "ECNMarkingQueue",
    "QueueStats",
    "RandomStreams",
    "RoutingError",
    "compute_routes",
    "shortest_path",
    "DumbbellConfig",
    "DumbbellNetwork",
    "Network",
]
