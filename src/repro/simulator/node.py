"""Nodes: hosts and routers.

The forwarding plane is deliberately protocol-agnostic (the paper's
Requirement 3): routers know only how to forward unicast packets toward a
destination address and how to replicate multicast packets along the group's
distribution tree.  All congestion-control and key-management intelligence
lives in *agents* attached to hosts and in *group managers* attached to edge
routers (plain IGMP for the unprotected baseline, SIGMA for the protected
system).

``Host``
    End system.  Applications/transport agents register with the host and
    receive packets addressed to them.  Hosts reach the network through one
    access link to their edge router and exchange group-management messages
    with that router over a :class:`ControlChannel`.

``Router``
    Forwards unicast packets using a destination-indexed table and multicast
    packets using the network's :class:`~repro.simulator.multicast.MulticastRoutingService`.
    An *edge* router additionally owns a group manager that decides, per local
    interface, whether group traffic is forwarded to the attached host.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from .address import GroupAddress, NodeAddress
from .engine import Simulator
from .link import Link
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .multicast import MulticastRoutingService

__all__ = ["Node", "Host", "Router", "ControlChannel", "PacketAgent"]


class PacketAgent:
    """Base class for anything that consumes packets at a host.

    Transport endpoints (TCP sinks, FLID-DL receivers, CBR sinks) subclass
    this.  The only required method is :meth:`handle_packet`.
    """

    def handle_packet(self, packet: Packet) -> None:  # pragma: no cover - interface
        """Consume one delivered packet (must not retain it past the call)."""
        raise NotImplementedError


class ControlChannel:
    """Reliable low-latency control path between a host and its edge router.

    IGMP membership reports and SIGMA session-join / subscription /
    unsubscription messages travel over the local access link only.  The
    paper assumes they are made reliable by acknowledgement and
    retransmission (§3.2.2), so this reproduction models them as reliable
    deliveries delayed by the access link's propagation delay rather than as
    loss-prone queued packets.  Message counts and byte estimates are still
    recorded so the overhead accounting can include them.
    """

    def __init__(self, sim: Simulator, delay_s: float) -> None:
        self.sim = sim
        self.delay_s = delay_s
        self.messages_sent = 0
        self.bytes_sent = 0

    def send(self, handler: Callable[..., None], *args: Any, size_bytes: int = 64) -> None:
        """Deliver ``handler(*args)`` after the channel delay."""
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        self.sim.call_after(self.delay_s, handler, *args)


class Node:
    """Common base of hosts and routers."""

    def __init__(self, sim: Simulator, name: str, address: NodeAddress) -> None:
        self.sim = sim
        self.name = name
        self.address = address
        #: Outgoing links keyed by neighbour node name.
        self.links: dict[str, Link] = {}
        #: Unicast forwarding table: destination address value -> outgoing link.
        self.routes: dict[int, Link] = {}
        self.default_route: Optional[Link] = None
        self.packets_received = 0
        self.packets_forwarded = 0

    def attach_link(self, link: Link) -> None:
        """Register an outgoing link (called by the topology builder)."""
        self.links[link.dst.name] = link

    def link_to(self, neighbour: "Node") -> Link:
        """Outgoing link toward a directly connected neighbour."""
        try:
            return self.links[neighbour.name]
        except KeyError as exc:
            raise KeyError(f"{self.name} has no link to {neighbour.name}") from exc

    def route_for(self, destination: NodeAddress) -> Optional[Link]:
        """Next-hop link for a unicast destination (or the default route)."""
        return self.routes.get(int(destination), self.default_route)

    def receive(self, packet: Packet, link: Optional[Link]) -> None:  # pragma: no cover
        """Accept a packet delivered by ``link`` (None for direct injection)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name})"


class Host(Node):
    """End system that sources and sinks traffic."""

    def __init__(self, sim: Simulator, name: str, address: NodeAddress) -> None:
        super().__init__(sim, name, address)
        self._agents: dict[Any, PacketAgent] = {}
        self._group_agents: dict[int, list[PacketAgent]] = {}
        #: Edge router this host hangs off (set by the topology builder).
        self.edge_router: Optional["Router"] = None
        #: Control channel to the edge router's group manager.
        self.control: Optional[ControlChannel] = None
        #: Number of end systems this host stands for.  Ordinary hosts are 1;
        #: a cohort host aggregates N homogeneous receivers behind one edge
        #: interface, and membership/overhead accounting weights it as N while
        #: the forwarding plane still treats it as a single interface.
        self.population: int = 1

    # ------------------------------------------------------------------
    # agent registration
    # ------------------------------------------------------------------
    def register_agent(self, key: Any, agent: PacketAgent) -> None:
        """Register a unicast agent under ``key`` (usually a port number)."""
        if key in self._agents:
            raise ValueError(f"agent key {key!r} already registered on {self.name}")
        self._agents[key] = agent

    def register_group_agent(self, group: GroupAddress, agent: PacketAgent) -> None:
        """Register an agent interested in packets of a multicast group."""
        self._group_agents.setdefault(int(group), []).append(agent)

    def unregister_group_agent(self, group: GroupAddress, agent: PacketAgent) -> None:
        """Remove a previously registered group agent (no-op when absent)."""
        agents = self._group_agents.get(int(group), [])
        if agent in agents:
            agents.remove(agent)

    # ------------------------------------------------------------------
    # sending and receiving
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Hand a locally generated packet to the network."""
        if packet.multicast:
            link = self.default_route
        else:
            link = self.routes.get(packet.dest_key, self.default_route)
        if link is None:
            # A host always has exactly one uplink in the paper's topologies;
            # fall back to it for multicast or unrouted destinations.
            if not self.links:
                raise RuntimeError(f"host {self.name} has no attached links")
            link = next(iter(self.links.values()))
        return link.send(packet)

    def receive(self, packet: Packet, link: Optional[Link]) -> None:
        """Dispatch a delivered packet to the registered agent(s).

        Agents must not retain the packet beyond ``handle_packet``: the host
        is the terminal consumer of a multicast replica and recycles pooled
        packets once dispatch returns (see
        :class:`~repro.simulator.packet.PacketPool`).
        """
        self.packets_received += 1
        if packet.multicast:
            agents = self._group_agents.get(packet.dest_key)
            if agents:
                for agent in agents:
                    agent.handle_packet(packet)
            pool = packet._pool
            if pool is not None:
                pool.release(packet)
            return
        key = packet.headers.get("port")
        agent = self._agents.get(key)
        if agent is None:
            agent = self._agents.get(packet.protocol)
        if agent is not None:
            agent.handle_packet(packet)
        # Packets with no matching agent are silently discarded, mirroring a
        # closed port; tests assert on counters rather than exceptions.


class Router(Node):
    """Store-and-forward router with unicast and multicast forwarding."""

    def __init__(self, sim: Simulator, name: str, address: NodeAddress) -> None:
        super().__init__(sim, name, address)
        #: Set by the topology builder; provides multicast out-link lookups.
        self.multicast_service: Optional["MulticastRoutingService"] = None
        #: Group manager (IGMP or SIGMA agent) present only on edge routers.
        self.group_manager: Optional[Any] = None
        #: Hook for the ECN DELTA variant: called for every multicast packet
        #: forwarded toward a local interface, may mutate headers.
        self.local_delivery_hook: Optional[Callable[[Packet, Link], None]] = None
        self.multicast_packets_forwarded = 0
        self.multicast_copies_sent = 0

    # ------------------------------------------------------------------
    def receive(self, packet: Packet, link: Optional[Link]) -> None:
        """Forward a packet: unicast by destination key, multicast by fan-out."""
        self.packets_received += 1
        if packet.is_multicast:
            self._forward_multicast(packet, link)
        else:
            self._forward_unicast(packet)

    # ------------------------------------------------------------------
    def _forward_unicast(self, packet: Packet) -> None:
        out = self.routes.get(packet.dest_key, self.default_route)
        if out is None:
            return  # no route: drop silently (counted by tests via link stats)
        self.packets_forwarded += 1
        out.send(packet)

    def _forward_multicast(self, packet: Packet, incoming: Optional[Link]) -> None:
        """Replicate ``packet`` along the group's precomputed out-links.

        Replication is zero-copy: each out-link gets a
        :meth:`~repro.simulator.packet.Packet.replicate` of the incoming
        packet (shared headers, private ECN/hop state) drawn from the
        network's packet pool.  The incoming packet itself is absorbed here
        — every branch sends a replica, never the original — so it is
        recycled once the fan-out completes.
        """
        service = self.multicast_service
        if service is None:
            return

        intercept = packet.headers.get("sigma_intercept")
        if intercept and self.group_manager is not None:
            handler = getattr(self.group_manager, "handle_control_packet", None)
            if handler is not None:
                handler(packet)

        out_links = service.out_links(self, packet.destination)
        self.multicast_packets_forwarded += 1
        copies = 0
        pool = service.packet_pool
        hook = self.local_delivery_hook
        incoming_src = incoming.src if incoming is not None else None
        for out in out_links:
            dst = out.dst
            if dst is incoming_src:
                continue  # never send back toward where the packet came from
            is_local_interface = isinstance(dst, Host)
            if intercept and is_local_interface:
                continue  # special packets never reach local interfaces
            copy = packet.replicate(pool)
            if is_local_interface and hook is not None:
                hook(copy, out)
            copies += 1
            out.send(copy)
        self.multicast_copies_sent += copies
        pool.release(packet)
