"""Multicast group membership and forwarding.

The :class:`MulticastRoutingService` is the network-wide view of group
membership: for each group it knows which hosts are currently entitled to
receive the group's traffic.  Routers consult it to decide where to replicate
an incoming multicast packet.  The distribution tree is derived from the
unicast forwarding tables (the union of shortest paths toward the member
hosts), which matches a source-specific tree on the paper's topologies.

Membership changes are requested by edge routers — either their IGMP manager
(unprotected baseline, any host join is honoured) or their SIGMA agent
(protected system, joins require valid keys).  Joins take effect after a
configurable *graft* latency and leaves after a *prune* latency, modelling the
fact that IGMP/PIM signalling is not instantaneous; both default to small
values so that, as in the paper, the access-control slot granularity (not the
routing plane) dominates responsiveness.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .address import GroupAddress
from .engine import Simulator
from .link import Link
from .node import Host, Router
from .packet import PacketPool

__all__ = ["MulticastRoutingService", "MembershipStats"]


class MembershipStats:
    """Counters of membership churn, used by tests and experiments."""

    def __init__(self) -> None:
        self.joins_requested = 0
        self.joins_effective = 0
        self.leaves_requested = 0
        self.leaves_effective = 0


class MulticastRoutingService:
    """Tracks group membership and answers router forwarding queries."""

    def __init__(
        self,
        sim: Simulator,
        graft_delay_s: float = 0.02,
        prune_delay_s: float = 0.02,
    ) -> None:
        if graft_delay_s < 0 or prune_delay_s < 0:
            raise ValueError("graft/prune delays must be non-negative")
        self.sim = sim
        self.graft_delay_s = graft_delay_s
        self.prune_delay_s = prune_delay_s
        self._members: Dict[int, Set[Host]] = {}
        #: Replication tables: group value -> {router name -> out links}.
        #: Rebuilt lazily per router after a membership change invalidates
        #: the group's table (an O(1) pop, not a cache scan).
        self._tables: Dict[int, Dict[str, List[Link]]] = {}
        #: Free-list for the multicast data plane: routers draw replicas
        #: from here and the forwarding plane recycles them when dead.
        self.packet_pool = PacketPool()
        self.stats = MembershipStats()
        #: Optional boundary-event recorder for region-sharded runs
        #: (:mod:`repro.experiments.shard`): when a list is assigned here,
        #: every *effective* membership transition appends
        #: ``(time_s, group_value, host_name, +1 | -1)``.  ``None`` (the
        #: default) keeps the join/leave hot path allocation-free.
        self.membership_log: Optional[List[Tuple[float, int, str, int]]] = None

    # ------------------------------------------------------------------
    # membership queries
    # ------------------------------------------------------------------
    def members(self, group: GroupAddress) -> Set[Host]:
        """Hosts currently receiving ``group`` (a copy; safe to mutate)."""
        return set(self._members.get(int(group), set()))

    def has_members(self, group: GroupAddress) -> bool:
        """True when ``group`` has at least one member (no set copy).

        The senders' suppress-unsubscribed-groups fast path calls this once
        per prospective packet, so it must stay allocation-free.
        """
        return bool(self._members.get(group.value))

    def member_population(self, group: GroupAddress) -> int:
        """Receivers currently served by ``group``, cohort-aware.

        Each member host counts as its :attr:`~repro.simulator.node.Host.population`
        (1 for ordinary hosts, N for a cohort host), so this is the number of
        *end systems* receiving the group — the quantity the paper's scaling
        claims are about — while :meth:`members` stays the number of
        forwarding interfaces.
        """
        return sum(
            getattr(host, "population", 1)
            for host in self._members.get(int(group), ())
        )

    def is_member(self, host: Host, group: GroupAddress) -> bool:
        """True when ``host`` currently receives ``group``."""
        return host in self._members.get(int(group), set())

    def groups_of(self, host: Host) -> List[GroupAddress]:
        """All groups the host currently belongs to."""
        return [
            GroupAddress(value)
            for value, members in self._members.items()
            if host in members
        ]

    # ------------------------------------------------------------------
    # membership changes
    # ------------------------------------------------------------------
    def join(self, host: Host, group: GroupAddress, immediate: bool = False) -> None:
        """Add ``host`` to ``group`` after the graft latency."""
        self.stats.joins_requested += 1
        if immediate or self.graft_delay_s == 0:
            self._do_join(host, group)
        else:
            self.sim.call_after(self.graft_delay_s, self._do_join, host, group)

    def leave(self, host: Host, group: GroupAddress, immediate: bool = False) -> None:
        """Remove ``host`` from ``group`` after the prune latency."""
        self.stats.leaves_requested += 1
        if immediate or self.prune_delay_s == 0:
            self._do_leave(host, group)
        else:
            self.sim.call_after(self.prune_delay_s, self._do_leave, host, group)

    def leave_all(self, host: Host, immediate: bool = True) -> None:
        """Remove a host from every group (used at session teardown)."""
        for group in self.groups_of(host):
            self.leave(host, group, immediate=immediate)

    def _do_join(self, host: Host, group: GroupAddress) -> None:
        members = self._members.setdefault(int(group), set())
        if host not in members:
            members.add(host)
            self.stats.joins_effective += 1
            if self.membership_log is not None:
                self.membership_log.append((self.sim.now, int(group), host.name, 1))
            self._invalidate(group)

    def _do_leave(self, host: Host, group: GroupAddress) -> None:
        members = self._members.get(int(group))
        if members and host in members:
            members.remove(host)
            self.stats.leaves_effective += 1
            if self.membership_log is not None:
                self.membership_log.append((self.sim.now, int(group), host.name, -1))
            self._invalidate(group)

    def _invalidate(self, group: GroupAddress) -> None:
        """Drop the group's replication table after a membership change."""
        self._tables.pop(group.value, None)

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def out_links(self, router: Router, group: GroupAddress) -> List[Link]:
        """Outgoing links on which ``router`` must replicate ``group`` traffic.

        The answer is the deduplicated set of next-hop links from ``router``
        toward every current member host, precomputed per (group, router)
        and invalidated only by an effective IGMP/SIGMA join or leave —
        never recomputed per packet.
        """
        value = group.value
        table = self._tables.get(value)
        if table is None:
            table = {}
            self._tables[value] = table
        else:
            cached = table.get(router.name)
            if cached is not None:
                return cached
        links: List[Link] = []
        seen: set[int] = set()
        # Member sets hash hosts by identity, so raw set order varies between
        # processes; replicating in address order keeps packet interleaving —
        # and therefore drop patterns — byte-identical across runs and across
        # the serial and process-pool experiment runner paths.
        members = sorted(self._members.get(value, ()), key=lambda h: int(h.address))
        for host in members:
            link = router.route_for(host.address)
            if link is None:
                continue
            if id(link) not in seen:
                seen.add(id(link))
                links.append(link)
        table[router.name] = links
        return links

    # ------------------------------------------------------------------
    def groups(self) -> Iterable[GroupAddress]:
        """Every group with at least one member."""
        return [GroupAddress(value) for value, members in self._members.items() if members]
