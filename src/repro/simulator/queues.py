"""Output queues for simulated links.

The paper's evaluation uses plain drop-tail FIFO queues sized at two
bandwidth-delay products of the attached link (§5.1).  The drop-tail queue is
therefore the workhorse of this reproduction; a RED-like marking queue is
also provided because §3.1.2 describes an ECN variant of DELTA in which edge
routers scramble the component field of marked packets.

Queues count bytes, packets and drops so monitors and tests can assert
conservation properties (every enqueued packet is eventually dequeued or
counted as dropped).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from .packet import Packet

__all__ = [
    "QueueStats",
    "DropTailQueue",
    "ECNMarkingQueue",
]


@dataclass
class QueueStats:
    """Counters exposed by every queue implementation."""

    enqueued_packets: int = 0
    dequeued_packets: int = 0
    dropped_packets: int = 0
    enqueued_bytes: int = 0
    dequeued_bytes: int = 0
    dropped_bytes: int = 0
    marked_packets: int = 0

    @property
    def packets_in_flight(self) -> int:
        """Packets accepted but not yet dequeued."""
        return self.enqueued_packets - self.dequeued_packets

    def conservation_holds(self, currently_queued: int) -> bool:
        """Check the enqueue = dequeue + drop + queued invariant."""
        return self.enqueued_packets == (
            self.dequeued_packets + currently_queued
        ) and self.dropped_packets >= 0


class DropTailQueue:
    """Bounded FIFO queue that drops arriving packets when full.

    The capacity is expressed in bytes (the natural unit for a queue sized in
    bandwidth-delay products).  A packet is accepted only if it fits entirely
    within the remaining capacity, which matches NS-2's byte-mode DropTail
    behaviour closely enough for the paper's experiments.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"queue capacity must be positive (got {capacity_bytes})")
        self.capacity_bytes = capacity_bytes
        self._queue: deque[Packet] = deque()
        self._queued_bytes = 0
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def queued_bytes(self) -> int:
        """Bytes currently held in the queue."""
        return self._queued_bytes

    @property
    def is_empty(self) -> bool:
        """True when no packet is queued."""
        return not self._queue

    def occupancy(self) -> float:
        """Fraction of the byte capacity currently in use (0.0 - 1.0)."""
        return self._queued_bytes / self.capacity_bytes

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Try to accept ``packet``; returns False (and counts a drop) when full."""
        if self._queued_bytes + packet.size_bytes > self.capacity_bytes:
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size_bytes
            return False
        self._queue.append(packet)
        self._queued_bytes += packet.size_bytes
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size_bytes
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head-of-line packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        self.stats.dequeued_packets += 1
        self.stats.dequeued_bytes += packet.size_bytes
        return packet

    def peek(self) -> Optional[Packet]:
        """Return the head-of-line packet without removing it."""
        return self._queue[0] if self._queue else None

    def clear(self) -> None:
        """Discard all queued packets (counted as drops)."""
        while self._queue:
            packet = self._queue.popleft()
            self._queued_bytes -= packet.size_bytes
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size_bytes


class ECNMarkingQueue(DropTailQueue):
    """Drop-tail queue that additionally marks packets above a threshold.

    When the instantaneous occupancy exceeds ``mark_threshold`` (a fraction
    of capacity), arriving ECN-capable packets are marked instead of relying
    solely on loss.  The ECN DELTA variant (§3.1.2) uses the mark as the
    trigger for edge routers to scramble the packet's component field so
    marked packets cannot contribute to key reconstruction.
    """

    def __init__(self, capacity_bytes: int, mark_threshold: float = 0.5) -> None:
        super().__init__(capacity_bytes)
        if not (0.0 < mark_threshold <= 1.0):
            raise ValueError(
                f"mark_threshold must be in (0, 1] (got {mark_threshold})"
            )
        self.mark_threshold = mark_threshold

    def enqueue(self, packet: Packet) -> bool:
        """Mark the packet when occupancy exceeds the threshold, then enqueue."""
        if self.occupancy() >= self.mark_threshold:
            packet.ecn = True
            self.stats.marked_packets += 1
        return super().enqueue(packet)
