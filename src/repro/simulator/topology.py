"""Topology construction.

``Network`` is the container that owns the simulator, the nodes, the links,
the unicast routing computation and the multicast routing service.  On top of
it, :class:`DumbbellNetwork` builds the single-bottleneck topology used
throughout the paper's evaluation (§5.1):

* every *session* gets its own sender host attached to the left-hand router
  and its own receiver host(s) attached to the right-hand router;
* the middle (bottleneck) link is shared by all sessions; its capacity is
  normally ``fair_share × number_of_sessions``;
* access links are 10 Mbps with 10 ms propagation delay, the bottleneck has a
  20 ms delay, and every queue holds two bandwidth-delay products.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .address import GroupAddress, GroupAddressAllocator, NodeAddress
from .engine import Simulator
from .link import Link, default_buffer_bytes
from .multicast import MulticastRoutingService
from .node import ControlChannel, Host, Node, Router
from .queues import DropTailQueue
from .routing import compute_routes
from .rng import RandomStreams

__all__ = ["Network", "DumbbellNetwork", "DumbbellConfig"]


class Network:
    """A collection of nodes and links plus the shared services they need."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        seed: int = 0,
        graft_delay_s: float = 0.02,
        prune_delay_s: float = 0.02,
    ) -> None:
        self.sim = sim or Simulator()
        self.random = RandomStreams(seed)
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self.multicast = MulticastRoutingService(
            self.sim, graft_delay_s=graft_delay_s, prune_delay_s=prune_delay_s
        )
        self.groups = GroupAddressAllocator()
        self._next_address = itertools.count(1)
        self._routes_stale = True

    # ------------------------------------------------------------------
    # node creation
    # ------------------------------------------------------------------
    def _allocate_address(self) -> NodeAddress:
        return NodeAddress(next(self._next_address))

    def add_host(self, name: str) -> Host:
        """Create a host with a fresh unicast address."""
        if name in self.nodes:
            raise ValueError(f"node name {name!r} already in use")
        host = Host(self.sim, name, self._allocate_address())
        self.nodes[name] = host
        self._routes_stale = True
        return host

    def add_router(self, name: str) -> Router:
        """Create a router with a fresh unicast address."""
        if name in self.nodes:
            raise ValueError(f"node name {name!r} already in use")
        router = Router(self.sim, name, self._allocate_address())
        router.multicast_service = self.multicast
        self.nodes[name] = router
        self._routes_stale = True
        return router

    # ------------------------------------------------------------------
    # link creation
    # ------------------------------------------------------------------
    def duplex_link(
        self,
        a: Node,
        b: Node,
        bandwidth_bps: float,
        delay_s: float,
        buffer_bytes: Optional[int] = None,
        buffer_bdp_multiple: float = 2.0,
    ) -> Tuple[Link, Link]:
        """Connect ``a`` and ``b`` with two simplex links (one per direction)."""
        if buffer_bytes is None:
            buffer_bytes = default_buffer_bytes(bandwidth_bps, delay_s, buffer_bdp_multiple)
        forward = Link(
            self.sim, a, b, bandwidth_bps, delay_s, DropTailQueue(buffer_bytes)
        )
        backward = Link(
            self.sim, b, a, bandwidth_bps, delay_s, DropTailQueue(buffer_bytes)
        )
        a.attach_link(forward)
        b.attach_link(backward)
        self.links.extend([forward, backward])
        self._routes_stale = True
        return forward, backward

    def attach_host(
        self,
        host: Host,
        edge_router: Router,
        bandwidth_bps: float,
        delay_s: float,
        buffer_bytes: Optional[int] = None,
    ) -> Tuple[Link, Link]:
        """Connect a host to its edge router and wire up the control channel."""
        links = self.duplex_link(host, edge_router, bandwidth_bps, delay_s, buffer_bytes)
        host.edge_router = edge_router
        host.control = ControlChannel(self.sim, delay_s)
        return links

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """(Re)compute unicast forwarding tables on every node."""
        compute_routes(self.nodes.values())
        # Hosts keep a default route through their only uplink so multicast
        # sends do not need a routing entry per group.
        for node in self.nodes.values():
            if isinstance(node, Host) and node.links:
                node.default_route = next(iter(node.links.values()))
        self._routes_stale = False

    def ensure_routes(self) -> None:
        if self._routes_stale:
            self.build_routes()

    # ------------------------------------------------------------------
    # convenience lookups
    # ------------------------------------------------------------------
    def host(self, name: str) -> Host:
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise TypeError(f"{name} is a {type(node).__name__}, not a Host")
        return node

    def router(self, name: str) -> Router:
        node = self.nodes[name]
        if not isinstance(node, Router):
            raise TypeError(f"{name} is a {type(node).__name__}, not a Router")
        return node

    def find_link(self, src: Node, dst: Node) -> Link:
        for link in self.links:
            if link.src is src and link.dst is dst:
                return link
        raise KeyError(f"no link from {src.name} to {dst.name}")

    def allocate_groups(self, count: int) -> List[GroupAddress]:
        """Allocate a block of multicast group addresses for a session."""
        return self.groups.allocate_block(count)

    def run(self, until: float) -> None:
        """Build routes if needed and run the simulation until ``until``."""
        self.ensure_routes()
        self.sim.run(until=until)


@dataclass
class DumbbellConfig:
    """Parameters of the §5.1 single-bottleneck topology."""

    bottleneck_bandwidth_bps: float = 1_000_000.0
    bottleneck_delay_s: float = 0.020
    access_bandwidth_bps: float = 10_000_000.0
    access_delay_s: float = 0.010
    buffer_bdp_multiple: float = 2.0
    seed: int = 0
    graft_delay_s: float = 0.02
    prune_delay_s: float = 0.02

    @property
    def path_rtt_s(self) -> float:
        """Round-trip propagation delay of the three-link path (§5.1)."""
        return 2.0 * (2.0 * self.access_delay_s + self.bottleneck_delay_s)

    def bottleneck_buffer_bytes(self) -> int:
        """Bottleneck queue sized at ``buffer_bdp_multiple`` path BDPs.

        The paper sizes buffers at two bandwidth-delay products; using the
        path round-trip time (80 ms in the default topology) rather than the
        single link's propagation delay gives the queue headroom NS-2 runs
        exhibit and keeps the smallest Figure 8 configurations (250 Kbps
        bottleneck) from degenerating to a two-packet buffer.
        """
        bdp_bytes = self.bottleneck_bandwidth_bps * self.path_rtt_s / 8.0
        return max(int(self.buffer_bdp_multiple * bdp_bytes), 4 * 1600)

    @classmethod
    def for_fair_share(
        cls, sessions: int, fair_share_bps: float = 250_000.0, **overrides
    ) -> "DumbbellConfig":
        """Bottleneck sized so each of ``sessions`` flows gets ``fair_share_bps``."""
        if sessions <= 0:
            raise ValueError("sessions must be positive")
        config = cls(bottleneck_bandwidth_bps=fair_share_bps * sessions)
        for key, value in overrides.items():
            setattr(config, key, value)
        return config


class DumbbellNetwork(Network):
    """The paper's evaluation topology: left router — bottleneck — right router.

    Senders attach on the left, receivers on the right; every session's path
    is therefore three links long with the bottleneck in the middle, exactly
    as described in §5.1.
    """

    def __init__(self, config: Optional[DumbbellConfig] = None) -> None:
        self.config = config or DumbbellConfig()
        super().__init__(
            seed=self.config.seed,
            graft_delay_s=self.config.graft_delay_s,
            prune_delay_s=self.config.prune_delay_s,
        )
        self.left = self.add_router("left")
        self.right = self.add_router("right")
        self.bottleneck, self.bottleneck_reverse = self.duplex_link(
            self.left,
            self.right,
            self.config.bottleneck_bandwidth_bps,
            self.config.bottleneck_delay_s,
            buffer_bytes=self.config.bottleneck_buffer_bytes(),
        )
        self._sender_count = 0
        self._receiver_count = 0

    # ------------------------------------------------------------------
    def add_sender(self, name: Optional[str] = None, access_delay_s: Optional[float] = None) -> Host:
        """Attach a traffic source to the left-hand router."""
        self._sender_count += 1
        host = self.add_host(name or f"sender{self._sender_count}")
        self.attach_host(
            host,
            self.left,
            self.config.access_bandwidth_bps,
            self.config.access_delay_s if access_delay_s is None else access_delay_s,
        )
        return host

    def add_receiver(
        self, name: Optional[str] = None, access_delay_s: Optional[float] = None
    ) -> Host:
        """Attach a traffic sink to the right-hand (edge) router."""
        self._receiver_count += 1
        host = self.add_host(name or f"receiver{self._receiver_count}")
        self.attach_host(
            host,
            self.right,
            self.config.access_bandwidth_bps,
            self.config.access_delay_s if access_delay_s is None else access_delay_s,
        )
        return host

    @property
    def edge_router(self) -> Router:
        """The receiver-side edge router, where group access control lives."""
        return self.right
