"""Topology construction.

``Network`` is the container that owns the simulator, the nodes, the links,
the unicast routing computation and the multicast routing service.  On top of
it sit two layers:

* :class:`TopologySpec` / :class:`NetworkGraph` — a declarative description
  of an arbitrary router graph (named routers, per-link bandwidth, delay,
  buffer and queue discipline, plus designated sender/receiver attachment
  routers) and the builder that realises it.  Factory functions produce the
  specs for the named topologies — ``dumbbell``, ``parking-lot`` (chain of
  bottlenecks), ``star`` and ``binary-tree`` — and the :data:`TOPOLOGIES`
  registry makes them addressable by name from scenario specifications.
* :class:`DumbbellNetwork` — the single-bottleneck topology used throughout
  the paper's evaluation (§5.1), now just the ``dumbbell`` factory realised
  by :class:`NetworkGraph` with convenience accessors: every *session* gets
  its own sender host attached to the left-hand router and receiver host(s)
  on the right; the shared middle link's capacity is normally
  ``fair_share × number_of_sessions``; access links are 10 Mbps with 10 ms
  propagation delay, the bottleneck has a 20 ms delay, and every queue holds
  two bandwidth-delay products.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .address import GroupAddress, GroupAddressAllocator, NodeAddress
from .engine import Simulator
from .link import Link, default_buffer_bytes
from .multicast import MulticastRoutingService
from .node import ControlChannel, Host, Node, Router
from .queues import DropTailQueue, ECNMarkingQueue
from .routing import compute_routes
from .rng import RandomStreams

__all__ = [
    "Network",
    "NetworkGraph",
    "DumbbellNetwork",
    "DumbbellConfig",
    "LinkSpec",
    "TopologySpec",
    "TOPOLOGIES",
    "QUEUE_DISCIPLINES",
    "build_topology",
    "dumbbell_topology",
    "parking_lot_topology",
    "star_topology",
    "sharded_dumbbell_topology",
    "binary_tree_topology",
]

#: Queue disciplines addressable from :class:`LinkSpec`.  Each factory takes
#: the queue capacity in bytes and returns a queue instance.
QUEUE_DISCIPLINES: Dict[str, Callable[[int], DropTailQueue]] = {
    "droptail": DropTailQueue,
    "ecn": ECNMarkingQueue,
}


class Network:
    """A collection of nodes and links plus the shared services they need."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        seed: int = 0,
        graft_delay_s: float = 0.02,
        prune_delay_s: float = 0.02,
    ) -> None:
        self.sim = sim or Simulator()
        self.random = RandomStreams(seed)
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self.multicast = MulticastRoutingService(
            self.sim, graft_delay_s=graft_delay_s, prune_delay_s=prune_delay_s
        )
        self.groups = GroupAddressAllocator()
        self._next_address = itertools.count(1)
        self._routes_stale = True

    # ------------------------------------------------------------------
    # node creation
    # ------------------------------------------------------------------
    def _allocate_address(self) -> NodeAddress:
        return NodeAddress(next(self._next_address))

    def add_host(self, name: str) -> Host:
        """Create a host with a fresh unicast address."""
        if name in self.nodes:
            raise ValueError(f"node name {name!r} already in use")
        host = Host(self.sim, name, self._allocate_address())
        self.nodes[name] = host
        self._routes_stale = True
        return host

    def add_router(self, name: str) -> Router:
        """Create a router with a fresh unicast address."""
        if name in self.nodes:
            raise ValueError(f"node name {name!r} already in use")
        router = Router(self.sim, name, self._allocate_address())
        router.multicast_service = self.multicast
        self.nodes[name] = router
        self._routes_stale = True
        return router

    # ------------------------------------------------------------------
    # link creation
    # ------------------------------------------------------------------
    def duplex_link(
        self,
        a: Node,
        b: Node,
        bandwidth_bps: float,
        delay_s: float,
        buffer_bytes: Optional[int] = None,
        buffer_bdp_multiple: float = 2.0,
        queue: str = "droptail",
    ) -> Tuple[Link, Link]:
        """Connect ``a`` and ``b`` with two simplex links (one per direction)."""
        if buffer_bytes is None:
            buffer_bytes = default_buffer_bytes(bandwidth_bps, delay_s, buffer_bdp_multiple)
        try:
            make_queue = QUEUE_DISCIPLINES[queue]
        except KeyError as exc:
            raise ValueError(
                f"unknown queue discipline {queue!r}; "
                f"known: {sorted(QUEUE_DISCIPLINES)}"
            ) from exc
        forward = Link(
            self.sim, a, b, bandwidth_bps, delay_s, make_queue(buffer_bytes)
        )
        backward = Link(
            self.sim, b, a, bandwidth_bps, delay_s, make_queue(buffer_bytes)
        )
        a.attach_link(forward)
        b.attach_link(backward)
        self.links.extend([forward, backward])
        self._routes_stale = True
        return forward, backward

    def attach_host(
        self,
        host: Host,
        edge_router: Router,
        bandwidth_bps: float,
        delay_s: float,
        buffer_bytes: Optional[int] = None,
    ) -> Tuple[Link, Link]:
        """Connect a host to its edge router and wire up the control channel."""
        links = self.duplex_link(host, edge_router, bandwidth_bps, delay_s, buffer_bytes)
        host.edge_router = edge_router
        host.control = ControlChannel(self.sim, delay_s)
        return links

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """(Re)compute unicast forwarding tables on every node."""
        compute_routes(self.nodes.values())
        # Hosts keep a default route through their only uplink so multicast
        # sends do not need a routing entry per group.
        for node in self.nodes.values():
            if isinstance(node, Host) and node.links:
                node.default_route = next(iter(node.links.values()))
        self._routes_stale = False

    def ensure_routes(self) -> None:
        if self._routes_stale:
            self.build_routes()

    # ------------------------------------------------------------------
    # convenience lookups
    # ------------------------------------------------------------------
    def host(self, name: str) -> Host:
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise TypeError(f"{name} is a {type(node).__name__}, not a Host")
        return node

    def router(self, name: str) -> Router:
        node = self.nodes[name]
        if not isinstance(node, Router):
            raise TypeError(f"{name} is a {type(node).__name__}, not a Router")
        return node

    def find_link(self, src: Node, dst: Node) -> Link:
        for link in self.links:
            if link.src is src and link.dst is dst:
                return link
        raise KeyError(f"no link from {src.name} to {dst.name}")

    def allocate_groups(self, count: int) -> List[GroupAddress]:
        """Allocate a block of multicast group addresses for a session."""
        return self.groups.allocate_block(count)

    def run(self, until: float) -> None:
        """Build routes if needed and run the simulation until ``until``."""
        self.ensure_routes()
        self.sim.run(until=until)


# ----------------------------------------------------------------------
# declarative topology graph
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkSpec:
    """One duplex router-to-router link of a :class:`TopologySpec`."""

    a: str
    b: str
    bandwidth_bps: float
    delay_s: float
    buffer_bytes: Optional[int] = None
    buffer_bdp_multiple: float = 2.0
    queue: str = "droptail"


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of a router graph.

    Hosts are not part of the spec: experiment layers attach sender and
    receiver hosts on demand, by default round-robin over the designated
    ``sender_routers`` / ``receiver_routers`` (explicit per-host placement is
    also possible).  Access links use the shared bandwidth/delay below unless
    the caller overrides them per host.

    ``regions`` optionally partitions the routers into disjoint *topology
    regions* for the region-sharded runner (``docs/scale.md``): each entry
    lists the routers of one region, routers in no region form the shared
    trunk, and every link must stay within one region or connect a region to
    the trunk — the trunk-to-region links are the designated *cut links*
    where boundary events are merged.  Sender routers must sit on the trunk
    so every region sub-topology can carry the full session set.
    """

    kind: str
    routers: Tuple[str, ...]
    links: Tuple[LinkSpec, ...]
    sender_routers: Tuple[str, ...]
    receiver_routers: Tuple[str, ...]
    access_bandwidth_bps: float = 10_000_000.0
    access_delay_s: float = 0.010
    regions: Tuple[Tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        known = set(self.routers)
        if len(known) != len(self.routers):
            raise ValueError("router names must be unique")
        for spec in self.links:
            if spec.a not in known or spec.b not in known:
                raise ValueError(f"link {spec.a!r}-{spec.b!r} references unknown router")
        for name in self.sender_routers + self.receiver_routers:
            if name not in known:
                raise ValueError(f"attachment router {name!r} is not in the spec")
        if not self.sender_routers or not self.receiver_routers:
            raise ValueError("spec needs at least one sender and one receiver router")
        if self.regions:
            membership: Dict[str, int] = {}
            for index, group in enumerate(self.regions):
                if not group:
                    raise ValueError("a topology region cannot be empty")
                for name in group:
                    if name not in known:
                        raise ValueError(f"region router {name!r} is not in the spec")
                    if name in membership:
                        raise ValueError(f"router {name!r} appears in two regions")
                    membership[name] = index
            for name in self.sender_routers:
                if name in membership:
                    raise ValueError(
                        f"sender router {name!r} must sit on the trunk, not in a region"
                    )
            for spec in self.links:
                a, b = membership.get(spec.a), membership.get(spec.b)
                if a is not None and b is not None and a != b:
                    raise ValueError(
                        f"link {spec.a!r}-{spec.b!r} crosses two regions; regions "
                        "may only connect to the trunk (the cut links)"
                    )

    # ------------------------------------------------------------------
    def region_of(self, router: str) -> Optional[int]:
        """0-based region index of ``router`` (``None`` for trunk routers)."""
        for index, group in enumerate(self.regions):
            if router in group:
                return index
        return None


class NetworkGraph(Network):
    """A :class:`Network` realised from a :class:`TopologySpec`.

    Provides the host-attachment API the experiment layer builds on:
    :meth:`add_sender` / :meth:`add_receiver` hang hosts off the designated
    attachment routers (round-robin by default, or an explicit ``router=``).
    """

    def __init__(
        self,
        spec: TopologySpec,
        seed: int = 0,
        graft_delay_s: float = 0.02,
        prune_delay_s: float = 0.02,
    ) -> None:
        super().__init__(
            seed=seed, graft_delay_s=graft_delay_s, prune_delay_s=prune_delay_s
        )
        self.spec = spec
        for name in spec.routers:
            self.add_router(name)
        for link in spec.links:
            self.duplex_link(
                self.nodes[link.a],
                self.nodes[link.b],
                link.bandwidth_bps,
                link.delay_s,
                buffer_bytes=link.buffer_bytes,
                buffer_bdp_multiple=link.buffer_bdp_multiple,
                queue=link.queue,
            )
        self._sender_count = 0
        self._receiver_count = 0
        self._sender_cursor = 0
        self._receiver_cursor = 0

    # ------------------------------------------------------------------
    def _attachment_router(self, router: Optional[str], pool: Sequence[str], cursor: int) -> Router:
        if router is not None:
            return self.router(router)
        return self.router(pool[cursor % len(pool)])

    def add_sender(
        self,
        name: Optional[str] = None,
        access_delay_s: Optional[float] = None,
        router: Optional[str] = None,
    ) -> Host:
        """Attach a traffic source to a sender-side router."""
        edge = self._attachment_router(router, self.spec.sender_routers, self._sender_cursor)
        if router is None:
            self._sender_cursor += 1
        self._sender_count += 1
        host = self.add_host(name or f"sender{self._sender_count}")
        self.attach_host(
            host,
            edge,
            self.spec.access_bandwidth_bps,
            self.spec.access_delay_s if access_delay_s is None else access_delay_s,
        )
        return host

    def add_receiver(
        self,
        name: Optional[str] = None,
        access_delay_s: Optional[float] = None,
        router: Optional[str] = None,
    ) -> Host:
        """Attach a traffic sink to a receiver-side router."""
        edge = self._attachment_router(router, self.spec.receiver_routers, self._receiver_cursor)
        if router is None:
            self._receiver_cursor += 1
        self._receiver_count += 1
        host = self.add_host(name or f"receiver{self._receiver_count}")
        self.attach_host(
            host,
            edge,
            self.spec.access_bandwidth_bps,
            self.spec.access_delay_s if access_delay_s is None else access_delay_s,
        )
        return host

    @property
    def receiver_edge_routers(self) -> List[Router]:
        """The routers receivers attach to (where group management lives)."""
        return [self.router(name) for name in self.spec.receiver_routers]

    @property
    def edge_router(self) -> Router:
        """The first receiver-side router (the only one on a dumbbell)."""
        return self.router(self.spec.receiver_routers[0])


@dataclass
class DumbbellConfig:
    """Parameters of the §5.1 single-bottleneck topology."""

    bottleneck_bandwidth_bps: float = 1_000_000.0
    bottleneck_delay_s: float = 0.020
    access_bandwidth_bps: float = 10_000_000.0
    access_delay_s: float = 0.010
    buffer_bdp_multiple: float = 2.0
    seed: int = 0
    graft_delay_s: float = 0.02
    prune_delay_s: float = 0.02

    @property
    def path_rtt_s(self) -> float:
        """Round-trip propagation delay of the three-link path (§5.1)."""
        return 2.0 * (2.0 * self.access_delay_s + self.bottleneck_delay_s)

    def bottleneck_buffer_bytes(self) -> int:
        """Bottleneck queue sized at ``buffer_bdp_multiple`` path BDPs.

        The paper sizes buffers at two bandwidth-delay products; using the
        path round-trip time (80 ms in the default topology) rather than the
        single link's propagation delay gives the queue headroom NS-2 runs
        exhibit and keeps the smallest Figure 8 configurations (250 Kbps
        bottleneck) from degenerating to a two-packet buffer.
        """
        bdp_bytes = self.bottleneck_bandwidth_bps * self.path_rtt_s / 8.0
        return max(int(self.buffer_bdp_multiple * bdp_bytes), 4 * 1600)

    @classmethod
    def for_fair_share(
        cls, sessions: int, fair_share_bps: float = 250_000.0, **overrides
    ) -> "DumbbellConfig":
        """Bottleneck sized so each of ``sessions`` flows gets ``fair_share_bps``."""
        if sessions <= 0:
            raise ValueError("sessions must be positive")
        config = cls(bottleneck_bandwidth_bps=fair_share_bps * sessions)
        for key, value in overrides.items():
            setattr(config, key, value)
        return config


class DumbbellNetwork(NetworkGraph):
    """The paper's evaluation topology: left router — bottleneck — right router.

    Senders attach on the left, receivers on the right; every session's path
    is therefore three links long with the bottleneck in the middle, exactly
    as described in §5.1.  This is the ``dumbbell`` factory of the general
    :class:`NetworkGraph` plus the accessors experiments historically used.
    """

    def __init__(self, config: Optional[DumbbellConfig] = None) -> None:
        self.config = config or DumbbellConfig()
        super().__init__(
            dumbbell_topology(self.config),
            seed=self.config.seed,
            graft_delay_s=self.config.graft_delay_s,
            prune_delay_s=self.config.prune_delay_s,
        )
        self.left = self.router("left")
        self.right = self.router("right")
        self.bottleneck = self.find_link(self.left, self.right)
        self.bottleneck_reverse = self.find_link(self.right, self.left)


# ----------------------------------------------------------------------
# named topology factories
# ----------------------------------------------------------------------
def _chain_buffer_bytes(
    bandwidth_bps: float,
    path_rtt_s: float,
    buffer_bdp_multiple: float,
) -> int:
    """Queue capacity of ``buffer_bdp_multiple`` path BDPs with a sane floor.

    Mirrors :meth:`DumbbellConfig.bottleneck_buffer_bytes`: sizing on the
    path round-trip time rather than the single hop's delay keeps small
    bottlenecks from degenerating to a couple-of-packets buffer.
    """
    bdp_bytes = bandwidth_bps * path_rtt_s / 8.0
    return max(int(buffer_bdp_multiple * bdp_bytes), 4 * 1600)


def dumbbell_topology(config: Optional[DumbbellConfig] = None, **overrides) -> TopologySpec:
    """The §5.1 single-bottleneck dumbbell as a :class:`TopologySpec`."""
    if config is None:
        config = DumbbellConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a DumbbellConfig or keyword overrides, not both")
    return TopologySpec(
        kind="dumbbell",
        routers=("left", "right"),
        links=(
            LinkSpec(
                "left",
                "right",
                config.bottleneck_bandwidth_bps,
                config.bottleneck_delay_s,
                buffer_bytes=config.bottleneck_buffer_bytes(),
            ),
        ),
        sender_routers=("left",),
        receiver_routers=("right",),
        access_bandwidth_bps=config.access_bandwidth_bps,
        access_delay_s=config.access_delay_s,
    )


def parking_lot_topology(
    hops: int = 3,
    bottleneck_bandwidth_bps: float = 1_000_000.0,
    bottleneck_delay_s: float = 0.020,
    access_bandwidth_bps: float = 10_000_000.0,
    access_delay_s: float = 0.010,
    buffer_bdp_multiple: float = 2.0,
) -> TopologySpec:
    """A chain of ``hops`` equal bottlenecks (the classic parking lot).

    Senders attach at the head router ``r0``; receivers round-robin over the
    downstream routers ``r1..r<hops>``, so a multi-receiver session spans
    several bottlenecks while cross traffic can enter at any point of the
    chain.
    """
    if hops < 1:
        raise ValueError("parking lot needs at least one bottleneck hop")
    routers = tuple(f"r{i}" for i in range(hops + 1))
    path_rtt_s = 2.0 * (2.0 * access_delay_s + hops * bottleneck_delay_s)
    buffer_bytes = _chain_buffer_bytes(
        bottleneck_bandwidth_bps, path_rtt_s, buffer_bdp_multiple
    )
    links = tuple(
        LinkSpec(
            routers[i],
            routers[i + 1],
            bottleneck_bandwidth_bps,
            bottleneck_delay_s,
            buffer_bytes=buffer_bytes,
        )
        for i in range(hops)
    )
    return TopologySpec(
        kind="parking-lot",
        routers=routers,
        links=links,
        sender_routers=(routers[0],),
        receiver_routers=routers[1:],
        access_bandwidth_bps=access_bandwidth_bps,
        access_delay_s=access_delay_s,
    )


def star_topology(
    arms: int = 4,
    arm_bandwidth_bps: float = 1_000_000.0,
    arm_delay_s: float = 0.020,
    access_bandwidth_bps: float = 10_000_000.0,
    access_delay_s: float = 0.010,
    buffer_bdp_multiple: float = 2.0,
) -> TopologySpec:
    """A core router with ``arms`` independently-bottlenecked edge routers.

    Senders attach at the core; receivers round-robin over the arms, so each
    arm link is a private bottleneck and every arm router runs its own group
    manager (IGMP or SIGMA).
    """
    if arms < 1:
        raise ValueError("star needs at least one arm")
    arm_names = tuple(f"arm{i + 1}" for i in range(arms))
    path_rtt_s = 2.0 * (2.0 * access_delay_s + arm_delay_s)
    buffer_bytes = _chain_buffer_bytes(arm_bandwidth_bps, path_rtt_s, buffer_bdp_multiple)
    links = tuple(
        LinkSpec("core", arm, arm_bandwidth_bps, arm_delay_s, buffer_bytes=buffer_bytes)
        for arm in arm_names
    )
    return TopologySpec(
        kind="star",
        routers=("core",) + arm_names,
        links=links,
        sender_routers=("core",),
        receiver_routers=arm_names,
        access_bandwidth_bps=access_bandwidth_bps,
        access_delay_s=access_delay_s,
    )


def multi_edge_dumbbell_topology(
    edges: int = 8,
    bottleneck_bandwidth_bps: float = 1_000_000.0,
    bottleneck_delay_s: float = 0.020,
    edge_bandwidth_bps: float = 10_000_000.0,
    edge_delay_s: float = 0.005,
    access_bandwidth_bps: float = 10_000_000.0,
    access_delay_s: float = 0.010,
    buffer_bdp_multiple: float = 2.0,
) -> TopologySpec:
    """A dumbbell whose right side fans out into ``edges`` edge routers.

    Senders attach at ``left``; one shared ``left``–``core`` bottleneck
    carries the session, and ``edges`` fat (non-bottleneck) distribution
    links fan out from ``core`` to the receiver edge routers.  Every edge
    router runs its own group manager, so this is the shape the columnar
    population engine spreads a very large audience over: one packet copy
    crosses the bottleneck, ``edges`` copies leave the core — receivers
    behind each edge still share a single access interface per block.
    """
    if edges < 1:
        raise ValueError("multi-edge dumbbell needs at least one edge router")
    edge_names = tuple(f"edge{i + 1}" for i in range(edges))
    path_rtt_s = 2.0 * (2.0 * access_delay_s + bottleneck_delay_s + edge_delay_s)
    bottleneck_buffer = _chain_buffer_bytes(
        bottleneck_bandwidth_bps, path_rtt_s, buffer_bdp_multiple
    )
    edge_buffer = _chain_buffer_bytes(edge_bandwidth_bps, path_rtt_s, buffer_bdp_multiple)
    links = (
        LinkSpec(
            "left",
            "core",
            bottleneck_bandwidth_bps,
            bottleneck_delay_s,
            buffer_bytes=bottleneck_buffer,
        ),
    ) + tuple(
        LinkSpec("core", edge, edge_bandwidth_bps, edge_delay_s, buffer_bytes=edge_buffer)
        for edge in edge_names
    )
    return TopologySpec(
        kind="multi-edge-dumbbell",
        routers=("left", "core") + edge_names,
        links=links,
        sender_routers=("left",),
        receiver_routers=edge_names,
        access_bandwidth_bps=access_bandwidth_bps,
        access_delay_s=access_delay_s,
    )


def sharded_dumbbell_topology(
    regions: int = 4,
    edges_per_region: int = 4,
    region: Optional[int] = None,
    bottleneck_bandwidth_bps: float = 1_000_000.0,
    bottleneck_delay_s: float = 0.020,
    edge_bandwidth_bps: float = 10_000_000.0,
    edge_delay_s: float = 0.005,
    access_bandwidth_bps: float = 10_000_000.0,
    access_delay_s: float = 0.010,
    buffer_bdp_multiple: float = 2.0,
) -> TopologySpec:
    """``regions`` independently-bottlenecked multi-edge dumbbells, annotated.

    Senders attach at the shared trunk router ``left``.  Each region ``r``
    has its own core router ``core<r>`` behind a private
    ``left``–``core<r>`` bottleneck (the region's *cut link*) fanning out to
    ``edges_per_region`` edge routers ``edge<r>-<e>`` on fat distribution
    links.  Receiver routers are listed region-major (region 1's edges
    first), so round-robin vector-block placement assigns each region a
    contiguous, re-splittable share of the cohort rows — the property the
    region planner in :mod:`repro.experiments.shard` relies on.

    ``region=r`` (1-based) builds only that region's sub-topology — the
    trunk plus region ``r``, with identical router names and link
    parameters — which is how a region worker expresses its share of the
    scenario as an ordinary standalone spec.
    """
    if regions < 1:
        raise ValueError("sharded dumbbell needs at least one region")
    if edges_per_region < 1:
        raise ValueError("sharded dumbbell needs at least one edge per region")
    if region is not None and not 1 <= region <= regions:
        raise ValueError(f"region must be in 1..{regions}, got {region}")
    wanted = range(1, regions + 1) if region is None else (region,)
    path_rtt_s = 2.0 * (2.0 * access_delay_s + bottleneck_delay_s + edge_delay_s)
    bottleneck_buffer = _chain_buffer_bytes(
        bottleneck_bandwidth_bps, path_rtt_s, buffer_bdp_multiple
    )
    edge_buffer = _chain_buffer_bytes(edge_bandwidth_bps, path_rtt_s, buffer_bdp_multiple)
    routers: List[str] = ["left"]
    links: List[LinkSpec] = []
    receiver_routers: List[str] = []
    region_groups: List[Tuple[str, ...]] = []
    for r in wanted:
        core = f"core{r}"
        edges = tuple(f"edge{r}-{e}" for e in range(1, edges_per_region + 1))
        routers.append(core)
        routers.extend(edges)
        links.append(
            LinkSpec(
                "left",
                core,
                bottleneck_bandwidth_bps,
                bottleneck_delay_s,
                buffer_bytes=bottleneck_buffer,
            )
        )
        links.extend(
            LinkSpec(core, edge, edge_bandwidth_bps, edge_delay_s, buffer_bytes=edge_buffer)
            for edge in edges
        )
        receiver_routers.extend(edges)
        region_groups.append((core,) + edges)
    return TopologySpec(
        kind="sharded-dumbbell",
        routers=tuple(routers),
        links=tuple(links),
        sender_routers=("left",),
        receiver_routers=tuple(receiver_routers),
        access_bandwidth_bps=access_bandwidth_bps,
        access_delay_s=access_delay_s,
        regions=tuple(region_groups),
    )


def binary_tree_topology(
    depth: int = 3,
    link_bandwidth_bps: float = 1_000_000.0,
    link_delay_s: float = 0.010,
    access_bandwidth_bps: float = 10_000_000.0,
    access_delay_s: float = 0.010,
    buffer_bdp_multiple: float = 2.0,
) -> TopologySpec:
    """A complete binary tree of routers, ``depth`` levels deep.

    The sender attaches at the root ``t0``; receivers round-robin over the
    ``2**(depth-1)`` leaves.  With uniform link capacities the links nearest
    the root carry the aggregated load and become the bottlenecks, the shape
    a single-source multicast distribution tree stresses.
    """
    if depth < 2:
        raise ValueError("binary tree needs depth >= 2")
    count = 2**depth - 1
    routers = tuple(f"t{i}" for i in range(count))
    path_rtt_s = 2.0 * (2.0 * access_delay_s + depth * link_delay_s)
    buffer_bytes = _chain_buffer_bytes(link_bandwidth_bps, path_rtt_s, buffer_bdp_multiple)
    links = tuple(
        LinkSpec(
            routers[(child - 1) // 2],
            routers[child],
            link_bandwidth_bps,
            link_delay_s,
            buffer_bytes=buffer_bytes,
        )
        for child in range(1, count)
    )
    first_leaf = 2 ** (depth - 1) - 1
    return TopologySpec(
        kind="binary-tree",
        routers=routers,
        links=links,
        sender_routers=(routers[0],),
        receiver_routers=routers[first_leaf:],
        access_bandwidth_bps=access_bandwidth_bps,
        access_delay_s=access_delay_s,
    )


#: Named topology factories addressable from scenario specifications.
TOPOLOGIES: Dict[str, Callable[..., TopologySpec]] = {
    "dumbbell": dumbbell_topology,
    "parking-lot": parking_lot_topology,
    "star": star_topology,
    "multi-edge-dumbbell": multi_edge_dumbbell_topology,
    "sharded-dumbbell": sharded_dumbbell_topology,
    "binary-tree": binary_tree_topology,
}


def build_topology(kind: str, **params) -> TopologySpec:
    """Build the named topology's spec with factory keyword ``params``."""
    try:
        factory = TOPOLOGIES[kind]
    except KeyError as exc:
        raise ValueError(
            f"unknown topology {kind!r}; known: {sorted(TOPOLOGIES)}"
        ) from exc
    return factory(**params)
