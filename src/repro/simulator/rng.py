"""Seeded random-number streams.

Every stochastic decision in the reproduction (FLID increase-signal draws,
DELTA nonces, CBR jitter, misbehaving key guesses) draws from a *named*
stream derived from a single experiment seed.  This gives two properties the
test suite and the benchmark harness rely on:

* **Reproducibility** — the same seed yields bit-identical experiment output,
  so EXPERIMENTS.md numbers can be regenerated exactly.
* **Isolation** — adding a new consumer of randomness (a new session, a new
  protocol feature) does not perturb the draws seen by existing consumers,
  because each consumer owns its own stream.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of independent, deterministically seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is derived from the master seed and the name via
        SHA-256, so streams are statistically independent and stable across
        runs and Python versions.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        stream_seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(stream_seed)
        self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child factory whose streams are independent of the parent's."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def names(self) -> list[str]:
        """Names of the streams created so far (diagnostic helper)."""
        return sorted(self._streams)
