"""Measurement instrumentation.

The paper's figures are all throughput time-series or averages measured at
receivers, plus the overhead ratios of §5.4.  This module provides the
corresponding instruments:

``ThroughputMonitor``
    Records bytes received by one flow into fixed-width time bins and exposes
    the per-bin rate series (the lines of Figures 1, 7, 8(e), 8(g), 8(h)) as
    well as interval averages (the points of Figures 8(a)-(d), 8(f)).

``LinkMonitor``
    Wraps a link's queue statistics to report utilisation and loss rate, used
    by integration tests to validate the simulator substrate itself.

``OverheadAccumulator``
    Accumulates data bits versus DELTA/SIGMA overhead bits so that the
    measured overhead ratios of Figure 9 can be compared with the analytic
    model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .link import Link

__all__ = [
    "ThroughputMonitor",
    "ThroughputSample",
    "LinkMonitor",
    "OverheadAccumulator",
]


@dataclass(frozen=True)
class ThroughputSample:
    """One point of a throughput time-series."""

    time_s: float
    rate_bps: float

    @property
    def rate_kbps(self) -> float:
        """Sample rate in kilobits per second."""
        return self.rate_bps / 1e3


class ThroughputMonitor:
    """Bins received bytes into fixed intervals and reports rates.

    Receivers call :meth:`record` for every delivered packet.  The monitor is
    clock-driven rather than event-driven, and recording is *batched*: bytes
    accumulate in two plain integers for the bin in progress and are flushed
    into the bin table only when time advances past the bin edge (in the
    paper's scenarios, once per slot/second rather than once per packet).
    Readers flush implicitly, so every reported series and average is
    byte-identical to the per-packet bookkeeping it replaced.
    """

    def __init__(self, clock, bin_width_s: float = 1.0, name: str = "") -> None:
        if bin_width_s <= 0:
            raise ValueError(f"bin width must be positive (got {bin_width_s})")
        self._clock = clock
        self.bin_width_s = bin_width_s
        self.name = name
        self._bins: dict[int, int] = {}
        #: Bin currently accumulating (-1 before the first record).
        self._open_index = -1
        self._open_bytes = 0
        self.total_bytes = 0
        self.total_packets = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    # ------------------------------------------------------------------
    def record(self, nbytes: int, time_s: Optional[float] = None) -> None:
        """Account ``nbytes`` received at ``time_s`` (defaults to now)."""
        if nbytes < 0:
            raise ValueError("cannot record a negative byte count")
        t = self._clock.now if time_s is None else time_s
        index = int(t / self.bin_width_s)
        if index == self._open_index:
            self._open_bytes += nbytes
        elif index > self._open_index:
            self._flush()
            self._open_index = index
            self._open_bytes = nbytes
        else:
            # Out-of-order explicit timestamp: account directly to its bin.
            bins = self._bins
            bins[index] = bins.get(index, 0) + nbytes
        self.total_bytes += nbytes
        self.total_packets += 1
        if self.first_time is None:
            self.first_time = t
        self.last_time = t

    def _flush(self) -> None:
        """Fold the open accumulator into the bin table (idempotent)."""
        if self._open_index >= 0:
            bins = self._bins
            index = self._open_index
            bins[index] = bins.get(index, 0) + self._open_bytes
            self._open_index = -1
            self._open_bytes = 0

    # ------------------------------------------------------------------
    def series(self, end_time_s: Optional[float] = None) -> List[ThroughputSample]:
        """Per-bin throughput samples from t=0 to ``end_time_s`` (or last bin)."""
        self._flush()
        if not self._bins and end_time_s is None:
            return []
        last_bin = max(self._bins) if self._bins else 0
        if end_time_s is not None:
            last_bin = max(last_bin, int(math.ceil(end_time_s / self.bin_width_s)) - 1)
        samples = []
        for index in range(0, last_bin + 1):
            nbytes = self._bins.get(index, 0)
            rate = nbytes * 8.0 / self.bin_width_s
            samples.append(ThroughputSample(time_s=(index + 1) * self.bin_width_s, rate_bps=rate))
        return samples

    def smoothed_series(
        self, window_bins: int = 5, end_time_s: Optional[float] = None
    ) -> List[ThroughputSample]:
        """Moving-average series, matching the visual smoothing of the paper's plots."""
        raw = self.series(end_time_s)
        if window_bins <= 1 or not raw:
            return raw
        smoothed = []
        for i, sample in enumerate(raw):
            lo = max(0, i - window_bins + 1)
            window = raw[lo : i + 1]
            rate = sum(s.rate_bps for s in window) / len(window)
            smoothed.append(ThroughputSample(time_s=sample.time_s, rate_bps=rate))
        return smoothed

    def average_rate_bps(
        self, start_s: float = 0.0, end_s: Optional[float] = None
    ) -> float:
        """Average throughput over [start_s, end_s] in bits per second."""
        self._flush()
        if end_s is None:
            end_s = (max(self._bins) + 1) * self.bin_width_s if self._bins else start_s
        if end_s <= start_s:
            return 0.0
        total = 0
        for index, nbytes in self._bins.items():
            bin_start = index * self.bin_width_s
            bin_end = bin_start + self.bin_width_s
            overlap = min(bin_end, end_s) - max(bin_start, start_s)
            if overlap <= 0:
                continue
            total += nbytes * (overlap / self.bin_width_s)
        return total * 8.0 / (end_s - start_s)

    def average_rate_kbps(self, start_s: float = 0.0, end_s: Optional[float] = None) -> float:
        """Average throughput over [start_s, end_s] in kilobits per second."""
        return self.average_rate_bps(start_s, end_s) / 1e3


class LinkMonitor:
    """Utilisation and loss statistics for one link over an interval."""

    def __init__(self, link: Link, clock) -> None:
        self.link = link
        self._clock = clock
        self._start_time = clock.now
        self._start_tx_bytes = link.stats.transmitted_bytes
        self._start_drops = link.queue.stats.dropped_packets
        self._start_enqueued = link.queue.stats.enqueued_packets

    def utilisation(self) -> float:
        """Fraction of the link capacity used since the monitor was created."""
        elapsed = self._clock.now - self._start_time
        if elapsed <= 0:
            return 0.0
        sent_bits = (self.link.stats.transmitted_bytes - self._start_tx_bytes) * 8
        return sent_bits / (self.link.bandwidth_bps * elapsed)

    def loss_rate(self) -> float:
        """Fraction of packets offered to the queue that were dropped."""
        drops = self.link.queue.stats.dropped_packets - self._start_drops
        accepted = self.link.queue.stats.enqueued_packets - self._start_enqueued
        offered = drops + accepted
        return drops / offered if offered else 0.0


class OverheadAccumulator:
    """Tracks data bits versus protection-overhead bits (Figure 9).

    DELTA overhead is accumulated per data packet (component + decrease
    fields); SIGMA overhead is accumulated per special control packet.  The
    ratios mirror O_delta and O_sigma from §5.4.
    """

    def __init__(self) -> None:
        self.data_bits = 0
        self.delta_bits = 0
        self.sigma_bits = 0

    def record_data_packet(self, payload_bits: int, delta_bits: int = 0) -> None:
        """Account one data packet and its embedded DELTA field bits."""
        self.data_bits += payload_bits
        self.delta_bits += delta_bits

    def record_sigma_packet(self, total_bits: int) -> None:
        """Account one SIGMA special packet (its full wire size is overhead)."""
        self.sigma_bits += total_bits

    @property
    def delta_overhead(self) -> float:
        """Ratio of DELTA bits to data bits (0.0 when no data yet)."""
        return self.delta_bits / self.data_bits if self.data_bits else 0.0

    @property
    def sigma_overhead(self) -> float:
        """Ratio of SIGMA bits to data bits (0.0 when no data yet)."""
        return self.sigma_bits / self.data_bits if self.data_bits else 0.0

    def as_percentages(self) -> Tuple[float, float]:
        """(DELTA %, SIGMA %) — the y-axis of Figure 9."""
        return self.delta_overhead * 100.0, self.sigma_overhead * 100.0


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index of a set of throughputs (1.0 = perfectly fair)."""
    values = [v for v in values]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)
