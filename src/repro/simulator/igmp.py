"""IGMP-style group management (the unprotected baseline).

The Internet Group Management Protocol lets any receiver join any multicast
group whose address it knows; the edge router honours every membership
report.  This is exactly the weakness the paper exploits in its motivating
experiment (Figure 1): a misbehaving FLID-DL receiver simply IGMP-joins every
group of its session and inflates its subscription.

Two classes are provided:

``IgmpGroupManager``
    Lives at an edge router.  Grants every join/leave request it receives on
    a local interface by updating the network-wide
    :class:`~repro.simulator.multicast.MulticastRoutingService`.

``IgmpHostInterface``
    Lives at a host; sends membership reports to the host's edge router over
    the control channel.  Multicast receivers (well-behaved or misbehaving)
    call :meth:`join` and :meth:`leave` on it.

SIGMA (:mod:`repro.core.sigma`) replaces ``IgmpGroupManager`` at protected
edge routers while keeping the same host-facing message surface, which is
how the paper describes incremental deployment (§3.2.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from .address import GroupAddress
from .multicast import MulticastRoutingService
from .node import Host, Router

__all__ = ["IgmpGroupManager", "IgmpHostInterface", "install_igmp"]


class IgmpGroupManager:
    """Edge-router side of IGMP: honour every join and leave."""

    #: Approximate size of an IGMP membership report on the wire, used only
    #: for control-overhead accounting.
    REPORT_SIZE_BYTES = 32

    def __init__(self, router: Router, multicast: MulticastRoutingService) -> None:
        self.router = router
        self.multicast = multicast
        self.joins_handled = 0
        self.leaves_handled = 0
        #: Per-host view of granted memberships (for tests / introspection).
        self.memberships: Dict[str, Set[int]] = {}
        router.group_manager = self

    # ------------------------------------------------------------------
    def handle_join(
        self,
        host: Host,
        group: GroupAddress,
        members: Optional[int] = None,
        enact: bool = True,
    ) -> None:
        """Grant a membership report unconditionally.

        A join from a cohort host stands for the joins of its whole
        population, so the counter advances by ``members`` — the weight the
        sending interface stamped on the report at *send* time (falling
        back to the host's population for direct calls), so a report in
        flight across a churn boundary still books the membership it
        represented when sent.

        ``enact=False`` marks a *churn report*: ``members`` new cohort
        members adopted a group the interface already receives.  Only the
        join ledger advances — the forwarding state is governed by the
        cohort's own ordinary membership reports.
        """
        if members is None:
            members = getattr(host, "population", 1)
        self.joins_handled += members
        if enact:
            self.memberships.setdefault(host.name, set()).add(int(group))
            self.multicast.join(host, group)

    def handle_leave(
        self,
        host: Host,
        group: GroupAddress,
        members: Optional[int] = None,
        enact: bool = True,
    ) -> None:
        """Process a leave report (send-time weighted like joins).

        ``enact=False`` marks a churn report: ``members`` cohort members
        left a group the remaining cohort keeps receiving, so only the
        ledger moves — the interface's forwarding state is untouched.
        """
        if members is None:
            members = getattr(host, "population", 1)
        self.leaves_handled += members
        if enact:
            self.memberships.setdefault(host.name, set()).discard(int(group))
            self.multicast.leave(host, group)

    def handle_control_packet(self, packet) -> None:
        """IGMP ignores SIGMA special packets (incremental-deployment case)."""
        return None


class IgmpHostInterface:
    """Host side of IGMP: emit join/leave reports toward the edge router."""

    def __init__(self, host: Host) -> None:
        if host.edge_router is None or host.control is None:
            raise RuntimeError(
                f"host {host.name} is not attached to an edge router; "
                "attach it before creating an IGMP interface"
            )
        self.host = host
        self.joined: Set[int] = set()

    # ------------------------------------------------------------------
    def join(self, group: GroupAddress, members: Optional[int] = None) -> None:
        """Send a membership report for ``group``.

        With ``members`` set the report is a cohort *churn report*: it books
        ``members`` additional members adopting the group (arrival
        accounting) without changing the interface's own membership — see
        :meth:`IgmpGroupManager.handle_join`.
        """
        if members is None:
            self.joined.add(int(group))
        self._send_report(self._manager().handle_join, group, members)

    def leave(self, group: GroupAddress, members: Optional[int] = None) -> None:
        """Send a leave report for ``group`` (churn report with ``members``)."""
        if members is None:
            self.joined.discard(int(group))
        self._send_report(self._manager().handle_leave, group, members)

    def _send_report(self, handler, group: GroupAddress, members: Optional[int]) -> None:
        """One report over the control channel.

        Ordinary reports stamp the interface's population at *send* time
        (so a churn boundary crossed in flight cannot re-weight them, the
        same send-time semantics SIGMA messages have always had); churn
        reports carry their explicit member delta and are accounting-only.
        """
        if members is None:
            weight = getattr(self.host, "population", 1)
            args = (self.host, group, weight, True)
        else:
            args = (self.host, group, members, False)
        self.host.control.send(
            handler, *args, size_bytes=IgmpGroupManager.REPORT_SIZE_BYTES
        )

    def leave_all(self) -> None:
        """Send a leave report for every currently joined group."""
        for value in list(self.joined):
            self.leave(GroupAddress(value))

    # ------------------------------------------------------------------
    def _manager(self):
        manager = self.host.edge_router.group_manager
        if manager is None:
            raise RuntimeError(
                f"edge router {self.host.edge_router.name} has no group manager"
            )
        return manager


def install_igmp(router: Router, multicast: MulticastRoutingService) -> IgmpGroupManager:
    """Attach an IGMP group manager to an edge router and return it."""
    return IgmpGroupManager(router, multicast)
