"""IGMP-style group management (the unprotected baseline).

The Internet Group Management Protocol lets any receiver join any multicast
group whose address it knows; the edge router honours every membership
report.  This is exactly the weakness the paper exploits in its motivating
experiment (Figure 1): a misbehaving FLID-DL receiver simply IGMP-joins every
group of its session and inflates its subscription.

Two classes are provided:

``IgmpGroupManager``
    Lives at an edge router.  Grants every join/leave request it receives on
    a local interface by updating the network-wide
    :class:`~repro.simulator.multicast.MulticastRoutingService`.

``IgmpHostInterface``
    Lives at a host; sends membership reports to the host's edge router over
    the control channel.  Multicast receivers (well-behaved or misbehaving)
    call :meth:`join` and :meth:`leave` on it.

SIGMA (:mod:`repro.core.sigma`) replaces ``IgmpGroupManager`` at protected
edge routers while keeping the same host-facing message surface, which is
how the paper describes incremental deployment (§3.2.3).
"""

from __future__ import annotations

from typing import Dict, Set

from .address import GroupAddress
from .multicast import MulticastRoutingService
from .node import Host, Router

__all__ = ["IgmpGroupManager", "IgmpHostInterface", "install_igmp"]


class IgmpGroupManager:
    """Edge-router side of IGMP: honour every join and leave."""

    #: Approximate size of an IGMP membership report on the wire, used only
    #: for control-overhead accounting.
    REPORT_SIZE_BYTES = 32

    def __init__(self, router: Router, multicast: MulticastRoutingService) -> None:
        self.router = router
        self.multicast = multicast
        self.joins_handled = 0
        self.leaves_handled = 0
        #: Per-host view of granted memberships (for tests / introspection).
        self.memberships: Dict[str, Set[int]] = {}
        router.group_manager = self

    # ------------------------------------------------------------------
    def handle_join(self, host: Host, group: GroupAddress) -> None:
        """Grant a membership report unconditionally.

        A join from a cohort host stands for the joins of its whole
        population, so the counter advances by ``host.population`` — the
        number a matching set of individual hosts would have produced —
        while the grant itself stays one membership update.
        """
        self.joins_handled += getattr(host, "population", 1)
        self.memberships.setdefault(host.name, set()).add(int(group))
        self.multicast.join(host, group)

    def handle_leave(self, host: Host, group: GroupAddress) -> None:
        """Process a leave report (population-weighted like joins)."""
        self.leaves_handled += getattr(host, "population", 1)
        self.memberships.setdefault(host.name, set()).discard(int(group))
        self.multicast.leave(host, group)

    def handle_control_packet(self, packet) -> None:
        """IGMP ignores SIGMA special packets (incremental-deployment case)."""
        return None


class IgmpHostInterface:
    """Host side of IGMP: emit join/leave reports toward the edge router."""

    def __init__(self, host: Host) -> None:
        if host.edge_router is None or host.control is None:
            raise RuntimeError(
                f"host {host.name} is not attached to an edge router; "
                "attach it before creating an IGMP interface"
            )
        self.host = host
        self.joined: Set[int] = set()

    # ------------------------------------------------------------------
    def join(self, group: GroupAddress) -> None:
        """Send a membership report for ``group``."""
        manager = self._manager()
        self.joined.add(int(group))
        self.host.control.send(
            manager.handle_join,
            self.host,
            group,
            size_bytes=IgmpGroupManager.REPORT_SIZE_BYTES,
        )

    def leave(self, group: GroupAddress) -> None:
        """Send a leave report for ``group``."""
        manager = self._manager()
        self.joined.discard(int(group))
        self.host.control.send(
            manager.handle_leave,
            self.host,
            group,
            size_bytes=IgmpGroupManager.REPORT_SIZE_BYTES,
        )

    def leave_all(self) -> None:
        """Send a leave report for every currently joined group."""
        for value in list(self.joined):
            self.leave(GroupAddress(value))

    # ------------------------------------------------------------------
    def _manager(self):
        manager = self.host.edge_router.group_manager
        if manager is None:
            raise RuntimeError(
                f"edge router {self.host.edge_router.name} has no group manager"
            )
        return manager


def install_igmp(router: Router, multicast: MulticastRoutingService) -> IgmpGroupManager:
    """Attach an IGMP group manager to an edge router and return it."""
    return IgmpGroupManager(router, multicast)
