"""Discrete-event simulation engine.

The engine is the substrate that replaces NS-2 in this reproduction.  It is
an event-heap simulator: callers schedule *events* (callbacks with arguments)
at absolute or relative simulated times and the engine executes them in time
order.  All other subsystems (links, transport protocols, multicast
congestion control, SIGMA edge routers) are built on top of this module.

Design notes
------------
* Simulated time is a ``float`` number of seconds, starting at ``0.0``.
* Events scheduled for the same time are executed in FIFO order of
  scheduling (a monotonically increasing sequence number breaks ties), which
  keeps runs fully deterministic.
* The scheduler keeps **two lanes** that share one sequence counter and are
  merged into a single total order at execution time:

  - a *fast lane* (:meth:`Simulator.call_after` / :meth:`Simulator.call_at`)
    backed by the C ``heapq`` over plain tuples.  Fast-lane events cannot be
    cancelled and return no handle; this is where the per-packet hot path
    (link serialization, delivery, control-channel messages) lives, because
    tuple keys keep every heap comparison in C.
  - a *cancellable lane* (:meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`) backed by an **indexed binary heap**:
    every :class:`Event` tracks its heap position, so
    :meth:`Event.cancel` removes it from the heap *eagerly* in O(log n).
    There are no lazy tombstones anywhere — the heap never retains
    cancelled events, so its size is exactly the number of live events even
    under heavy timer churn (flapping receivers, per-ACK RTO restarts).

* Recurring activities are provided by :class:`PeriodicTimer`.  Timers with
  the same interval that fire at the same instant (FLID slot timers, SIGMA
  key distribution, monitor flushes at slot boundaries) are *coalesced*
  transparently into one shared wakeup per period: the engine keeps one heap
  event per ``(next fire time, interval)`` group and runs the member
  callbacks in registration order, which matches the FIFO order the separate
  events would have had.

The engine deliberately knows nothing about packets, links or protocols; it
only runs callbacks.  This keeps every higher layer unit-testable with a
bare engine.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Event",
    "Simulator",
    "PeriodicTimer",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine.

    Examples include scheduling an event in the past or constructing a
    :class:`PeriodicTimer` with a non-positive interval.
    """


class Event:
    """A single scheduled, cancellable callback.

    Instances are returned by :meth:`Simulator.schedule` and can be used to
    cancel the event before it fires.  Events order by ``(time, seq)`` so
    execution is stable and deterministic.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback runs.
    seq:
        Global scheduling sequence number; breaks ties between events that
        share a ``time`` (FIFO order of scheduling).
    callback, args, kwargs:
        The callable and the arguments it will receive.
    cancelled:
        True once :meth:`cancel` has been called.  A cancelled event is no
        longer in the heap; cancelling an event that already executed is a
        harmless no-op.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "_index", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        kwargs: Optional[dict] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self._index = -1
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Cancel the event, removing it from the heap eagerly (O(log n))."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None and self._index >= 0:
            sim._cancellable.remove(self)
        self._sim = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else ("pending" if self._index >= 0 else "done")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"


class _IndexedHeap:
    """Binary min-heap of :class:`Event` objects with position tracking.

    Every contained event stores its heap index in ``event._index``, which
    makes :meth:`remove` — and therefore :meth:`Event.cancel` — an O(log n)
    sift instead of a lazy tombstone.  Ordering is ``(time, seq)``.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Event] = []

    def __len__(self) -> int:
        return len(self._heap)

    def peek(self) -> Optional[Event]:
        """The minimum event without removing it (None when empty)."""
        heap = self._heap
        return heap[0] if heap else None

    def push(self, event: Event) -> None:
        """Insert ``event`` and record its position."""
        heap = self._heap
        index = len(heap)
        heap.append(event)
        self._sift_up(event, index)

    def pop(self) -> Event:
        """Remove and return the minimum event."""
        heap = self._heap
        root = heap[0]
        root._index = -1
        last = heap.pop()
        if heap and last is not root:
            self._sift_down(last, 0)
        return root

    def remove(self, event: Event) -> bool:
        """Remove ``event`` from an arbitrary position; True when present."""
        index = event._index
        if index < 0:
            return False
        event._index = -1
        heap = self._heap
        last = heap.pop()
        if last is event or index >= len(heap):
            return True
        # Re-seat the displaced tail element; it may need to move either way.
        time, seq = last.time, last.seq
        if index > 0:
            parent = heap[(index - 1) >> 1]
            if time < parent.time or (time == parent.time and seq < parent.seq):
                self._sift_up(last, index)
                return True
        self._sift_down(last, index)
        return True

    def clear(self) -> None:
        """Drop every event, detaching their heap positions."""
        for event in self._heap:
            event._index = -1
            event._sim = None
        self._heap.clear()

    # ------------------------------------------------------------------
    def _sift_up(self, event: Event, index: int) -> None:
        heap = self._heap
        time, seq = event.time, event.seq
        while index > 0:
            parent_index = (index - 1) >> 1
            parent = heap[parent_index]
            if time < parent.time or (time == parent.time and seq < parent.seq):
                heap[index] = parent
                parent._index = index
                index = parent_index
            else:
                break
        heap[index] = event
        event._index = index

    def _sift_down(self, event: Event, index: int) -> None:
        heap = self._heap
        size = len(heap)
        time, seq = event.time, event.seq
        while True:
            child_index = 2 * index + 1
            if child_index >= size:
                break
            child = heap[child_index]
            right_index = child_index + 1
            if right_index < size:
                right = heap[right_index]
                if right.time < child.time or (
                    right.time == child.time and right.seq < child.seq
                ):
                    child = right
                    child_index = right_index
            if child.time < time or (child.time == time and child.seq < seq):
                heap[index] = child
                child._index = index
                index = child_index
            else:
                break
        heap[index] = event
        event._index = index


class Simulator:
    """Two-lane event-heap discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, my_callback, arg1, arg2)
        sim.run(until=10.0)

    The simulator can be run in increments: successive calls to
    :meth:`run` continue from the current simulated time.  Use
    :meth:`schedule` when the caller may need to cancel the event (it
    returns an :class:`Event` handle) and :meth:`call_after` on hot paths
    that never cancel (it is substantially faster and returns nothing).
    """

    def __init__(self) -> None:
        #: Fast lane: (time, seq, callback, args) tuples ordered by C heapq.
        self._fast: List[Tuple[float, int, Callable[..., None], tuple]] = []
        #: Cancellable lane: indexed heap of Event objects.
        self._cancellable = _IndexedHeap()
        #: Coalesced periodic-timer groups keyed by (next fire time, interval).
        self._timer_groups: Dict[Tuple[float, float], "_TimerGroup"] = {}
        self._seq = 0
        self._now = 0.0
        self._stopped = False
        self._events_executed = 0

    # ------------------------------------------------------------------
    # time & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (useful in tests and benches)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live events in the heaps.

        Cancelled events are removed eagerly, so — unlike a tombstone
        scheduler — this is exactly the heap memory footprint.
        """
        return len(self._fast) + len(self._cancellable)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled.  ``delay`` must
        be non-negative; a zero delay runs the callback later in the same
        simulated instant (after currently executing code returns).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now}): time is in the past"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, kwargs or None)
        event._sim = self
        self._cancellable.push(event)
        return event

    def call_after(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast-lane :meth:`schedule`: no handle, no kwargs, no cancellation.

        This is the per-packet scheduling primitive: link serialization and
        propagation, control-channel deliveries and transmit-loop wakeups go
        through here.  Events are plain tuples in a C-ordered heap, so a
        fast-lane event costs roughly a quarter of a cancellable one.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._fast, (self._now + delay, seq, callback, args))

    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast-lane :meth:`schedule_at`: no handle, no kwargs, no cancellation."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now}): time is in the past"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._fast, (time, seq, callback, args))

    # ------------------------------------------------------------------
    # periodic-timer coalescing (used by PeriodicTimer)
    # ------------------------------------------------------------------
    def _timer_group_join(self, timer: "PeriodicTimer", fire_time: float) -> None:
        """Register ``timer`` in the wakeup group firing at ``fire_time``."""
        key = (fire_time, timer._interval)
        group = self._timer_groups.get(key)
        if group is None:
            group = _TimerGroup(self, fire_time, timer._interval)
            self._timer_groups[key] = group
            group.event = self.schedule_at(fire_time, group._fire)
        group.members.append(timer)
        timer._group = group

    def _timer_group_leave(self, timer: "PeriodicTimer") -> None:
        """Remove ``timer`` from its group, cancelling an empty group's wakeup."""
        group = timer._group
        timer._group = None
        if group is None:
            return
        try:
            group.members.remove(timer)
        except ValueError:  # already detached by a firing group
            return
        if not group.members and not group.firing:
            if group.event is not None:
                group.event.cancel()
                group.event = None
            self._timer_groups.pop((group.next_time, group.interval), None)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Execute the single next pending event.

        Returns the event executed — materialising a handle for fast-lane
        events — or ``None`` if both lanes are empty.  :meth:`run` is the
        efficient bulk driver; ``step`` exists for tests and debugging.
        """
        fast = self._fast
        head = self._cancellable.peek()
        if fast:
            entry = fast[0]
            if head is None or (entry[0], entry[1]) < (head.time, head.seq):
                time, seq, callback, args = heapq.heappop(fast)
                self._now = time
                callback(*args)
                self._events_executed += 1
                done = Event(time, seq, callback, args)
                return done
        if head is None:
            return None
        event = self._cancellable.pop()
        event._sim = None
        self._now = event.time
        if event.kwargs:
            event.callback(*event.args, **event.kwargs)
        else:
            event.callback(*event.args)
        self._events_executed += 1
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        inclusive: bool = True,
    ) -> None:
        """Run events until the queues drain, ``until`` passes, or ``max_events``.

        Parameters
        ----------
        until:
            Absolute simulated time at which to stop.  Events at exactly
            ``until`` are executed; later events remain queued.  When the
            queues drain before ``until``, the clock is advanced to
            ``until`` so periodic post-processing sees a consistent end time.
        max_events:
            Optional hard cap on the number of events to execute, useful as
            a safety net in tests.
        inclusive:
            When ``False``, events scheduled at exactly ``until`` are left
            queued instead of executed — the slot-barrier cut used by
            checkpointing: everything strictly before the barrier runs, the
            clock advances to the barrier, and the barrier's own events fire
            first on the next :meth:`run`.
        """
        self._stopped = False
        fast = self._fast
        cancellable = self._cancellable
        cancellable_heap = cancellable._heap
        heappop = heapq.heappop
        executed = 0
        counted = max_events is not None
        while not self._stopped:
            if counted and executed >= max_events:
                break
            head = cancellable_heap[0] if cancellable_heap else None
            if fast:
                entry = fast[0]
                time = entry[0]
                if head is not None and (
                    head.time < time or (head.time == time and head.seq < entry[1])
                ):
                    entry = None
                    time = head.time
            elif head is not None:
                entry = None
                time = head.time
            else:
                break
            if until is not None and (time > until or (not inclusive and time >= until)):
                break
            if entry is not None:
                heappop(fast)
                self._now = time
                entry[2](*entry[3])
            else:
                event = cancellable.pop()
                event._sim = None
                self._now = time
                if event.kwargs:
                    event.callback(*event.args, **event.kwargs)
                else:
                    event.callback(*event.args)
            self._events_executed += 1
            executed += 1
        if until is not None and self._now < until and not self._stopped:
            self._now = until

    def stop(self) -> None:
        """Stop the current :meth:`run` loop after the executing event."""
        self._stopped = True

    def clear(self) -> None:
        """Drop all pending events (both lanes) without executing them."""
        self._fast.clear()
        self._cancellable.clear()
        self._timer_groups.clear()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def drain_iter(self) -> Iterator[Event]:
        """Iterate over events as they are executed (debug/test helper)."""
        while True:
            event = self.step()
            if event is None:
                return
            yield event


class _TimerGroup:
    """One shared wakeup for every :class:`PeriodicTimer` on the same beat.

    A group fires all member callbacks in registration order — the same
    FIFO order the members' separate events would have had — then
    reschedules itself one interval ahead.  Members whose interval changed
    (via :meth:`PeriodicTimer.reschedule`) migrate to a matching group at
    their next fire time.
    """

    __slots__ = ("sim", "next_time", "interval", "members", "event", "firing")

    def __init__(self, sim: Simulator, next_time: float, interval: float) -> None:
        self.sim = sim
        self.next_time = next_time
        self.interval = interval
        self.members: List["PeriodicTimer"] = []
        self.event: Optional[Event] = None
        self.firing = False

    def _fire(self) -> None:
        sim = self.sim
        sim._timer_groups.pop((self.next_time, self.interval), None)
        self.event = None
        self.firing = True
        survivors: List["PeriodicTimer"] = []
        for timer in list(self.members):
            if not timer._running or timer._group is not self:
                continue
            timer.fired += 1
            timer._callback()
            if not timer._running or timer._group is not self:
                continue
            if timer._interval == self.interval:
                survivors.append(timer)
            else:
                # Interval changed mid-flight: migrate at the new cadence.
                timer._group = None
                sim._timer_group_join(timer, sim._now + timer._interval)
        self.firing = False
        self.members = []
        if not survivors:
            return
        next_time = sim._now + self.interval
        key = (next_time, self.interval)
        existing = sim._timer_groups.get(key)
        if existing is not None:
            # A timer started during this firing already claimed the beat;
            # survivors keep their earlier registration order ahead of it.
            existing.members[0:0] = survivors
            for timer in survivors:
                timer._group = existing
            return
        self.next_time = next_time
        self.members = survivors
        for timer in survivors:
            timer._group = self
        sim._timer_groups[key] = self
        self.event = sim.schedule_at(next_time, self._fire)


class PeriodicTimer:
    """Fires a callback every ``interval`` seconds until stopped.

    The first firing happens ``interval`` seconds after :meth:`start`
    (or after ``first_delay`` when supplied).  The callback receives no
    arguments; bind state with ``functools.partial`` or a closure.

    Timers sharing an interval and a beat (for example the per-receiver
    FLID slot-evaluation timers, which all fire at ``slot + guard``) are
    coalesced by the engine into one heap event per beat; see
    :class:`_TimerGroup`.  Stopping a timer detaches it from its group
    eagerly, so no cancelled work lingers in the heap.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        first_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive (got {interval})")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._first_delay = interval if first_delay is None else first_delay
        self._group: Optional[_TimerGroup] = None
        self._running = False
        #: Number of times the callback has fired.
        self.fired = 0

    @property
    def running(self) -> bool:
        """True while the timer is scheduled to keep firing."""
        return self._running

    @property
    def interval(self) -> float:
        """Current firing interval in simulated seconds."""
        return self._interval

    def start(self) -> None:
        """Begin firing; idempotent while running."""
        if self._running:
            return
        self._running = True
        self._sim._timer_group_join(self, self._sim.now + self._first_delay)

    def stop(self) -> None:
        """Stop firing and leave the shared wakeup group eagerly."""
        self._running = False
        if self._group is not None:
            self._sim._timer_group_leave(self)

    def reschedule(self, interval: float) -> None:
        """Change the firing interval, effective from the next firing."""
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive (got {interval})")
        self._interval = interval
