"""Discrete-event simulation engine.

The engine is the substrate that replaces NS-2 in this reproduction.  It is a
classic event-heap simulator: callers schedule *events* (callbacks with
arguments) at absolute or relative simulated times and the engine executes
them in time order.  All other subsystems (links, transport protocols,
multicast congestion control, SIGMA edge routers) are built on top of this
module.

Design notes
------------
* Simulated time is a ``float`` number of seconds, starting at ``0.0``.
* Events scheduled for the same time are executed in FIFO order of
  scheduling (a monotonically increasing sequence number breaks ties), which
  keeps runs fully deterministic.
* Events can be cancelled; cancellation is O(1) (the event is flagged and
  skipped when popped), which is the standard approach for timer-heavy
  protocols such as TCP retransmission timers.
* Recurring activities (periodic timers) are provided by
  :class:`PeriodicTimer` as a convenience wrapper.

The engine deliberately knows nothing about packets, links or protocols; it
only runs callbacks.  This keeps every higher layer unit-testable with a
bare engine.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "Event",
    "Simulator",
    "PeriodicTimer",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine.

    Examples include scheduling an event in the past or running a simulator
    that has already been stopped and not reset.
    """


@dataclass(order=False)
class Event:
    """A single scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be used to
    cancel the event before it fires.  Events compare by ``(time, seq)`` so
    the heap is stable and deterministic.
    """

    time: float
    seq: int
    callback: Callable[..., None]
    args: tuple = field(default_factory=tuple)
    kwargs: dict = field(default_factory=dict)
    cancelled: bool = False

    def cancel(self) -> None:
        """Cancel the event; it will be skipped when its time arrives."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"


class Simulator:
    """Event-heap discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, my_callback, arg1, arg2)
        sim.run(until=10.0)

    The simulator can be run in increments: successive calls to
    :meth:`run` continue from the current simulated time.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._events_executed = 0

    # ------------------------------------------------------------------
    # time & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (useful in tests and benches)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled.  ``delay`` must
        be non-negative; a zero delay runs the callback later in the same
        simulated instant (after currently executing code returns).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now}): time is in the past"
            )
        event = Event(time, next(self._seq), callback, args, kwargs)
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Execute the single next pending event.

        Returns the event executed, or ``None`` if the queue is empty.
        Cancelled events are discarded silently.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args, **event.kwargs)
            self._events_executed += 1
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or ``max_events``.

        Parameters
        ----------
        until:
            Absolute simulated time at which to stop.  Events at exactly
            ``until`` are executed; later events remain queued.  When the
            queue drains before ``until``, the clock is advanced to ``until``
            so periodic post-processing sees a consistent end time.
        max_events:
            Optional hard cap on the number of events to execute, useful as a
            safety net in tests.
        """
        self._stopped = False
        executed = 0
        while self._queue and not self._stopped:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        if until is not None and self._now < until and not self._stopped:
            self._now = until

    def stop(self) -> None:
        """Stop the current :meth:`run` loop after the executing event."""
        self._stopped = True

    def clear(self) -> None:
        """Drop all pending events without executing them."""
        self._queue.clear()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def drain_iter(self) -> Iterator[Event]:
        """Iterate over events as they are executed (debug/test helper)."""
        while True:
            event = self.step()
            if event is None:
                return
            yield event


class PeriodicTimer:
    """Fires a callback every ``interval`` seconds until stopped.

    The first firing happens ``interval`` seconds after :meth:`start`
    (or after ``first_delay`` when supplied).  The callback receives no
    arguments; bind state with ``functools.partial`` or a closure.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        first_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive (got {interval})")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._first_delay = interval if first_delay is None else first_delay
        self._event: Optional[Event] = None
        self._running = False
        self.fired = 0

    @property
    def running(self) -> bool:
        return self._running

    @property
    def interval(self) -> float:
        return self._interval

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._event = self._sim.schedule(self._first_delay, self._fire)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def reschedule(self, interval: float) -> None:
        """Change the firing interval, effective from the next firing."""
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive (got {interval})")
        self._interval = interval

    def _fire(self) -> None:
        if not self._running:
            return
        self.fired += 1
        self._callback()
        if self._running:
            self._event = self._sim.schedule(self._interval, self._fire)
