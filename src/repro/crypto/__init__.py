"""Cryptographic substrate for DELTA and SIGMA.

Nonces, the XOR key algebra used by the layered and replicated DELTA
instantiations, and Shamir's (k, n) threshold sharing used by the
threshold-protocol variant.  The values are simulation-grade (deterministic
when seeded), not production cryptography; what matters for the reproduction
is the *reconstructability* semantics, which is preserved exactly.
"""

from .nonce import DEFAULT_KEY_BITS, NonceGenerator
from .shamir import DEFAULT_PRIME, ShamirSecretSharing, Share
from .xorkeys import KeyAccumulator, combine_levels, keys_equal, xor_fold

__all__ = [
    "DEFAULT_KEY_BITS",
    "NonceGenerator",
    "DEFAULT_PRIME",
    "ShamirSecretSharing",
    "Share",
    "KeyAccumulator",
    "combine_levels",
    "keys_equal",
    "xor_fold",
]
