"""XOR key algebra.

The DELTA instantiations of §3.1.1 and the replicated variant of §3.1.2
define every key as the XOR of a set of per-packet nonces: the *top key* of
level ``g`` is the XOR of the component fields of all packets of groups
``1..g`` (Equation 3), the *increase key* of group ``m`` is the XOR of the
components of groups ``1..m-1`` (Equation 5), and the replicated-protocol
keys use per-group XOR sums (Equation 6).

This module provides the small, well-tested algebra those definitions need:
folding a sequence of components into a key, incremental accumulators for
senders that learn the packet count only at the end of a slot, and helpers
for validating widths.  XOR is self-inverse and associative, which is what
gives DELTA its "must have received every packet" semantics: missing any one
component leaves the receiver with a value that is uniformly random relative
to the true key.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable, Sequence

__all__ = ["xor_fold", "KeyAccumulator", "combine_levels", "keys_equal"]


def xor_fold(components: Iterable[int]) -> int:
    """XOR all ``components`` together; the empty sequence folds to 0."""
    return reduce(lambda a, b: a ^ b, components, 0)


def combine_levels(per_level_components: Sequence[Sequence[int]], level: int) -> int:
    """XOR every component of levels ``1..level`` (1-indexed, Equation 3).

    ``per_level_components[j-1]`` holds the component fields of group ``j``.
    """
    if not (1 <= level <= len(per_level_components)):
        raise ValueError(
            f"level {level} out of range 1..{len(per_level_components)}"
        )
    value = 0
    for group_components in per_level_components[:level]:
        value ^= xor_fold(group_components)
    return value


def keys_equal(a: int, b: int) -> bool:
    """Constant-form key comparison (semantic sugar for readability)."""
    return a == b


class KeyAccumulator:
    """Incrementally XOR-accumulates components as packets are generated.

    The sender-side algorithm in Figure 4 of the paper pre-computes the key
    for a group *before* it knows how many packets the group will carry, then
    emits random components for every packet except the last and makes the
    last component "close the sum" so the XOR of all emitted components
    equals the pre-computed key.  ``KeyAccumulator`` implements exactly that
    dance:

    >>> acc = KeyAccumulator(target_key=0x1234, bits=16)
    >>> c1 = acc.emit_component(0x0F0F)
    >>> c2 = acc.emit_component(0x00FF)
    >>> last = acc.closing_component()
    >>> c1 ^ c2 ^ last == 0x1234
    True
    """

    def __init__(self, target_key: int, bits: int) -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        mask = (1 << bits) - 1
        if not (0 <= target_key <= mask):
            raise ValueError(f"target key {target_key:#x} does not fit in {bits} bits")
        self.bits = bits
        self._mask = mask
        self.target_key = target_key
        self._running = 0
        self._closed = False
        self.emitted = 0

    @property
    def running_value(self) -> int:
        """XOR of the components emitted so far."""
        return self._running

    @property
    def closed(self) -> bool:
        """True once the closing component has been produced."""
        return self._closed

    def emit_component(self, nonce: int) -> int:
        """Record a random component for a non-final packet and return it."""
        if self._closed:
            raise RuntimeError("accumulator already closed")
        if not (0 <= nonce <= self._mask):
            raise ValueError(f"nonce {nonce:#x} does not fit in {self.bits} bits")
        self._running ^= nonce
        self.emitted += 1
        return nonce

    def closing_component(self) -> int:
        """Component for the final packet so the total XOR equals the key."""
        if self._closed:
            raise RuntimeError("accumulator already closed")
        self._closed = True
        closing = self._running ^ self.target_key
        self._running = self.target_key
        self.emitted += 1
        return closing
