"""Shamir (k, n) threshold secret sharing.

Section 3.1.2 of the paper extends DELTA to *threshold-based* protocols
(RLM, MLDA, WEBRC), where a receiver is considered congested only when its
loss rate exceeds a threshold.  For such protocols the key of subscription
level ``g`` is split with Shamir's scheme across the ``n`` packets of the
level: any receiver that collects at least ``k`` packets can interpolate the
degree-``k-1`` polynomial and recover the key ``q(0)``, whereas a receiver
that lost more than ``n - k`` packets (loss rate above the protocol's
threshold) learns nothing.

The arithmetic is over a prime field large enough to hold the key; share
``p`` carries the point ``(p, q(p))`` exactly as Equation 8 specifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

__all__ = ["Share", "ShamirSecretSharing", "DEFAULT_PRIME"]

#: A Mersenne prime comfortably larger than any 16/32/61-bit key.
DEFAULT_PRIME = (1 << 61) - 1


@dataclass(frozen=True)
class Share:
    """One share: the evaluation point ``x`` and value ``q(x)``."""

    x: int
    y: int


def _mod_inverse(value: int, prime: int) -> int:
    """Multiplicative inverse modulo a prime (Fermat's little theorem)."""
    return pow(value, prime - 2, prime)


class ShamirSecretSharing:
    """Split and reconstruct secrets with a (k, n) threshold.

    Parameters
    ----------
    threshold:
        Minimum number of shares (``k``) needed to reconstruct the secret.
    prime:
        Field modulus; must exceed both the secret and the number of shares.
    rng:
        Randomness source for the polynomial coefficients; seeded in
        experiments for reproducibility.
    """

    def __init__(
        self,
        threshold: int,
        prime: int = DEFAULT_PRIME,
        rng: Optional[random.Random] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be at least 1 (got {threshold})")
        if prime <= threshold:
            raise ValueError("prime must exceed the threshold")
        self.threshold = threshold
        self.prime = prime
        self._rng = rng or random.Random()

    # ------------------------------------------------------------------
    def split(self, secret: int, shares: int) -> List[Share]:
        """Split ``secret`` into ``shares`` shares, any ``threshold`` of which suffice."""
        if not (0 <= secret < self.prime):
            raise ValueError(
                f"secret must lie in [0, prime); got {secret} for prime {self.prime}"
            )
        if shares < self.threshold:
            raise ValueError(
                f"cannot create {shares} shares with threshold {self.threshold}"
            )
        if shares >= self.prime:
            raise ValueError("number of shares must be smaller than the prime")
        # q(x) = secret + a1 x + ... + a_{k-1} x^{k-1}   (Equation 7)
        coefficients = [secret] + [
            self._rng.randrange(self.prime) for _ in range(self.threshold - 1)
        ]
        return [Share(x, self._evaluate(coefficients, x)) for x in range(1, shares + 1)]

    def _evaluate(self, coefficients: Sequence[int], x: int) -> int:
        """Evaluate the polynomial at ``x`` using Horner's rule."""
        value = 0
        for coefficient in reversed(coefficients):
            value = (value * x + coefficient) % self.prime
        return value

    # ------------------------------------------------------------------
    def reconstruct(self, shares: Iterable[Share]) -> int:
        """Recover the secret ``q(0)`` from at least ``threshold`` shares.

        Raises ``ValueError`` when too few distinct shares are supplied.
        Supplying *more* than ``threshold`` shares is allowed; only the first
        ``threshold`` distinct points are used.
        """
        unique: dict[int, int] = {}
        for share in shares:
            unique.setdefault(share.x, share.y)
        points = list(unique.items())[: self.threshold]
        if len(points) < self.threshold:
            raise ValueError(
                f"need at least {self.threshold} distinct shares, got {len(points)}"
            )
        # Lagrange interpolation at x = 0 (Equation 9).
        secret = 0
        for i, (xi, yi) in enumerate(points):
            numerator = 1
            denominator = 1
            for j, (xj, _) in enumerate(points):
                if i == j:
                    continue
                numerator = (numerator * (-xj)) % self.prime
                denominator = (denominator * (xi - xj)) % self.prime
            term = yi * numerator * _mod_inverse(denominator, self.prime)
            secret = (secret + term) % self.prime
        return secret

    # ------------------------------------------------------------------
    def minimum_packets_for_loss_threshold(self, packets: int, loss_threshold: float) -> int:
        """Helper mapping a protocol loss threshold to the Shamir ``k``.

        A receiver whose loss rate stays *below* ``loss_threshold`` (e.g. 25 %
        for RLM) receives at least ``ceil((1 - loss_threshold) * packets)``
        packets; choosing ``k`` equal to that count means exactly the
        uncongested receivers can reconstruct the key.
        """
        if not (0.0 <= loss_threshold < 1.0):
            raise ValueError("loss_threshold must be in [0, 1)")
        if packets < 1:
            raise ValueError("packets must be positive")
        import math

        return max(1, math.ceil((1.0 - loss_threshold) * packets))
