"""Nonce generation for DELTA keys and key components.

DELTA builds every key out of *nonces*: fresh random values the sender places
in the component and decrease fields of multicast packets (Equations 3-6 of
the paper).  Keys and components share the same bit width ``b`` — the paper
uses 16-bit values in its overhead analysis — so guessing a missing component
is exactly as hard as guessing the key itself (§4.2).

``NonceGenerator`` draws nonces from a named random stream so every
experiment is reproducible, while ``secrets``-quality randomness is not
needed inside a simulation.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

__all__ = ["NonceGenerator", "DEFAULT_KEY_BITS"]

#: Key/component width used in the paper's overhead evaluation (§5.4).
DEFAULT_KEY_BITS = 16


class NonceGenerator:
    """Generates uniformly random ``bits``-wide nonces.

    Parameters
    ----------
    bits:
        Width of every nonce (and therefore of every key built from them).
    rng:
        Source of randomness.  Pass a seeded ``random.Random`` for
        reproducible experiments; defaults to a freshly seeded instance.
    """

    def __init__(self, bits: int = DEFAULT_KEY_BITS, rng: Optional[random.Random] = None) -> None:
        if bits <= 0:
            raise ValueError(f"nonce width must be positive (got {bits})")
        self.bits = bits
        self._rng = rng or random.Random()
        self._mask = (1 << bits) - 1
        self.generated = 0

    @property
    def mask(self) -> int:
        """Bit mask selecting the low ``bits`` bits."""
        return self._mask

    @property
    def space_size(self) -> int:
        """Number of distinct nonce values (2**bits)."""
        return 1 << self.bits

    def next(self) -> int:
        """Return one fresh nonce in ``[0, 2**bits)``."""
        self.generated += 1
        return self._rng.getrandbits(self.bits)

    def next_nonzero(self) -> int:
        """Return a nonce guaranteed to be non-zero.

        Useful when a zero value is reserved as a sentinel (e.g. "no key").
        """
        while True:
            value = self.next()
            if value != 0:
                return value

    def batch(self, count: int) -> list[int]:
        """Return ``count`` fresh nonces."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.next() for _ in range(count)]

    def fits(self, value: int) -> bool:
        """True when ``value`` is representable in this generator's width."""
        return 0 <= value <= self._mask
