"""FLID-DS — FLID-DL hardened with DELTA and SIGMA (§5 of the paper).

FLID-DS keeps the congestion control dynamics of FLID-DL (layered groups,
per-slot increase signals, drop-on-loss) but replaces unrestricted IGMP group
management with key-guarded access:

* the **sender** precomputes DELTA keys at the start of every slot ``s`` for
  the governed slot ``s + 2``, embeds the component and decrease fields in
  its data packets, and announces the per-group keys to edge routers through
  FEC-protected SIGMA special packets;
* the **receiver** reconstructs, at the end of every slot, exactly the keys
  its congestion status entitles it to and submits them to its edge router in
  a SIGMA subscription message for slot ``s + 2``;
* the **edge router** (a :class:`~repro.core.sigma.SigmaRouterAgent`)
  validates the keys and stops forwarding any group for which no valid key
  covers the new slot.

Because both the protection pipeline and the congestion response operate at
two-slot granularity, the paper halves the slot duration (250 ms instead of
FLID-DL's 500 ms) so FLID-DS offers the same control granularity (§5.1).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.delta import (
    LayeredDeltaReceiver,
    LayeredDeltaSender,
    ReceiverSlotObservation,
)
from ..core.sigma import SigmaHostInterface, SigmaKeyDistributor
from ..crypto.nonce import NonceGenerator
from ..fec.erasure import FecConfig
from ..simulator.monitors import OverheadAccumulator
from ..simulator.node import Host
from ..simulator.packet import Packet
from ..simulator.topology import Network
from . import headers
from .receiver_base import LayeredReceiverBase, SlotRecord
from .sender_base import LayeredSenderBase
from .session import SessionSpec

__all__ = ["FlidDsSender", "FlidDsReceiver"]


class FlidDsSender(LayeredSenderBase):
    """FLID-DL sender augmented with DELTA key generation and SIGMA announcements."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        key_bits: int = 16,
        rng: Optional[random.Random] = None,
        suppress_unsubscribed_groups: bool = True,
        overhead: Optional[OverheadAccumulator] = None,
        fec_config: Optional[FecConfig] = None,
        use_fec: bool = True,
    ) -> None:
        super().__init__(
            network,
            host,
            spec,
            rng=rng,
            suppress_unsubscribed_groups=suppress_unsubscribed_groups,
            overhead=overhead,
        )
        self.key_bits = key_bits
        nonce_rng = network.random.stream(f"delta-nonces-{spec.session_id}")
        self.delta = LayeredDeltaSender(
            spec.group_count, NonceGenerator(bits=key_bits, rng=nonce_rng)
        )
        self.distributor = SigmaKeyDistributor(
            host=host,
            session_id=spec.session_id,
            group_addresses=list(spec.group_addresses),
            key_bits=key_bits,
            fec_config=fec_config,
            use_fec=use_fec,
            overhead=overhead,
        )

    # ------------------------------------------------------------------
    def _on_slot_start(self, slot: int) -> None:
        """Precompute and announce the keys governing slot ``slot + 2``.

        The upgrade authorisations drawn here apply to the governed slot, and
        the same set is advertised in the data packets of the current slot so
        receivers know which increase keys they may reconstruct.
        """
        self._current_upgrades = self._draw_upgrades()
        material = self.delta.begin_slot(slot, self._current_upgrades)
        self.distributor.announce(material)

    def _decorate_packet(self, packet: Packet, group: int, is_last_in_slot: bool) -> None:
        """Attach the DELTA component and decrease fields to a data packet."""
        fields = self.delta.fields_for_packet(group, is_last_in_slot)
        packet.headers[headers.COMPONENT] = fields.component
        if fields.decrease is not None:
            packet.headers[headers.DECREASE] = fields.decrease
        packet.headers[headers.CLOSING] = fields.closing
        field_bits = fields.field_bits(self.key_bits)
        packet.overhead_bits += field_bits
        if self.overhead is not None:
            self.overhead.record_data_packet(packet.size_bits, delta_bits=field_bits)


class FlidDsReceiver(LayeredReceiverBase):
    """FLID-DS receiver: FLID-DL dynamics driven by DELTA keys and SIGMA messages."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        key_bits: int = 16,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(host, spec, bin_width_s=bin_width_s, name=name)
        self.network = network
        self.key_bits = key_bits
        self.delta = LayeredDeltaReceiver(spec.group_count)
        self.sigma: Optional[SigmaHostInterface] = None
        #: Subscription level the receiver is entitled to, keyed by the first
        #: slot at which that level takes effect.
        self._level_schedule: Dict[int, int] = {}
        self.subscriptions_sent = 0
        self.rejoin_count = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _join_session(self) -> None:
        """SIGMA admission: key-less session-join for the minimal group."""
        self.sigma = self._make_sigma_interface()
        self.sigma.session_join(self.spec.minimal_group())
        current_slot = int(self.sim.now / self.spec.slot_duration_s)
        self._level_schedule[current_slot] = 1

    def _make_sigma_interface(self) -> SigmaHostInterface:
        """Hook: build the host-side SIGMA stub (cohorts stamp a member count)."""
        return SigmaHostInterface(self.host, self.spec.session_id, key_bits=self.key_bits)

    # ------------------------------------------------------------------
    # level bookkeeping
    # ------------------------------------------------------------------
    def entitled_level(self, slot: int) -> int:
        """Subscription level in force during ``slot`` (0 = no access)."""
        applicable = [s for s in self._level_schedule if s <= slot]
        if not applicable:
            return self.level
        return self._level_schedule[max(applicable)]

    def _schedule_level(self, slot: int, level: int) -> None:
        self._level_schedule[slot] = level
        # Keep the schedule bounded: only the recent past matters.
        horizon = slot - 8
        for old in [s for s in self._level_schedule if s < horizon]:
            last = self._level_schedule.pop(old)
            # Preserve continuity for entitled_level queries on older slots.
            self._level_schedule.setdefault(horizon, last)

    # ------------------------------------------------------------------
    # congestion definition (uses the per-slot entitled level)
    # ------------------------------------------------------------------
    def _entitled_groups(self, record: SlotRecord) -> set[int]:
        """FLID-DS entitlement follows the per-slot schedule, not ``self.level``."""
        return set(range(1, self.entitled_level(record.slot) + 1))

    # ------------------------------------------------------------------
    # per-slot decision: reconstruct keys, subscribe, adjust level
    # ------------------------------------------------------------------
    def _apply_decision(self, evaluated_slot: int, record: SlotRecord, congested: bool) -> None:
        if self.sigma is None:
            return
        entitled = self.entitled_level(evaluated_slot)
        governed_slot = evaluated_slot + 2

        if entitled == 0:
            # The receiver holds no keys at all; re-admission through the
            # key-less session-join path is the only way back in (§3.2.2).
            self._rejoin(governed_slot)
            return

        observation = self._build_observation(record, entitled, congested)
        result = self.delta.reconstruct(observation)
        self._on_keys_reconstructed(governed_slot, result.keys)

        if result.keys:
            pairs = [
                (self.spec.address_of(group), key)
                for group, key in result.submitted_pairs()
            ]
            self.sigma.subscribe(governed_slot, pairs)
            self.subscriptions_sent += 1

        if congested and result.next_level < entitled:
            # The reduced subscription only takes effect at the governed slot
            # (two slots ahead); congestion observed until then is the same
            # episode, so stay deaf for it plus one settling slot.
            self._enter_deaf_period(governed_slot + 1)

        self._schedule_level(governed_slot, result.next_level)
        self._set_level(result.next_level)

        if result.next_level == 0:
            self._rejoin(governed_slot)

    def _build_observation(
        self, record: SlotRecord, entitled: int, congested: bool
    ) -> ReceiverSlotObservation:
        lost = self._loss_signal_groups(record)
        if congested:
            lost |= self._starved_groups(record)
        return ReceiverSlotObservation(
            subscription_level=entitled,
            components=record.components(),
            decrease_fields=record.decrease_fields(),
            lost_groups=frozenset(lost),
            upgrade_authorized=frozenset(record.upgrade_groups),
        )

    def _on_keys_reconstructed(self, governed_slot: int, keys: Dict[int, int]) -> None:
        """Hook: the keys DELTA reconstructed for ``governed_slot``.

        The honest receiver does nothing with it; adversarial receivers
        (:mod:`repro.adversary.receivers`) dispatch it to their strategies
        (key replay, collusion).
        """

    def _rejoin(self, effective_slot: int) -> None:
        """Fall back to key-less admission after losing every key."""
        self.rejoin_count += 1
        self.sigma.session_join(self.spec.minimal_group())
        self._schedule_level(effective_slot, 1)
        self._set_level(1)
