"""Replicated multicast congestion control protected by the Figure 5 DELTA.

In replicated multicast (Destination Set Grouping / Cheung-Ammar style) every
group of the session carries the *same content at a different rate*; a
receiver subscribes to exactly one group and switches groups to adapt.  The
paper uses this protocol family to show that DELTA generalises beyond layered
multicast (§3.1.2, "Session structure"):

* only an uncongested receiver obtains the updated key for its current group;
* a congested receiver obtains the key for the next slower group;
* an upgrade-authorised, uncongested receiver obtains the key for the next
  faster group.

The implementation here is intentionally compact — enough to exercise the
:class:`~repro.core.delta.ReplicatedDeltaSender` /
:class:`~repro.core.delta.ReplicatedDeltaReceiver` pair end to end in unit
and integration tests, and to serve as the second domain-specific example —
it is not part of the paper's quantitative evaluation (which uses FLID).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.delta import ReplicatedDeltaReceiver as DeltaReceiverAlgo
from ..core.delta import ReplicatedDeltaSender as DeltaSenderAlgo
from ..core.delta.base import ReceiverSlotObservation
from ..core.sigma import SigmaHostInterface, SigmaKeyDistributor
from ..core.timeslot import SlotClock
from ..crypto.nonce import NonceGenerator
from ..simulator.monitors import ThroughputMonitor
from ..simulator.node import Host, PacketAgent
from ..simulator.packet import Packet
from ..simulator.topology import Network
from . import headers
from .session import SessionSpec

__all__ = ["ReplicatedSender", "ReplicatedReceiver"]


class ReplicatedSender:
    """Sends the same content on every group of the session, each at its own rate.

    Group ``g`` transmits at the session's *cumulative* level-``g`` rate
    (the whole content encoded at that quality), unlike the layered sender
    whose groups carry rate increments.
    """

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        key_bits: int = 16,
        protected: bool = True,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not spec.group_addresses:
            raise ValueError("session spec must have group addresses assigned")
        self.network = network
        self.host = host
        self.spec = spec
        self.sim = host.sim
        self.protected = protected
        self.key_bits = key_bits
        self.rng = rng or network.random.stream(f"repl-sender-{spec.session_id}")
        self.slot_clock = SlotClock(self.sim, spec.slot_duration_s)
        self.slot_clock.on_slot_start(self._on_slot_start)
        self.delta = DeltaSenderAlgo(
            spec.group_count,
            NonceGenerator(bits=key_bits, rng=network.random.stream(f"repl-nonce-{spec.session_id}")),
        )
        self.distributor = SigmaKeyDistributor(
            host=host,
            session_id=spec.session_id,
            group_addresses=list(spec.group_addresses),
            key_bits=key_bits,
        )
        self._group_seq: Dict[int, int] = {g: 0 for g in range(1, spec.group_count + 1)}
        self._current_upgrades: Tuple[int, ...] = ()
        self._started = False
        self.packets_sent = 0

    # ------------------------------------------------------------------
    def start(self, delay_s: float = 0.0) -> None:
        if self._started:
            return
        self._started = True
        self.sim.schedule(delay_s, self._bootstrap)

    def stop(self) -> None:
        self._started = False
        self.slot_clock.stop()

    def _bootstrap(self) -> None:
        self._on_slot_start(self.slot_clock.current_slot)
        self.slot_clock.start()
        for group in range(1, self.spec.group_count + 1):
            self.sim.schedule(
                self.rng.uniform(0.0, self._interval(group)), self._transmit_group, group
            )

    # ------------------------------------------------------------------
    def _interval(self, group: int) -> float:
        rate = self.spec.cumulative_rate_bps(group)
        return self.spec.packet_bytes * 8.0 / rate

    def _draw_upgrades(self) -> Tuple[int, ...]:
        return tuple(
            g
            for g in range(2, self.spec.group_count + 1)
            if self.rng.random() < self.spec.upgrade_probability(g)
        )

    def _on_slot_start(self, slot: int) -> None:
        self._current_upgrades = self._draw_upgrades()
        material = self.delta.begin_slot(slot, self._current_upgrades)
        if self.protected:
            self.distributor.announce(material)

    def _transmit_group(self, group: int) -> None:
        if not self._started:
            return
        interval = self._interval(group)
        if self.network.multicast.members(self.spec.address_of(group)):
            self._send_packet(group, interval)
        self.sim.schedule(interval * self.rng.uniform(0.9, 1.1), self._transmit_group, group)

    def _send_packet(self, group: int, interval: float) -> None:
        slot = self.slot_clock.current_slot
        is_last = (self.sim.now + interval) >= (self.slot_clock.end_of(slot) - 1e-9)
        seq = self._group_seq[group]
        self._group_seq[group] = seq + 1
        fields = self.delta.fields_for_packet(group, is_last)
        packet = Packet(
            source=self.host.address,
            destination=self.spec.address_of(group),
            size_bytes=self.spec.packet_bytes,
            protocol="replicated",
            headers={
                headers.SESSION: self.spec.session_id,
                headers.GROUP: group,
                headers.SLOT: slot,
                headers.GROUP_SEQ: seq,
                headers.UPGRADE_GROUPS: self._current_upgrades,
                headers.CLOSING: is_last,
                headers.COMPONENT: fields.component,
                headers.DECREASE: fields.decrease,
            },
            created_at=self.sim.now,
        )
        self.packets_sent += 1
        self.host.send(packet)


class ReplicatedReceiver(PacketAgent):
    """Single-group receiver: switches groups based on loss and upgrade signals."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        key_bits: int = 16,
        bin_width_s: float = 1.0,
    ) -> None:
        self.network = network
        self.host = host
        self.spec = spec
        self.sim = host.sim
        self.key_bits = key_bits
        self.delta = DeltaReceiverAlgo(spec.group_count)
        self.sigma: Optional[SigmaHostInterface] = None
        self.monitor = ThroughputMonitor(self.sim, bin_width_s=bin_width_s)
        self.group = 0
        self._group_for_slot: Dict[int, int] = {}
        self._records: Dict[int, Dict[str, object]] = {}
        self.switch_downs = 0
        self.switch_ups = 0
        self._timer_started = False

    # ------------------------------------------------------------------
    def start(self, delay_s: float = 0.0) -> None:
        self.sim.schedule(delay_s, self._bootstrap)

    def _bootstrap(self) -> None:
        self.sigma = SigmaHostInterface(self.host, self.spec.session_id, key_bits=self.key_bits)
        for g in range(1, self.spec.group_count + 1):
            self.host.register_group_agent(self.spec.address_of(g), self)
        self.sigma.session_join(self.spec.minimal_group())
        self.group = 1
        current = int(self.sim.now / self.spec.slot_duration_s)
        self._group_for_slot[current] = 1
        from ..simulator.engine import PeriodicTimer

        delay = (current + 1) * self.spec.slot_duration_s + 0.12 - self.sim.now
        self._timer = PeriodicTimer(
            self.sim, self.spec.slot_duration_s, self._on_timer, first_delay=max(delay, 1e-6)
        )
        self._timer.start()
        self._last_processed = current - 1

    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        if packet.headers.get(headers.SESSION) != self.spec.session_id:
            return
        self.monitor.record(packet.size_bytes)
        slot = packet.headers[headers.SLOT]
        group = packet.headers[headers.GROUP]
        record = self._records.setdefault(
            slot, {"components": {}, "decreases": {}, "seqs": {}, "upgrades": set(), "closing": set()}
        )
        record["components"].setdefault(group, []).append(packet.headers.get(headers.COMPONENT))
        decrease = packet.headers.get(headers.DECREASE)
        if decrease is not None:
            record["decreases"].setdefault(group, []).append(decrease)
        record["seqs"].setdefault(group, []).append(packet.headers[headers.GROUP_SEQ])
        record["upgrades"].update(packet.headers.get(headers.UPGRADE_GROUPS, ()))
        if packet.headers.get(headers.CLOSING):
            record["closing"].add(group)

    # ------------------------------------------------------------------
    def _on_timer(self) -> None:
        ready = int((self.sim.now - 0.12) / self.spec.slot_duration_s) - 1
        while self._last_processed < ready:
            self._last_processed += 1
            self._process_slot(self._last_processed)

    def _entitled_group(self, slot: int) -> int:
        applicable = [s for s in self._group_for_slot if s <= slot]
        return self._group_for_slot[max(applicable)] if applicable else self.group

    def _process_slot(self, slot: int) -> None:
        if self.sigma is None:
            return
        record = self._records.pop(slot, None)
        group = self._entitled_group(slot)
        if group == 0:
            self.sigma.session_join(self.spec.minimal_group())
            self._group_for_slot[slot + 2] = 1
            self.group = 1
            return
        components: Dict[int, List[int]] = {}
        decreases: Dict[int, List[int]] = {}
        lost = set()
        upgrades: set = set()
        if record is not None:
            components = {g: [c for c in cs if c is not None] for g, cs in record["components"].items()}
            decreases = record["decreases"]
            upgrades = record["upgrades"]
            seqs = record["seqs"].get(group, [])
            if seqs:
                if max(seqs) - min(seqs) + 1 != len(set(seqs)) or group not in record["closing"]:
                    lost.add(group)
            else:
                lost.add(group)
        observation = ReceiverSlotObservation(
            subscription_level=group,
            components=components,
            decrease_fields=decreases,
            lost_groups=frozenset(lost),
            upgrade_authorized=frozenset(upgrades),
        )
        result = self.delta.reconstruct(observation)
        governed = slot + 2
        if result.keys:
            pairs = [(self.spec.address_of(g), key) for g, key in result.submitted_pairs()]
            self.sigma.subscribe(governed, pairs)
        new_group = result.next_level
        if new_group and new_group != group:
            # Explicitly abandon the old group; replicated levels do not nest.
            self.sigma.unsubscribe([self.spec.address_of(group)])
            if new_group < group:
                self.switch_downs += 1
            else:
                self.switch_ups += 1
        self._group_for_slot[governed] = new_group if new_group else 0
        self.group = new_group if new_group else 0
