"""Multicast congestion control protocols.

* :mod:`repro.multicast_cc.flid_dl` — FLID-DL, the unprotected baseline.
* :mod:`repro.multicast_cc.flid_ds` — FLID-DS, FLID-DL integrated with DELTA
  and SIGMA (the paper's protected protocol).
* :mod:`repro.multicast_cc.misbehaving` — inflated-subscription attackers for
  both protocols.
* :mod:`repro.multicast_cc.replicated` — a replicated (single-group-per-level)
  protocol protected by the Figure 5 DELTA instantiation.
* :mod:`repro.multicast_cc.session` — session descriptions (rates, groups,
  slots) shared by all protocols.
* :mod:`repro.multicast_cc.decision` — the pure per-slot subscription rules
  (scalar, batched and array-form) shared by all receiver models.
* :mod:`repro.multicast_cc.cohort` / :mod:`repro.multicast_cc.receiver_model`
  — cohort-aggregated receiver populations and the model abstraction the
  experiment layer composes populations from.
* :mod:`repro.multicast_cc.population` / :mod:`repro.multicast_cc.vector` —
  the columnar population engine: every cohort's state as table rows,
  advanced one array pass per slot (sessions scale past 1M receivers).
"""

from .churn import ChurnProcess
from .cohort import CohortFlidDlReceiver, CohortFlidDsReceiver
from .decision import (
    ChurnAction,
    DlDecision,
    attack_target_level,
    churn_phase,
    churn_phase_array,
    decide_churn,
    decide_churn_array,
    decide_churn_batch,
    decide_dl,
    decide_dl_array,
    decide_dl_batch,
    decide_inflated_join,
    decide_inflated_join_array,
    decide_inflated_join_batch,
    mask_congestion,
    reconstruct_ds_batch,
)
from .flid_dl import FlidDlReceiver, FlidDlSender
from .flid_ds import FlidDsReceiver, FlidDsSender
from .population import PopulationBlock, PopulationTable, active_backend
from .receiver_base import LayeredReceiverBase, SlotRecord
from .receiver_model import (
    AdversarialCohort,
    IndividualReceiver,
    ReceiverCohort,
    ReceiverModel,
)
from .replicated import ReplicatedReceiver, ReplicatedSender
from .sender_base import LayeredSenderBase
from .session import SessionSpec, fair_level_for_rate
from .vector import VectorFlidDlReceiver, VectorFlidDsReceiver

#: Shim classes living in .misbehaving, resolved lazily (PEP 562) because the
#: module subclasses the adversary subsystem's receivers, which in turn build
#: on the honest receivers of this package — an eager import would cycle.
_LAZY_MISBEHAVING = (
    "IgnoreCongestionFlidDlReceiver",
    "InflatedSubscriptionFlidDlReceiver",
    "InflatedSubscriptionFlidDsReceiver",
)


def __getattr__(name: str):
    if name in _LAZY_MISBEHAVING:
        from . import misbehaving

        return getattr(misbehaving, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ChurnProcess",
    "CohortFlidDlReceiver",
    "CohortFlidDsReceiver",
    "ChurnAction",
    "DlDecision",
    "attack_target_level",
    "churn_phase",
    "churn_phase_array",
    "decide_churn",
    "decide_churn_array",
    "decide_churn_batch",
    "decide_dl",
    "decide_dl_array",
    "decide_dl_batch",
    "decide_inflated_join",
    "decide_inflated_join_array",
    "decide_inflated_join_batch",
    "mask_congestion",
    "reconstruct_ds_batch",
    "PopulationBlock",
    "PopulationTable",
    "active_backend",
    "VectorFlidDlReceiver",
    "VectorFlidDsReceiver",
    "FlidDlReceiver",
    "FlidDlSender",
    "FlidDsReceiver",
    "FlidDsSender",
    "AdversarialCohort",
    "IndividualReceiver",
    "ReceiverCohort",
    "ReceiverModel",
    "IgnoreCongestionFlidDlReceiver",
    "InflatedSubscriptionFlidDlReceiver",
    "InflatedSubscriptionFlidDsReceiver",
    "LayeredReceiverBase",
    "SlotRecord",
    "LayeredSenderBase",
    "ReplicatedReceiver",
    "ReplicatedSender",
    "SessionSpec",
    "fair_level_for_rate",
]
