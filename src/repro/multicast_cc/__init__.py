"""Multicast congestion control protocols.

* :mod:`repro.multicast_cc.flid_dl` — FLID-DL, the unprotected baseline.
* :mod:`repro.multicast_cc.flid_ds` — FLID-DS, FLID-DL integrated with DELTA
  and SIGMA (the paper's protected protocol).
* :mod:`repro.multicast_cc.misbehaving` — inflated-subscription attackers for
  both protocols.
* :mod:`repro.multicast_cc.replicated` — a replicated (single-group-per-level)
  protocol protected by the Figure 5 DELTA instantiation.
* :mod:`repro.multicast_cc.session` — session descriptions (rates, groups,
  slots) shared by all protocols.
"""

from .flid_dl import FlidDlReceiver, FlidDlSender
from .flid_ds import FlidDsReceiver, FlidDsSender
from .receiver_base import LayeredReceiverBase, SlotRecord
from .replicated import ReplicatedReceiver, ReplicatedSender
from .sender_base import LayeredSenderBase
from .session import SessionSpec, fair_level_for_rate

#: Shim classes living in .misbehaving, resolved lazily (PEP 562) because the
#: module subclasses the adversary subsystem's receivers, which in turn build
#: on the honest receivers of this package — an eager import would cycle.
_LAZY_MISBEHAVING = (
    "IgnoreCongestionFlidDlReceiver",
    "InflatedSubscriptionFlidDlReceiver",
    "InflatedSubscriptionFlidDsReceiver",
)


def __getattr__(name: str):
    if name in _LAZY_MISBEHAVING:
        from . import misbehaving

        return getattr(misbehaving, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FlidDlReceiver",
    "FlidDlSender",
    "FlidDsReceiver",
    "FlidDsSender",
    "IgnoreCongestionFlidDlReceiver",
    "InflatedSubscriptionFlidDlReceiver",
    "InflatedSubscriptionFlidDsReceiver",
    "LayeredReceiverBase",
    "SlotRecord",
    "LayeredSenderBase",
    "ReplicatedReceiver",
    "ReplicatedSender",
    "SessionSpec",
    "fair_level_for_rate",
]
