"""FLID-DL — the unprotected baseline protocol.

FLID-DL (Byers et al., NGC 2000) is a receiver-driven congestion control for
cumulative layered multicast: time is divided into slots, the sender marks
each slot with increase signals whose frequency decays for higher layers, and
a receiver

* drops its top group at the end of a slot in which it saw a packet loss,
* adds the next group at the end of a loss-free slot whose increase signal
  authorises the upgrade,
* otherwise keeps its subscription.

Group membership is managed with plain IGMP joins and leaves, which is what
makes the protocol vulnerable to inflated subscription: nothing stops a
receiver from joining every group of the session (see
:mod:`repro.multicast_cc.misbehaving` and Figure 1 of the paper).

This module provides the sender (:class:`FlidDlSender` is the shared layered
sender unchanged) and the well-behaved receiver (:class:`FlidDlReceiver`).
"""

from __future__ import annotations

from typing import Optional

from ..simulator.igmp import IgmpHostInterface
from ..simulator.node import Host
from ..simulator.topology import Network
from .decision import DlDecision, decide_dl
from .receiver_base import LayeredReceiverBase, SlotRecord
from .sender_base import LayeredSenderBase
from .session import SessionSpec

__all__ = ["FlidDlSender", "FlidDlReceiver"]


class FlidDlSender(LayeredSenderBase):
    """FLID-DL sender: the layered sender with no key machinery.

    The sender's only responsibilities are transmitting every layer at its
    rate and drawing the per-slot increase signals; both live in
    :class:`~repro.multicast_cc.sender_base.LayeredSenderBase`.
    """


class FlidDlReceiver(LayeredReceiverBase):
    """Well-behaved FLID-DL receiver driven by IGMP joins and leaves."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(host, spec, bin_width_s=bin_width_s, name=name)
        self.network = network
        self.igmp: Optional[IgmpHostInterface] = None

    # ------------------------------------------------------------------
    def _join_session(self) -> None:
        """Admission in FLID-DL is simply an IGMP join of the minimal group."""
        self.igmp = IgmpHostInterface(self.host)
        self.igmp.join(self.spec.minimal_group())

    def _apply_decision(self, evaluated_slot: int, record: SlotRecord, congested: bool) -> None:
        """Apply the three FLID-DL subscription rules for one evaluated slot.

        The rules themselves are the pure :func:`decide_dl`; this method only
        enacts the returned decision on the receiver's IGMP interface.
        """
        if self.igmp is None:
            return
        decision = decide_dl(
            self.level, congested, record.upgrade_groups, self.spec.group_count
        )
        self._enact(evaluated_slot, decision)

    def _enact(self, evaluated_slot: int, decision: DlDecision) -> None:
        """Turn a pure decision into IGMP membership changes and level state."""
        if decision.leave_group is not None:
            self.igmp.leave(self.spec.address_of(decision.leave_group))
            self._set_level(decision.next_level)
            if decision.deaf_slots:
                # The leave takes one IGMP prune latency to relieve the
                # bottleneck; losses in the next slot belong to this episode.
                self._enter_deaf_period(evaluated_slot + decision.deaf_slots)
            return
        if decision.join_group is not None:
            self.igmp.join(self.spec.address_of(decision.join_group))
            self._set_level(decision.next_level)
