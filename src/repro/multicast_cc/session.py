"""Multi-group session descriptions.

A multi-group multicast session is defined by the number of groups, the rate
of the minimal group, and how the cumulative rate grows with the subscription
level.  The paper's evaluation uses 10 groups, a 100 Kbps minimal group and a
multiplicative factor of 1.5 per group (§5.1), i.e. the cumulative rate of
level ``g`` is ``100 Kbps × 1.5^(g-1)`` and the full session tops out around
3.8 Mbps.

``SessionSpec`` captures those parameters plus the packet size and slot
duration, and provides the per-group (incremental) rates the senders need and
the per-group packets-per-slot counts both DELTA and the overhead model need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..simulator.address import GroupAddress

__all__ = ["SessionSpec", "fair_level_for_rate"]


@dataclass(frozen=True)
class SessionSpec:
    """Static description of one layered (or replicated) multicast session."""

    session_id: str
    group_count: int = 10
    base_rate_bps: float = 100_000.0
    rate_factor: float = 1.5
    packet_bytes: int = 576
    slot_duration_s: float = 0.5
    #: Group addresses, minimal group first.  Assigned by the experiment
    #: harness from the network's allocator.
    group_addresses: tuple[GroupAddress, ...] = ()
    #: Per-slot probability decay of upgrade authorisations (see
    #: :meth:`upgrade_probability`).
    increase_decay: float = 0.5
    #: Mean interval between upgrade authorisations for group 2; higher groups
    #: are authorised geometrically less often.  Expressing the signal rate in
    #: seconds (rather than per slot) keeps FLID-DL (500 ms slots) and FLID-DS
    #: (250 ms slots) probing at the same real-time rate, as §5.1 intends.
    base_upgrade_interval_s: float = 0.5

    def __post_init__(self) -> None:
        if self.group_count < 1:
            raise ValueError("group_count must be at least 1")
        if self.base_rate_bps <= 0:
            raise ValueError("base_rate_bps must be positive")
        if self.rate_factor < 1.0:
            raise ValueError("rate_factor must be >= 1")
        if self.packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        if self.slot_duration_s <= 0:
            raise ValueError("slot_duration_s must be positive")
        if self.group_addresses and len(self.group_addresses) != self.group_count:
            raise ValueError(
                f"need {self.group_count} group addresses, got {len(self.group_addresses)}"
            )
        if not (0.0 < self.increase_decay <= 1.0):
            raise ValueError("increase_decay must be in (0, 1]")

    # ------------------------------------------------------------------
    # rates
    # ------------------------------------------------------------------
    def cumulative_rate_bps(self, level: int) -> float:
        """Aggregate rate of subscription level ``level`` (groups 1..level)."""
        if level <= 0:
            return 0.0
        level = min(level, self.group_count)
        return self.base_rate_bps * (self.rate_factor ** (level - 1))

    def group_rate_bps(self, group: int) -> float:
        """Rate of the individual group ``group`` (its layer's increment)."""
        if not (1 <= group <= self.group_count):
            raise ValueError(f"group {group} outside 1..{self.group_count}")
        if group == 1:
            return self.base_rate_bps
        return self.cumulative_rate_bps(group) - self.cumulative_rate_bps(group - 1)

    def max_rate_bps(self) -> float:
        """Cumulative rate of the maximal subscription level."""
        return self.cumulative_rate_bps(self.group_count)

    # ------------------------------------------------------------------
    # packet arithmetic
    # ------------------------------------------------------------------
    def packet_interval_s(self, group: int) -> float:
        """Inter-packet spacing for ``group`` at its layer rate."""
        return self.packet_bytes * 8.0 / self.group_rate_bps(group)

    def packets_per_slot(self, group: int) -> int:
        """Average number of packets ``group`` carries per time slot."""
        return max(1, round(self.group_rate_bps(group) * self.slot_duration_s / (self.packet_bytes * 8.0)))

    def packets_per_slot_all_groups(self) -> List[int]:
        """Per-group packets per slot, minimal group first."""
        return [self.packets_per_slot(g) for g in range(1, self.group_count + 1)]

    # ------------------------------------------------------------------
    # subscription guidance
    # ------------------------------------------------------------------
    def upgrade_probability(self, group: int) -> float:
        """Per-slot probability that an upgrade to ``group`` is authorised.

        FLID-DL issues increase signals whose frequency decays for higher
        layers so that probing of expensive layers is rare; we model this as
        a geometric decay controlled by ``increase_decay``.  Group ``g`` is
        authorised on average every ``base_upgrade_interval_s /
        increase_decay^(g-2)`` seconds, independently of the slot duration,
        so the unprotected and protected protocols probe at the same
        real-time rate despite their different slot lengths.
        """
        if group < 2 or group > self.group_count:
            return 0.0
        mean_interval_s = self.base_upgrade_interval_s / (self.increase_decay ** (group - 2))
        return min(1.0, self.slot_duration_s / mean_interval_s)

    def fair_level(self, available_bps: float) -> int:
        """Highest level whose cumulative rate fits within ``available_bps``."""
        return fair_level_for_rate(
            available_bps, self.base_rate_bps, self.rate_factor, self.group_count
        )

    def minimal_group(self) -> GroupAddress:
        if not self.group_addresses:
            raise ValueError("session has no group addresses assigned")
        return self.group_addresses[0]

    def address_of(self, group: int) -> GroupAddress:
        if not self.group_addresses:
            raise ValueError("session has no group addresses assigned")
        return self.group_addresses[group - 1]

    def group_index_of(self, address: GroupAddress) -> Optional[int]:
        """1-based group index of ``address`` or None when not in this session."""
        for index, candidate in enumerate(self.group_addresses, start=1):
            if int(candidate) == int(address):
                return index
        return None

    def with_addresses(self, addresses: Sequence[GroupAddress]) -> "SessionSpec":
        """Return a copy of the spec bound to concrete group addresses."""
        import dataclasses

        return dataclasses.replace(self, group_addresses=tuple(addresses))


def fair_level_for_rate(
    available_bps: float, base_rate_bps: float, rate_factor: float, group_count: int
) -> int:
    """Highest subscription level whose cumulative rate fits ``available_bps``.

    Returns 0 when even the minimal group does not fit.
    """
    if available_bps < base_rate_bps:
        return 0
    if rate_factor == 1.0:
        return min(group_count, 1)
    level = 1 + math.floor(math.log(available_bps / base_rate_bps, rate_factor))
    return int(max(0, min(group_count, level)))
