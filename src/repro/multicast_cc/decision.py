"""Pure FLID subscription-decision functions, scalar and batched.

The per-slot subscription logic of both protocol variants is a *pure*
function of what the receiver observed during the slot — no simulator state,
no I/O.  Historically that logic lived inline in the receiver classes; this
module extracts it so that the two receiver models share one implementation:

* the per-object receivers (:class:`~repro.multicast_cc.flid_dl.FlidDlReceiver`,
  :class:`~repro.multicast_cc.flid_ds.FlidDsReceiver`) apply the **scalar**
  form once per receiver per slot;
* the aggregated :mod:`~repro.multicast_cc.cohort` receivers apply the
  **batched** form over a columnar state block of ``(count, level)`` rows,
  evaluating each *distinct* subscription level once and sharing the outcome
  across every receiver in the row — per-slot cost O(distinct levels), not
  O(receivers).

The batched functions are defined to be exactly the scalar function mapped
over rows (the Hypothesis property tests in
``tests/multicast_cc/test_decision.py`` assert this), so aggregation can
never change a trajectory — only amortise its cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.delta.base import ReconstructionResult

__all__ = [
    "DlDecision",
    "decide_dl",
    "decide_dl_batch",
    "reconstruct_ds_batch",
    "merge_rows",
]

#: One columnar row of a cohort state block: ``(receiver count, level)``.
Row = Tuple[int, int]


@dataclass(frozen=True)
class DlDecision:
    """Outcome of the FLID-DL subscription rules for one evaluated slot.

    ``leave_group`` / ``join_group`` name the (1-based) group whose IGMP
    membership must change; ``deaf_slots`` is how many slots past the
    evaluated one congestion signals should be ignored (the prune-latency
    deafness a decrease triggers).
    """

    next_level: int
    leave_group: Optional[int] = None
    join_group: Optional[int] = None
    deaf_slots: int = 0


def decide_dl(
    level: int,
    congested: bool,
    upgrade_authorized: Sequence[int],
    group_count: int,
) -> DlDecision:
    """Apply the three FLID-DL rules to one receiver's slot observation.

    * congested and above the minimal group → drop the top group (and stay
      deaf through the next slot while the prune takes effect);
    * loss-free with an authorised upgrade → join the next group;
    * otherwise → hold.
    """
    if congested:
        if level > 1:
            return DlDecision(
                next_level=level - 1, leave_group=level, deaf_slots=1
            )
        return DlDecision(next_level=level)
    upgrade_target = level + 1
    if upgrade_target <= group_count and upgrade_target in upgrade_authorized:
        return DlDecision(next_level=upgrade_target, join_group=upgrade_target)
    return DlDecision(next_level=level)


def decide_dl_batch(
    rows: Sequence[Row],
    congested: bool,
    upgrade_authorized: Sequence[int],
    group_count: int,
) -> List[Tuple[int, DlDecision]]:
    """Batched FLID-DL decision over ``(count, level)`` rows.

    Every distinct level is decided once via :func:`decide_dl` and the
    outcome shared by the row's whole count — equal to, but cheaper than,
    mapping the scalar function over ``count`` individual receivers.
    """
    cache: Dict[int, DlDecision] = {}
    out: List[Tuple[int, DlDecision]] = []
    for count, level in rows:
        decision = cache.get(level)
        if decision is None:
            decision = decide_dl(level, congested, upgrade_authorized, group_count)
            cache[level] = decision
        out.append((count, decision))
    return out


def reconstruct_ds_batch(
    rows: Sequence[Row],
    reconstruct: Callable[[int], ReconstructionResult],
) -> List[Tuple[int, ReconstructionResult]]:
    """Batched FLID-DS key reconstruction over ``(count, level)`` rows.

    ``reconstruct(level)`` is the scalar DELTA reconstruction for one
    receiver entitled to ``level`` (see
    :meth:`~repro.core.delta.layered.LayeredDeltaReceiver.reconstruct`); it
    is invoked once per distinct level and its result — keys and next level —
    is shared across the row, amortising the XOR folds and key submissions
    over the cohort.
    """
    cache: Dict[int, ReconstructionResult] = {}
    out: List[Tuple[int, ReconstructionResult]] = []
    for count, level in rows:
        result = cache.get(level)
        if result is None:
            result = reconstruct(level)
            cache[level] = result
        out.append((count, result))
    return out


def merge_rows(rows: Sequence[Row]) -> List[Row]:
    """Coalesce rows that landed on the same level (state block compaction).

    Order follows first appearance of each level, so a homogeneous cohort
    stays a single row forever.
    """
    counts: Dict[int, int] = {}
    for count, level in rows:
        counts[level] = counts.get(level, 0) + count
    return [(count, level) for level, count in counts.items()]
