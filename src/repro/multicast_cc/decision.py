"""Pure FLID subscription-decision functions, scalar and batched.

The per-slot subscription logic of both protocol variants is a *pure*
function of what the receiver observed during the slot — no simulator state,
no I/O.  Historically that logic lived inline in the receiver classes; this
module extracts it so that the two receiver models share one implementation:

* the per-object receivers (:class:`~repro.multicast_cc.flid_dl.FlidDlReceiver`,
  :class:`~repro.multicast_cc.flid_ds.FlidDsReceiver`) apply the **scalar**
  form once per receiver per slot;
* the aggregated :mod:`~repro.multicast_cc.cohort` receivers apply the
  **batched** form over a columnar state block of ``(count, level)`` rows,
  evaluating each *distinct* subscription level once and sharing the outcome
  across every receiver in the row — per-slot cost O(distinct levels), not
  O(receivers);
* the vectorised receivers (:mod:`~repro.multicast_cc.vector`) apply the
  **array** form (``decide_*_array``) over whole level *columns* of a
  :class:`~repro.multicast_cc.population.PopulationBlock` — one pass per
  slot across thousands of cohort rows.  The array functions accept either
  a numpy ``int64`` array (vectorised numpy path) or any plain integer
  sequence (per-distinct-level stdlib path) and return the same flavour
  they were given, so numpy stays optional.

The batched and array functions are defined to be exactly the scalar
function mapped over rows (the Hypothesis properties and the exhaustive
Commuter-style enumerations in ``tests/multicast_cc/test_decision.py``
assert this), so aggregation can never change a trajectory — only amortise
its cost.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.delta.base import ReconstructionResult

try:  # numpy accelerates the array forms but is never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback backend
    _np = None

__all__ = [
    "DlDecision",
    "ChurnAction",
    "decide_dl",
    "decide_dl_batch",
    "decide_dl_array",
    "reconstruct_ds_batch",
    "merge_rows",
    "attack_target_level",
    "attack_rate",
    "forbidden_groups",
    "forbidden_count_array",
    "decide_inflated_join",
    "decide_inflated_join_batch",
    "decide_inflated_join_array",
    "mask_congestion",
    "churn_phase",
    "churn_phase_array",
    "decide_churn",
    "decide_churn_batch",
    "decide_churn_array",
    "replay_volley",
    "replay_volley_batch",
    "guess_volley",
    "guess_volley_batch",
    "decide_join_storm",
    "decide_join_storm_batch",
    "collusion_volley",
    "collusion_volley_batch",
]

#: One columnar row of a cohort state block: ``(receiver count, level)``.
Row = Tuple[int, int]


@dataclass(frozen=True)
class DlDecision:
    """Outcome of the FLID-DL subscription rules for one evaluated slot.

    ``leave_group`` / ``join_group`` name the (1-based) group whose IGMP
    membership must change; ``deaf_slots`` is how many slots past the
    evaluated one congestion signals should be ignored (the prune-latency
    deafness a decrease triggers).
    """

    next_level: int
    leave_group: Optional[int] = None
    join_group: Optional[int] = None
    deaf_slots: int = 0


def decide_dl(
    level: int,
    congested: bool,
    upgrade_authorized: Sequence[int],
    group_count: int,
) -> DlDecision:
    """Apply the three FLID-DL rules to one receiver's slot observation.

    * congested and above the minimal group → drop the top group (and stay
      deaf through the next slot while the prune takes effect);
    * loss-free with an authorised upgrade → join the next group;
    * otherwise → hold.
    """
    if congested:
        if level > 1:
            return DlDecision(
                next_level=level - 1, leave_group=level, deaf_slots=1
            )
        return DlDecision(next_level=level)
    upgrade_target = level + 1
    if upgrade_target <= group_count and upgrade_target in upgrade_authorized:
        return DlDecision(next_level=upgrade_target, join_group=upgrade_target)
    return DlDecision(next_level=level)


def decide_dl_batch(
    rows: Sequence[Row],
    congested: bool,
    upgrade_authorized: Sequence[int],
    group_count: int,
) -> List[Tuple[int, DlDecision]]:
    """Batched FLID-DL decision over ``(count, level)`` rows.

    Every distinct level is decided once via :func:`decide_dl` and the
    outcome shared by the row's whole count — equal to, but cheaper than,
    mapping the scalar function over ``count`` individual receivers.
    """
    cache: Dict[int, DlDecision] = {}
    out: List[Tuple[int, DlDecision]] = []
    for count, level in rows:
        decision = cache.get(level)
        if decision is None:
            decision = decide_dl(level, congested, upgrade_authorized, group_count)
            cache[level] = decision
        out.append((count, decision))
    return out


def _like(levels: Sequence[int], values: List[int]):
    """Return ``values`` in the flavour of the ``levels`` input column.

    numpy array in → numpy ``int64`` array out; :class:`array.array` in →
    same-typecode array out; any other sequence → plain list.  Keeping the
    flavour stable lets a :class:`~repro.multicast_cc.population`
    block assign the result straight back into its column.
    """
    if _np is not None and isinstance(levels, _np.ndarray):
        return _np.asarray(values, dtype=_np.int64)
    if isinstance(levels, array):
        return array(levels.typecode, values)
    return values


def decide_dl_array(
    levels: Sequence[int],
    congested: bool,
    upgrade_authorized: Sequence[int],
    group_count: int,
) -> Sequence[int]:
    """Array-form FLID-DL rule: a whole level column in one pass.

    Semantically ``[decide_dl(level, ...).next_level for level in levels]``
    — the membership *side effects* of the scalar decision are the caller's
    to enact from the before/after levels (a uniform block changes as one).
    numpy input takes the vectorised path; any other integer sequence takes
    the per-distinct-level stdlib path.  The result has the input's flavour.
    """
    if _np is not None and isinstance(levels, _np.ndarray):
        if congested:
            return _np.where(levels > 1, levels - 1, levels)
        targets = levels + 1
        authorized = _np.fromiter(
            sorted(upgrade_authorized), dtype=_np.int64, count=len(upgrade_authorized)
        )
        eligible = (targets <= group_count) & _np.isin(targets, authorized)
        return _np.where(eligible, targets, levels)
    cache: Dict[int, int] = {}
    out: List[int] = []
    for level in levels:
        level = int(level)
        next_level = cache.get(level)
        if next_level is None:
            next_level = decide_dl(
                level, congested, upgrade_authorized, group_count
            ).next_level
            cache[level] = next_level
        out.append(next_level)
    return _like(levels, out)


def decide_inflated_join_array(
    levels: Sequence[int], target_level: int
) -> Sequence[int]:
    """Array-form frozen-subscription rule: pin every row at the target.

    Semantically ``[decide_inflated_join(level, target).next_level ...]``;
    since the scalar rule ignores the current level entirely, the array form
    is a constant column in the input's flavour.
    """
    if _np is not None and isinstance(levels, _np.ndarray):
        return _np.full_like(levels, target_level)
    return _like(levels, [target_level] * len(levels))


def reconstruct_ds_batch(
    rows: Sequence[Row],
    reconstruct: Callable[[int], ReconstructionResult],
) -> List[Tuple[int, ReconstructionResult]]:
    """Batched FLID-DS key reconstruction over ``(count, level)`` rows.

    ``reconstruct(level)`` is the scalar DELTA reconstruction for one
    receiver entitled to ``level`` (see
    :meth:`~repro.core.delta.layered.LayeredDeltaReceiver.reconstruct`); it
    is invoked once per distinct level and its result — keys and next level —
    is shared across the row, amortising the XOR folds and key submissions
    over the cohort.
    """
    cache: Dict[int, ReconstructionResult] = {}
    out: List[Tuple[int, ReconstructionResult]] = []
    for count, level in rows:
        result = cache.get(level)
        if result is None:
            result = reconstruct(level)
            cache[level] = result
        out.append((count, result))
    return out


# ----------------------------------------------------------------------
# attack decisions (pure forms of the batch-exact adversary strategies)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnAction:
    """Membership changes one churn-attack phase transition demands.

    ``join_groups`` / ``leave_groups`` list the (1-based) groups whose IGMP
    membership must change, in submission order; ``session_rejoin`` asks for
    a key-less SIGMA session-join (the grace-window vector of §3.2.2).
    """

    join_groups: Tuple[int, ...] = ()
    leave_groups: Tuple[int, ...] = ()
    session_rejoin: bool = False


def attack_target_level(intensity: float, group_count: int) -> int:
    """The subscription level an inflated-join attacker aims for.

    ``intensity`` scales against the session's group count (1.0 = everything)
    and the result is clamped into the valid ``1 .. group_count`` range.
    """
    target = round(intensity * group_count)
    return max(1, min(group_count, target))


def decide_inflated_join(level: int, target_level: int) -> DlDecision:
    """The frozen-subscription rule of the inflated-join attack (§2.1).

    Whatever the congestion state, the attacker pins its subscription at the
    inflated target — it never decreases and never needs an authorisation to
    sit at ``target_level``.  Pure counterpart of
    :class:`~repro.adversary.strategies.InflatedJoinStrategy`'s suppression.
    """
    return DlDecision(next_level=target_level)


def decide_inflated_join_batch(
    rows: Sequence[Row], target_level: int
) -> List[Tuple[int, DlDecision]]:
    """Batched inflated-join decision over ``(count, level)`` rows.

    Defined as :func:`decide_inflated_join` mapped over rows (evaluated once
    per distinct level), so an adversarial cohort of N attackers pins its
    state block exactly as N individual attackers would.
    """
    return _batch_rows(rows, lambda level: decide_inflated_join(level, target_level))


def mask_congestion(congested: bool, mode: str = "mask") -> bool:
    """The congestion verdict an ignore-congestion attacker lets through.

    ``mode="mask"`` rewrites every verdict to "no congestion" (the attacker's
    honest pipeline then acts on a lie); any other mode passes the verdict
    unchanged (the *hold* variant suppresses the decision instead).
    """
    if mode == "mask":
        return False
    return congested


def churn_phase(elapsed_s: float, period_s: float, duty: float) -> bool:
    """True while a churn attacker's flapping cycle is in its *high* phase.

    ``elapsed_s`` is time since attack onset; the cycle spends ``duty``
    (clamped to [0, 1]) of every ``period_s`` (floored to one millisecond)
    in the high phase.
    """
    period_s = max(1e-3, period_s)
    duty = min(1.0, max(0.0, duty))
    return (elapsed_s % period_s) < duty * period_s


def decide_churn(
    phase_high: bool,
    was_high: bool,
    entitled_level: int,
    group_count: int,
    joined: Sequence[int] = (),
) -> ChurnAction:
    """Membership changes for one churn-attack phase evaluation (§3.2.2).

    A rising edge joins every group and re-runs the key-less session-join; a
    falling edge abandons the previously joined groups above the attacker's
    legitimate entitlement (sorted, as the strategy submits them); inside a
    phase nothing changes.
    """
    if phase_high and not was_high:
        return ChurnAction(
            join_groups=tuple(range(1, group_count + 1)), session_rejoin=True
        )
    if not phase_high and was_high:
        return ChurnAction(
            leave_groups=tuple(
                group for group in sorted(joined) if group > entitled_level
            )
        )
    return ChurnAction()


def churn_phase_array(
    elapsed_s: Sequence[float], period_s: float, duty: float
) -> Sequence[bool]:
    """Array-form churn phase: one cycle evaluation over an elapsed column.

    Semantically ``[churn_phase(e, period_s, duty) for e in elapsed_s]``;
    numpy input returns a boolean array, any other sequence a list of bools.
    """
    if _np is not None and isinstance(elapsed_s, _np.ndarray):
        period = max(1e-3, period_s)
        clamped = min(1.0, max(0.0, duty))
        return (elapsed_s % period) < clamped * period
    return [churn_phase(float(value), period_s, duty) for value in elapsed_s]


def decide_churn_array(
    phase_high: Sequence[int],
    was_high: Sequence[int],
    entitled_level: int,
    group_count: int,
    joined: Sequence[int] = (),
) -> List[ChurnAction]:
    """Array-form churn rule over parallel phase/previous-phase columns.

    Semantically ``[decide_churn(p, w, ...) for p, w in zip(...)]``.  The
    action is a structured object (group tuples), so both backends return a
    list — but each distinct ``(phase, was)`` pair (at most four) is decided
    once and shared, keeping the pass O(1) in the row count's constant.
    """
    if len(phase_high) != len(was_high):
        raise ValueError(
            f"phase columns disagree: {len(phase_high)} vs {len(was_high)} rows"
        )
    cache: Dict[Tuple[bool, bool], ChurnAction] = {}
    out: List[ChurnAction] = []
    for phase, was in zip(phase_high, was_high):
        key = (bool(phase), bool(was))
        action = cache.get(key)
        if action is None:
            action = decide_churn(key[0], key[1], entitled_level, group_count, joined)
            cache[key] = action
        out.append(action)
    return out


def decide_churn_batch(
    rows: Sequence[Row],
    phase_high: bool,
    was_high: bool,
    entitled_level: int,
    group_count: int,
    joined: Sequence[int] = (),
) -> List[Tuple[int, ChurnAction]]:
    """Batched churn decision over ``(count, level)`` rows.

    The phase schedule is a pure function of time shared by every member of
    a homogeneous attacker cohort, so each distinct level maps to the same
    :func:`decide_churn` action — evaluated once and shared across the row.
    A homogeneous cohort is a single row, which is why the live
    :class:`~repro.adversary.strategies.ChurnStrategy` calls the scalar
    form exactly once per slot; this batched form is the general contract
    the Hypothesis properties pin to the scalar map.
    """
    return _batch_rows(
        rows,
        lambda _level: decide_churn(
            phase_high, was_high, entitled_level, group_count, joined
        ),
    )


def attack_rate(per_slot: float, intensity: float) -> int:
    """Per-slot action count of a rate-scaled attack knob.

    Every volume knob (replays per group, guesses per slot, storm bursts)
    scales by the attack's ``intensity`` and is floored at one action — an
    active attacker always acts.  Shared by the replay, guessing and
    join-storm rules so intensity sweeps mean the same thing everywhere.
    """
    return max(1, round(per_slot * intensity))


def forbidden_groups(entitled_level: int, group_count: int) -> Tuple[int, ...]:
    """The (1-based) groups above a receiver's legitimate entitlement.

    The target set of every key-oriented attack: a receiver entitled to
    ``entitled_level`` may not hold groups ``entitled_level + 1 ..
    group_count``.  Fully entitled receivers have no forbidden groups.
    """
    return tuple(range(entitled_level + 1, group_count + 1))


def forbidden_count_array(
    levels: Sequence[int], group_count: int
) -> Sequence[int]:
    """Array-form forbidden-group count over an entitlement column.

    Semantically ``[len(forbidden_groups(level, group_count)) for level in
    levels]`` — the per-row attempt weight of a key-oriented attack over a
    columnar block, clamped at zero for fully (or over-) entitled rows.
    The result has the input column's flavour.
    """
    if _np is not None and isinstance(levels, _np.ndarray):
        return _np.clip(group_count - levels, 0, None)
    return _like(levels, [max(0, group_count - int(level)) for level in levels])


def replay_volley(
    candidates: Sequence[int],
    entitled_level: int,
    group_count: int,
    per_group: int,
) -> Tuple[Tuple[int, int], ...]:
    """The (group, key) submissions of one key-replay slot (§4.1).

    For every forbidden group the attacker replays the ``per_group``
    freshest stashed keys (``candidates`` is the stash flattened newest
    first), in group-major order.  Pure counterpart of
    :class:`~repro.adversary.strategies.KeyReplayStrategy`'s volley;
    no randomness — the stash is a deterministic function of the honest
    pipeline's reconstructions.
    """
    replayed = tuple(candidates[:per_group])
    return tuple(
        (group, key)
        for group in forbidden_groups(entitled_level, group_count)
        for key in replayed
    )


def replay_volley_batch(
    rows: Sequence[Row],
    candidates: Sequence[int],
    group_count: int,
    per_group: int,
) -> List[Tuple[int, Tuple[Tuple[int, int], ...]]]:
    """Batched key-replay volley over ``(count, entitled level)`` rows.

    Defined as :func:`replay_volley` mapped over rows (evaluated once per
    distinct entitlement), so a replaying cohort of N attackers submits the
    same pairs — booked at N members' weight — as N individuals sharing the
    same stash would.
    """
    return _batch_rows(
        rows,
        lambda level: replay_volley(candidates, level, group_count, per_group),
    )


def guess_volley(
    entitled_level: int,
    group_count: int,
    guesses: int,
    draws: Sequence[int],
) -> Tuple[Tuple[int, int], ...]:
    """The (group, key) submissions of one key-guessing slot (§4.2).

    ``draws`` is the slot's random-key budget, drawn *once per cohort* from
    the strategy's seeded stream and consumed positionally: draw ``i`` is
    submitted for forbidden group ``i // guesses`` — exactly the
    group-major order the per-object strategy draws in, so an individual
    receiver's byte trace is unchanged.  Raises when the budget can't cover
    ``guesses`` per forbidden group; surplus draws are ignored (a batched
    caller sizes the budget for its deepest row).
    """
    targets = forbidden_groups(entitled_level, group_count)
    needed = len(targets) * guesses
    if len(draws) < needed:
        raise ValueError(
            f"guess volley needs {needed} draws "
            f"({len(targets)} forbidden groups x {guesses} guesses), got {len(draws)}"
        )
    return tuple(
        (targets[index // guesses], int(draws[index])) for index in range(needed)
    )


def guess_volley_batch(
    rows: Sequence[Row],
    group_count: int,
    guesses: int,
    draws: Sequence[int],
) -> List[Tuple[int, Tuple[Tuple[int, int], ...]]]:
    """Batched key-guessing volley over ``(count, entitled level)`` rows.

    Defined as :func:`guess_volley` mapped over rows with the *same* shared
    draw budget (evaluated once per distinct entitlement) — the per-cohort
    randomness model: one seeded draw sequence per slot covers the whole
    cohort, counts are booked per member.
    """
    return _batch_rows(
        rows, lambda level: guess_volley(level, group_count, guesses, draws)
    )


def decide_join_storm(bursts: int, group_count: int) -> Tuple[int, ...]:
    """The IGMP join sequence of one join-storm slot.

    ``bursts`` repetitions of a full group sweep, in ascending group order —
    exactly ``bursts`` calls of the context's ``igmp_join_all``.  Stateless
    and randomness-free; a SIGMA edge ignores every report.
    """
    return tuple(range(1, group_count + 1)) * bursts


def decide_join_storm_batch(
    rows: Sequence[Row], bursts: int, group_count: int
) -> List[Tuple[int, Tuple[int, ...]]]:
    """Batched join-storm sequence over ``(count, level)`` rows.

    The storm ignores subscription state entirely, so every row maps to the
    same :func:`decide_join_storm` sweep — evaluated once and shared, with
    each row's joins booked at its member count.
    """
    return _batch_rows(rows, lambda _level: decide_join_storm(bursts, group_count))


def collusion_volley(
    pooled: Mapping[int, int],
    entitled_level: int,
    group_count: int,
) -> Tuple[Tuple[int, int], ...]:
    """The (group, key) submissions of one collusion slot (§4.3).

    For every forbidden group that some colluder published a key for, submit
    the pooled key, in ascending group order.  Pure counterpart of
    :class:`~repro.adversary.strategies.CollusionStrategy`'s exploit pass;
    the pool state is the only input — no randomness.
    """
    return tuple(
        (group, pooled[group])
        for group in forbidden_groups(entitled_level, group_count)
        if group in pooled
    )


def collusion_volley_batch(
    rows: Sequence[Row],
    pooled: Mapping[int, int],
    group_count: int,
) -> List[Tuple[int, Tuple[Tuple[int, int], ...]]]:
    """Batched collusion volley over ``(count, entitled level)`` rows.

    Defined as :func:`collusion_volley` mapped over rows (evaluated once per
    distinct entitlement) against one shared pool snapshot, so a colluding
    cohort of N members submits — and books, member-weighted — exactly what
    N individual colluders reading the same pool would.
    """
    return _batch_rows(
        rows, lambda level: collusion_volley(pooled, level, group_count)
    )


def _batch_rows(rows: Sequence[Row], decide: Callable[[int], Any]) -> List[Tuple[int, Any]]:
    """Map a per-level decision over rows, evaluating each level once.

    Ordering guarantee: the output preserves the input row order exactly
    (row *i* of the result pairs row *i* of the input with its decision);
    ``decide`` is invoked in first-appearance order of the distinct levels.
    Downstream booking code relies on this — enactment order is the row
    order the caller chose, never a hash order.
    """
    cache: Dict[int, Any] = {}
    out: List[Tuple[int, Any]] = []
    for count, level in rows:
        decision = cache.get(level)
        if decision is None:
            decision = decide(level)
            cache[level] = decision
        out.append((count, decision))
    return out


def merge_rows(rows: Sequence[Row]) -> List[Row]:
    """Coalesce rows that landed on the same level (state block compaction).

    Ordering guarantee: the merge is **stable by level** — counts for equal
    levels are summed in input order and the result is sorted by ascending
    level, so two row blocks with the same per-level populations merge to
    the *identical* list regardless of how their rows were ordered.  The
    columnar population engine relies on this for deterministic booking
    order; a homogeneous cohort (one distinct level) stays a single row
    forever either way.
    """
    counts: Dict[int, int] = {}
    for count, level in rows:
        counts[level] = counts.get(level, 0) + count
    return [(counts[level], level) for level in sorted(counts)]
