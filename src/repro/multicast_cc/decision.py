"""Pure FLID subscription-decision functions, scalar and batched.

The per-slot subscription logic of both protocol variants is a *pure*
function of what the receiver observed during the slot — no simulator state,
no I/O.  Historically that logic lived inline in the receiver classes; this
module extracts it so that the two receiver models share one implementation:

* the per-object receivers (:class:`~repro.multicast_cc.flid_dl.FlidDlReceiver`,
  :class:`~repro.multicast_cc.flid_ds.FlidDsReceiver`) apply the **scalar**
  form once per receiver per slot;
* the aggregated :mod:`~repro.multicast_cc.cohort` receivers apply the
  **batched** form over a columnar state block of ``(count, level)`` rows,
  evaluating each *distinct* subscription level once and sharing the outcome
  across every receiver in the row — per-slot cost O(distinct levels), not
  O(receivers).

The batched functions are defined to be exactly the scalar function mapped
over rows (the Hypothesis property tests in
``tests/multicast_cc/test_decision.py`` assert this), so aggregation can
never change a trajectory — only amortise its cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.delta.base import ReconstructionResult

__all__ = [
    "DlDecision",
    "ChurnAction",
    "decide_dl",
    "decide_dl_batch",
    "reconstruct_ds_batch",
    "merge_rows",
    "attack_target_level",
    "decide_inflated_join",
    "decide_inflated_join_batch",
    "mask_congestion",
    "churn_phase",
    "decide_churn",
    "decide_churn_batch",
]

#: One columnar row of a cohort state block: ``(receiver count, level)``.
Row = Tuple[int, int]


@dataclass(frozen=True)
class DlDecision:
    """Outcome of the FLID-DL subscription rules for one evaluated slot.

    ``leave_group`` / ``join_group`` name the (1-based) group whose IGMP
    membership must change; ``deaf_slots`` is how many slots past the
    evaluated one congestion signals should be ignored (the prune-latency
    deafness a decrease triggers).
    """

    next_level: int
    leave_group: Optional[int] = None
    join_group: Optional[int] = None
    deaf_slots: int = 0


def decide_dl(
    level: int,
    congested: bool,
    upgrade_authorized: Sequence[int],
    group_count: int,
) -> DlDecision:
    """Apply the three FLID-DL rules to one receiver's slot observation.

    * congested and above the minimal group → drop the top group (and stay
      deaf through the next slot while the prune takes effect);
    * loss-free with an authorised upgrade → join the next group;
    * otherwise → hold.
    """
    if congested:
        if level > 1:
            return DlDecision(
                next_level=level - 1, leave_group=level, deaf_slots=1
            )
        return DlDecision(next_level=level)
    upgrade_target = level + 1
    if upgrade_target <= group_count and upgrade_target in upgrade_authorized:
        return DlDecision(next_level=upgrade_target, join_group=upgrade_target)
    return DlDecision(next_level=level)


def decide_dl_batch(
    rows: Sequence[Row],
    congested: bool,
    upgrade_authorized: Sequence[int],
    group_count: int,
) -> List[Tuple[int, DlDecision]]:
    """Batched FLID-DL decision over ``(count, level)`` rows.

    Every distinct level is decided once via :func:`decide_dl` and the
    outcome shared by the row's whole count — equal to, but cheaper than,
    mapping the scalar function over ``count`` individual receivers.
    """
    cache: Dict[int, DlDecision] = {}
    out: List[Tuple[int, DlDecision]] = []
    for count, level in rows:
        decision = cache.get(level)
        if decision is None:
            decision = decide_dl(level, congested, upgrade_authorized, group_count)
            cache[level] = decision
        out.append((count, decision))
    return out


def reconstruct_ds_batch(
    rows: Sequence[Row],
    reconstruct: Callable[[int], ReconstructionResult],
) -> List[Tuple[int, ReconstructionResult]]:
    """Batched FLID-DS key reconstruction over ``(count, level)`` rows.

    ``reconstruct(level)`` is the scalar DELTA reconstruction for one
    receiver entitled to ``level`` (see
    :meth:`~repro.core.delta.layered.LayeredDeltaReceiver.reconstruct`); it
    is invoked once per distinct level and its result — keys and next level —
    is shared across the row, amortising the XOR folds and key submissions
    over the cohort.
    """
    cache: Dict[int, ReconstructionResult] = {}
    out: List[Tuple[int, ReconstructionResult]] = []
    for count, level in rows:
        result = cache.get(level)
        if result is None:
            result = reconstruct(level)
            cache[level] = result
        out.append((count, result))
    return out


# ----------------------------------------------------------------------
# attack decisions (pure forms of the batch-exact adversary strategies)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnAction:
    """Membership changes one churn-attack phase transition demands.

    ``join_groups`` / ``leave_groups`` list the (1-based) groups whose IGMP
    membership must change, in submission order; ``session_rejoin`` asks for
    a key-less SIGMA session-join (the grace-window vector of §3.2.2).
    """

    join_groups: Tuple[int, ...] = ()
    leave_groups: Tuple[int, ...] = ()
    session_rejoin: bool = False


def attack_target_level(intensity: float, group_count: int) -> int:
    """The subscription level an inflated-join attacker aims for.

    ``intensity`` scales against the session's group count (1.0 = everything)
    and the result is clamped into the valid ``1 .. group_count`` range.
    """
    target = round(intensity * group_count)
    return max(1, min(group_count, target))


def decide_inflated_join(level: int, target_level: int) -> DlDecision:
    """The frozen-subscription rule of the inflated-join attack (§2.1).

    Whatever the congestion state, the attacker pins its subscription at the
    inflated target — it never decreases and never needs an authorisation to
    sit at ``target_level``.  Pure counterpart of
    :class:`~repro.adversary.strategies.InflatedJoinStrategy`'s suppression.
    """
    return DlDecision(next_level=target_level)


def decide_inflated_join_batch(
    rows: Sequence[Row], target_level: int
) -> List[Tuple[int, DlDecision]]:
    """Batched inflated-join decision over ``(count, level)`` rows.

    Defined as :func:`decide_inflated_join` mapped over rows (evaluated once
    per distinct level), so an adversarial cohort of N attackers pins its
    state block exactly as N individual attackers would.
    """
    return _batch_rows(rows, lambda level: decide_inflated_join(level, target_level))


def mask_congestion(congested: bool, mode: str = "mask") -> bool:
    """The congestion verdict an ignore-congestion attacker lets through.

    ``mode="mask"`` rewrites every verdict to "no congestion" (the attacker's
    honest pipeline then acts on a lie); any other mode passes the verdict
    unchanged (the *hold* variant suppresses the decision instead).
    """
    if mode == "mask":
        return False
    return congested


def churn_phase(elapsed_s: float, period_s: float, duty: float) -> bool:
    """True while a churn attacker's flapping cycle is in its *high* phase.

    ``elapsed_s`` is time since attack onset; the cycle spends ``duty``
    (clamped to [0, 1]) of every ``period_s`` (floored to one millisecond)
    in the high phase.
    """
    period_s = max(1e-3, period_s)
    duty = min(1.0, max(0.0, duty))
    return (elapsed_s % period_s) < duty * period_s


def decide_churn(
    phase_high: bool,
    was_high: bool,
    entitled_level: int,
    group_count: int,
    joined: Sequence[int] = (),
) -> ChurnAction:
    """Membership changes for one churn-attack phase evaluation (§3.2.2).

    A rising edge joins every group and re-runs the key-less session-join; a
    falling edge abandons the previously joined groups above the attacker's
    legitimate entitlement (sorted, as the strategy submits them); inside a
    phase nothing changes.
    """
    if phase_high and not was_high:
        return ChurnAction(
            join_groups=tuple(range(1, group_count + 1)), session_rejoin=True
        )
    if not phase_high and was_high:
        return ChurnAction(
            leave_groups=tuple(
                group for group in sorted(joined) if group > entitled_level
            )
        )
    return ChurnAction()


def decide_churn_batch(
    rows: Sequence[Row],
    phase_high: bool,
    was_high: bool,
    entitled_level: int,
    group_count: int,
    joined: Sequence[int] = (),
) -> List[Tuple[int, ChurnAction]]:
    """Batched churn decision over ``(count, level)`` rows.

    The phase schedule is a pure function of time shared by every member of
    a homogeneous attacker cohort, so each distinct level maps to the same
    :func:`decide_churn` action — evaluated once and shared across the row.
    A homogeneous cohort is a single row, which is why the live
    :class:`~repro.adversary.strategies.ChurnStrategy` calls the scalar
    form exactly once per slot; this batched form is the general contract
    the Hypothesis properties pin to the scalar map.
    """
    return _batch_rows(
        rows,
        lambda _level: decide_churn(
            phase_high, was_high, entitled_level, group_count, joined
        ),
    )


def _batch_rows(rows: Sequence[Row], decide: Callable[[int], Any]) -> List[Tuple[int, Any]]:
    """Map a per-level decision over rows, evaluating each level once."""
    cache: Dict[int, Any] = {}
    out: List[Tuple[int, Any]] = []
    for count, level in rows:
        decision = cache.get(level)
        if decision is None:
            decision = decide(level)
            cache[level] = decision
        out.append((count, decision))
    return out


def merge_rows(rows: Sequence[Row]) -> List[Row]:
    """Coalesce rows that landed on the same level (state block compaction).

    Order follows first appearance of each level, so a homogeneous cohort
    stays a single row forever.
    """
    counts: Dict[int, int] = {}
    for count, level in rows:
        counts[level] = counts.get(level, 0) + count
    return [(count, level) for level, count in counts.items()]
