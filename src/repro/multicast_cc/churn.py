"""Cohort population churn: deterministic arrival/departure processes.

A :class:`ChurnProcess` describes how a cohort's membership evolves over the
session — continuous arrival/departure rates plus discrete *bursts* (the
flash-crowd case: the audience jumps from hundreds to a hundred thousand
members mid-session).  The process is **pure and deterministic**: population
is a closed-form function of elapsed time, with no random draws, so churned
scenarios keep the byte-determinism contract (``docs/determinism.md``)
across repeated runs and the serial-vs-pool runner paths.

The cohort receivers (:mod:`repro.multicast_cc.cohort`) sample the process
at slot-evaluation boundaries and book the membership delta through
member-weighted IGMP/SIGMA messages — see ``docs/scale.md`` for the exact
accounting semantics (arrivals adopt the cohort's current subscription
level; departures are booked as weighted IGMP leaves on the unprotected
variant and are silent under SIGMA, exactly like an individual receiver
that stops submitting keys behind a still-active interface).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

__all__ = ["ChurnProcess"]


@dataclass(frozen=True)
class ChurnProcess:
    """Deterministic membership dynamics of one cohort.

    ``arrival_rate`` / ``departure_rate`` are members per second, integrated
    (and floored) over the time since the cohort joined; ``burst`` is a
    tuple of ``(elapsed_s, member_delta)`` steps applied once their time has
    passed — a positive delta is a flash crowd, a negative one a mass
    departure.  Population never drops below one member (a cohort host
    cannot stand for an empty population).
    """

    arrival_rate: float = 0.0
    departure_rate: float = 0.0
    burst: Tuple[Tuple[float, int], ...] = ()

    def __post_init__(self) -> None:
        if self.arrival_rate < 0 or self.departure_rate < 0:
            raise ValueError("churn rates must be non-negative")
        object.__setattr__(
            self, "burst", tuple((float(t), int(d)) for t, d in self.burst)
        )
        for time_s, _delta in self.burst:
            if time_s < 0:
                raise ValueError("burst times must be non-negative")

    # ------------------------------------------------------------------
    def population_at(self, initial: int, elapsed_s: float) -> int:
        """Cohort population ``elapsed_s`` seconds after it joined.

        Closed-form and order-independent: rates are integrated from zero
        and every burst whose time has passed is applied, so sampling the
        process at any boundary sequence yields the same trajectory.
        """
        if elapsed_s < 0:
            return max(1, initial)
        population = initial
        population += math.floor(self.arrival_rate * elapsed_s)
        population -= math.floor(self.departure_rate * elapsed_s)
        population += sum(delta for time_s, delta in self.burst if time_s <= elapsed_s)
        return max(1, population)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (inverse of :meth:`from_dict`)."""
        return {
            "arrival_rate": self.arrival_rate,
            "departure_rate": self.departure_rate,
            "burst": [list(step) for step in self.burst],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChurnProcess":
        """Rebuild a churn process from its plain-data form."""
        return cls(
            arrival_rate=payload.get("arrival_rate", 0.0),
            departure_rate=payload.get("departure_rate", 0.0),
            burst=tuple(tuple(step) for step in payload.get("burst", ())),
        )
