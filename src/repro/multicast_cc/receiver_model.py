"""The receiver-model abstraction: how a session's population is realised.

A :class:`ReceiverModel` is the unit the experiment layer composes a
session's receiver population from:

* :class:`IndividualReceiver` — the historical default: one live receiver
  object (host + IGMP/SIGMA interface + FLID state machine) per end system.
  Every pre-existing scenario uses only this model, which is why all golden
  trace digests are unchanged by the refactor.
* :class:`ReceiverCohort` — one :mod:`~repro.multicast_cc.cohort` receiver
  standing for ``N`` homogeneous honest members, with per-slot cost
  amortised over the population.
* :class:`AdversarialCohort` — a :class:`ReceiverCohort` whose members mount
  a batch-exact attack stack (:mod:`repro.adversary.cohort`); the protection
  metrics weight its excess goodput by the attacker population.

The columnar engine's vectorised receivers
(:mod:`~repro.multicast_cc.vector`) are cohort subclasses and wrap into the
same :class:`ReceiverCohort` / :class:`AdversarialCohort` models — one model
per edge-router block, carrying that block's whole population.

All expose the same small surface — ``population``, the underlying
``receiver`` object, per-member and population-weighted goodput — so the
metrics/analysis layers never branch on the model kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple, runtime_checkable

from .receiver_base import LayeredReceiverBase

__all__ = ["ReceiverModel", "IndividualReceiver", "ReceiverCohort", "AdversarialCohort"]


@runtime_checkable
class ReceiverModel(Protocol):
    """What the experiment and analysis layers need from a population unit."""

    @property
    def population(self) -> int:
        """Number of end systems this model stands for."""
        ...

    @property
    def receiver(self) -> LayeredReceiverBase:
        """The live receiver object backing the model."""
        ...

    def average_rate_kbps(self, start_s: float, end_s: Optional[float] = None) -> float:
        """Per-member goodput over the interval, in Kbps."""
        ...

    def weighted_rate_kbps(self, start_s: float, end_s: Optional[float] = None) -> float:
        """Population-weighted goodput (per-member rate × population)."""
        ...

    def level_history(self) -> List[Tuple[float, int]]:
        """The (time, level) subscription trajectory shared by the members."""
        ...


@dataclass(frozen=True)
class _ModelBase:
    """Shared delegation: both models wrap exactly one receiver object."""

    receiver: LayeredReceiverBase

    def average_rate_kbps(self, start_s: float, end_s: Optional[float] = None) -> float:
        """Per-member goodput over the interval, in Kbps."""
        return self.receiver.average_rate_kbps(start_s, end_s)

    def weighted_rate_kbps(self, start_s: float, end_s: Optional[float] = None) -> float:
        """Population-weighted goodput over the interval, in Kbps."""
        return self.average_rate_kbps(start_s, end_s) * self.population

    def level_history(self) -> List[Tuple[float, int]]:
        """The (time, level) subscription trajectory of the member(s)."""
        return list(self.receiver.level_history)

    @property
    def population(self) -> int:
        """Number of end systems represented (overridden per model)."""
        raise NotImplementedError  # pragma: no cover - interface


class IndividualReceiver(_ModelBase):
    """One live receiver object per end system (the default model)."""

    @property
    def population(self) -> int:
        """An individual receiver always stands for exactly one end system."""
        return 1


class ReceiverCohort(_ModelBase):
    """One cohort receiver standing for ``N`` homogeneous honest members."""

    @property
    def population(self) -> int:
        """The cohort's member count, as carried by its receiver object."""
        return self.receiver.population


class AdversarialCohort(ReceiverCohort):
    """A cohort whose ``N`` members all mount the same batch-exact attack.

    Same aggregation surface as :class:`ReceiverCohort` — the distinct type
    is a marker so model-level tooling can tell attacker populations from
    honest ones without inspecting the wrapped receiver object (the
    protection pipeline itself resolves attackers from the session
    declaration; see ``repro.experiments.runner``).
    """
