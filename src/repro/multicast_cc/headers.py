"""Packet-header field names shared by the multicast congestion control code.

Keeping the header vocabulary in one place avoids subtle typos between the
senders (which write the headers), the receivers (which read them) and the
tests (which assert on them).  DELTA field names are re-exported from the
core package so the ECN scrambler and FLID-DS agree on them.
"""

from __future__ import annotations

from ..core.delta.ecn import COMPONENT_HEADER, DECREASE_HEADER

__all__ = [
    "SESSION",
    "GROUP",
    "SLOT",
    "GROUP_SEQ",
    "UPGRADE_GROUPS",
    "COMPONENT",
    "DECREASE",
    "CLOSING",
]

#: Session identifier (string) the packet belongs to.
SESSION = "flid_session"
#: 1-based group (layer) index within the session.
GROUP = "flid_group"
#: Sender-side time-slot index during which the packet was transmitted.
SLOT = "flid_slot"
#: Monotonic per-group sequence number (for loss detection).
GROUP_SEQ = "flid_group_seq"
#: Tuple of group indices whose upgrade the protocol authorises.  For FLID-DL
#: the authorisation applies to the end of the current slot; for FLID-DS it
#: applies to the governed slot (current + 2), matching the key pipeline.
UPGRADE_GROUPS = "flid_upgrade_groups"

#: DELTA component field (FLID-DS only).
COMPONENT = COMPONENT_HEADER
#: DELTA decrease field (FLID-DS only).
DECREASE = DECREASE_HEADER
#: True on the packet whose component closes the group's XOR sum for the slot.
CLOSING = "delta_closing"
