"""Misbehaving receivers — compatibility shims over the adversary subsystem.

The attack logic that used to live in three monolithic receiver subclasses
now lives in :mod:`repro.adversary`: composable
:class:`~repro.adversary.strategy.AttackStrategy` objects looked up by name
in the :data:`~repro.adversary.registry.ADVERSARIES` registry and driven by
the adversarial receivers.  The historical classes remain as thin shims that
assemble the equivalent strategy stacks, preserving their constructor
signatures and statistics attributes:

``InflatedSubscriptionFlidDlReceiver``
    ``inflated-join`` against the unprotected protocol — joins every group at
    the attack time and freezes the subscription there (Figure 1's ``F1``).

``InflatedSubscriptionFlidDsReceiver``
    The composite Figure 7 attacker against the protected protocol:
    ``inflated-join`` (bare IGMP joins, honest pipeline kept) +
    ``key-replay`` + ``key-guessing`` (§4.2).

``IgnoreCongestionFlidDlReceiver``
    ``ignore-congestion`` in its historical *hold* mode: never decrease on
    loss, only increase when authorised.

All adversary randomness flows through per-strategy seeded streams derived
from the network's experiment seed (never the global ``random`` module), so
attack runs are byte-deterministic across processes.
"""

from __future__ import annotations

import random
from typing import Optional

from ..adversary.receivers import AdversarialFlidDlReceiver, AdversarialFlidDsReceiver
from ..adversary.strategies import (
    IgnoreCongestionStrategy,
    InflatedJoinStrategy,
    KeyGuessingStrategy,
    KeyReplayStrategy,
)
from ..simulator.node import Host
from ..simulator.topology import Network
from .session import SessionSpec

__all__ = [
    "InflatedSubscriptionFlidDlReceiver",
    "InflatedSubscriptionFlidDsReceiver",
    "IgnoreCongestionFlidDlReceiver",
]


class InflatedSubscriptionFlidDlReceiver(AdversarialFlidDlReceiver):
    """FLID-DL receiver that joins every group at ``attack_start_s`` (Figure 1)."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        attack_start_s: float,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        strategy = InflatedJoinStrategy(
            start_s=attack_start_s,
            rng=network.random.stream(
                f"adversary:{spec.session_id}:{host.name}:0:inflated-join"
            ),
        )
        super().__init__(
            network, host, spec, strategies=[strategy], bin_width_s=bin_width_s, name=name
        )
        self.attack_start_s = attack_start_s


class InflatedSubscriptionFlidDsReceiver(AdversarialFlidDsReceiver):
    """FLID-DS receiver mounting the composite Figure 7 attack against SIGMA.

    The attacker keeps playing the honest protocol for the keys it can
    legitimately reconstruct (abandoning them would only hurt it) and layers
    three attack vectors on top: bare IGMP joins, replay of the keys it
    holds against higher groups, and random key guessing.
    """

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        attack_start_s: float,
        guesses_per_slot: int = 4,
        key_bits: int = 16,
        bin_width_s: float = 1.0,
        name: str = "",
        rng: Optional[random.Random] = None,
    ) -> None:
        def stream(index: int, strategy_name: str) -> random.Random:
            return network.random.stream(
                f"adversary:{spec.session_id}:{host.name}:{index}:{strategy_name}"
            )

        strategies = [
            InflatedJoinStrategy(
                start_s=attack_start_s,
                params={"suppress_honest": False},
                rng=stream(0, "inflated-join"),
            ),
            KeyReplayStrategy(start_s=attack_start_s, rng=stream(1, "key-replay")),
            KeyGuessingStrategy(
                start_s=attack_start_s,
                params={"guesses_per_slot": guesses_per_slot, "key_bits": key_bits},
                rng=rng if rng is not None else stream(2, "key-guessing"),
            ),
        ]
        super().__init__(
            network,
            host,
            spec,
            strategies=strategies,
            key_bits=key_bits,
            bin_width_s=bin_width_s,
            name=name,
        )
        self.attack_start_s = attack_start_s
        self.guesses_per_slot = guesses_per_slot

    @property
    def guess_attempts(self) -> int:
        return self._attack_ctx.guess_attempts if self._attack_ctx else 0

    @property
    def igmp_attempts(self) -> int:
        return self._attack_ctx.igmp_attempts if self._attack_ctx else 0


class IgnoreCongestionFlidDlReceiver(AdversarialFlidDlReceiver):
    """FLID-DL receiver that never decreases its subscription on loss."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        strategy = IgnoreCongestionStrategy(
            params={"mode": "hold"},
            rng=network.random.stream(
                f"adversary:{spec.session_id}:{host.name}:0:ignore-congestion"
            ),
        )
        super().__init__(
            network, host, spec, strategies=[strategy], bin_width_s=bin_width_s, name=name
        )
