"""Misbehaving receivers — the threat the paper defends against.

The paper's threat model (§2.1) is a *self-beneficial* receiver: it wants
more bandwidth for itself, not to destroy the network.  With multi-group
congestion control the cheapest such attack is **inflated subscription**:
ignore the subscription rules and join more groups than the congestion state
allows.

Three attacker models are provided:

``InflatedSubscriptionFlidDlReceiver``
    Attacks the unprotected protocol: at the attack time it IGMP-joins every
    group of its session and never leaves, regardless of loss.  This is the
    receiver ``F1`` of Figure 1.

``InflatedSubscriptionFlidDsReceiver``
    Mounts the same attack against the protected protocol: it keeps its
    legitimate key-based subscription (so it still gets its fair share), but
    additionally tries to open higher groups by sending bare IGMP joins
    (which a SIGMA router ignores), by replaying the keys it does hold, and
    by guessing random keys (§4.2's guessing attack).  This is the receiver
    ``F1`` of Figure 7.

``IgnoreCongestionFlidDlReceiver``
    A milder misbehaviour: it never decreases its subscription on loss (but
    only increases when authorised).  Used by ablation benchmarks to show
    that DELTA/SIGMA also bound this behaviour, since keys for the lost
    level simply stop being reconstructible.
"""

from __future__ import annotations

import random
from typing import Optional

from ..simulator.node import Host
from ..simulator.topology import Network
from .flid_dl import FlidDlReceiver
from .flid_ds import FlidDsReceiver
from .receiver_base import SlotRecord
from .session import SessionSpec

__all__ = [
    "InflatedSubscriptionFlidDlReceiver",
    "InflatedSubscriptionFlidDsReceiver",
    "IgnoreCongestionFlidDlReceiver",
]


class InflatedSubscriptionFlidDlReceiver(FlidDlReceiver):
    """FLID-DL receiver that joins every group at ``attack_start_s`` (Figure 1)."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        attack_start_s: float,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(network, host, spec, bin_width_s=bin_width_s, name=name)
        self.attack_start_s = attack_start_s
        self.attacking = False

    def _apply_decision(self, evaluated_slot: int, record: SlotRecord, congested: bool) -> None:
        if self.sim.now >= self.attack_start_s:
            if not self.attacking:
                self._launch_attack()
            return  # ignore every subscription rule while attacking
        super()._apply_decision(evaluated_slot, record, congested)

    def _launch_attack(self) -> None:
        """Join every group of the session and freeze the subscription there."""
        self.attacking = True
        if self.igmp is None:
            return
        for group in range(1, self.spec.group_count + 1):
            self.igmp.join(self.spec.address_of(group))
        self._set_level(self.spec.group_count)


class InflatedSubscriptionFlidDsReceiver(FlidDsReceiver):
    """FLID-DS receiver that attempts the same inflation against SIGMA (Figure 7).

    The attacker keeps playing the honest protocol for the keys it can
    legitimately reconstruct (abandoning them would only hurt it) and layers
    three attack vectors on top: bare IGMP joins, replay of the keys it
    holds against higher groups, and random key guessing.
    """

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        attack_start_s: float,
        guesses_per_slot: int = 4,
        key_bits: int = 16,
        bin_width_s: float = 1.0,
        name: str = "",
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(
            network, host, spec, key_bits=key_bits, bin_width_s=bin_width_s, name=name
        )
        self.attack_start_s = attack_start_s
        self.guesses_per_slot = guesses_per_slot
        self.attacking = False
        self.guess_attempts = 0
        self.igmp_attempts = 0
        self._rng = rng or network.random.stream(f"attacker-{spec.session_id}-{host.name}")

    def _apply_decision(self, evaluated_slot: int, record: SlotRecord, congested: bool) -> None:
        # The attacker still runs the honest pipeline: its fair-share keys are
        # the only access it is guaranteed to keep.
        super()._apply_decision(evaluated_slot, record, congested)
        if self.sim.now < self.attack_start_s or self.sigma is None:
            return
        if not self.attacking:
            self.attacking = True
            self._attempt_igmp_inflation()
        self._attempt_key_attacks(evaluated_slot + 2)

    # ------------------------------------------------------------------
    def _attempt_igmp_inflation(self) -> None:
        """Send bare IGMP-style joins for every group (SIGMA routers ignore them)."""
        manager = self.host.edge_router.group_manager if self.host.edge_router else None
        if manager is None or self.host.control is None:
            return
        for group in range(1, self.spec.group_count + 1):
            self.igmp_attempts += 1
            self.host.control.send(
                manager.handle_join, self.host, self.spec.address_of(group)
            )

    def _attempt_key_attacks(self, governed_slot: int) -> None:
        """Replay held keys and guess random keys for every forbidden group."""
        entitled = self.entitled_level(governed_slot)
        forbidden = range(entitled + 1, self.spec.group_count + 1)
        pairs = []
        held_keys = [key for _, key in self._held_keys(governed_slot)]
        for group in forbidden:
            address = self.spec.address_of(group)
            # Replay: submit a key that is valid for a *lower* group in the
            # hope the router confuses scopes (it does not: keys are stored
            # per group address).
            for key in held_keys[: 1]:
                pairs.append((address, key))
            # Guessing: uniformly random values over the key space.
            for _ in range(self.guesses_per_slot):
                self.guess_attempts += 1
                pairs.append((address, self._rng.getrandbits(self.key_bits)))
        if pairs:
            self.sigma.subscribe(governed_slot, pairs)

    def _held_keys(self, governed_slot: int) -> list[tuple[int, int]]:
        """Keys the attacker legitimately reconstructed for the governed slot.

        The honest pipeline has already submitted them; they are re-derived
        here only to feed the replay vector.
        """
        # The base class does not retain reconstructed keys, so the attacker
        # simply replays an arbitrary constant when it has nothing cached.
        return []


class IgnoreCongestionFlidDlReceiver(FlidDlReceiver):
    """FLID-DL receiver that never decreases its subscription on loss."""

    def _apply_decision(self, evaluated_slot: int, record: SlotRecord, congested: bool) -> None:
        if congested:
            return  # misbehaviour: hold the subscription instead of dropping
        super()._apply_decision(evaluated_slot, record, congested)
