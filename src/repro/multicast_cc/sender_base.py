"""Common machinery of the FLID-DL and FLID-DS senders.

A layered-multicast sender transmits every group (layer) of its session at
the layer's rate, stamping each packet with the session id, group index,
slot index, per-group sequence number and the slot's upgrade-authorisation
signal.  FLID-DS additionally decorates packets with DELTA fields and
announces keys to edge routers, which it does by overriding the two hooks
:meth:`_on_slot_start` and :meth:`_decorate_packet`.

To keep large experiments tractable the sender can *suppress* transmission of
groups that currently have no subscribed receivers (the packets would be
pruned at the first-hop router anyway); this is purely a simulation-cost
optimisation and is on by default.  Sequence numbers only advance for packets
actually transmitted so suppression never manufactures phantom losses.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.timeslot import SlotClock
from ..simulator.monitors import OverheadAccumulator
from ..simulator.node import Host
from ..simulator.packet import Packet
from ..simulator.topology import Network
from . import headers
from .session import SessionSpec

__all__ = ["LayeredSenderBase"]


class LayeredSenderBase:
    """Sends the layered groups of one session and draws upgrade signals."""

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        rng: Optional[random.Random] = None,
        suppress_unsubscribed_groups: bool = True,
        overhead: Optional[OverheadAccumulator] = None,
    ) -> None:
        if not spec.group_addresses:
            raise ValueError("session spec must have group addresses assigned")
        self.network = network
        self.host = host
        self.spec = spec
        self.sim = host.sim
        self.rng = rng or network.random.stream(f"flid-sender-{spec.session_id}")
        self.suppress_unsubscribed_groups = suppress_unsubscribed_groups
        self.overhead = overhead

        self.slot_clock = SlotClock(self.sim, spec.slot_duration_s)
        self.slot_clock.on_slot_start(self._on_slot_start)

        # Per-group constants, precomputed once: the transmit loop runs per
        # packet and must not re-derive rates or re-validate addresses.
        groups = range(1, spec.group_count + 1)
        self._group_address = [None] + [spec.address_of(g) for g in groups]
        self._interval_s = [0.0] + [spec.packet_interval_s(g) for g in groups]
        self._pool = network.multicast.packet_pool

        self._group_seq: Dict[int, int] = {g: 0 for g in range(1, spec.group_count + 1)}
        self._current_upgrades: Tuple[int, ...] = ()
        self._started = False
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_suppressed = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, delay_s: float = 0.0) -> None:
        """Begin transmitting all groups ``delay_s`` seconds from now."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(delay_s, self._bootstrap)

    def _bootstrap(self) -> None:
        self._current_upgrades = self._draw_upgrades()
        self._on_slot_start(self.slot_clock.current_slot)
        self.slot_clock.start()
        for group in range(1, self.spec.group_count + 1):
            # Stagger group start times slightly so slot boundaries do not see
            # synchronised bursts across layers.
            offset = self.rng.uniform(0.0, self.spec.packet_interval_s(group))
            self.sim.call_after(offset, self._transmit_group, group)

    def stop(self) -> None:
        self._started = False
        self.slot_clock.stop()

    # ------------------------------------------------------------------
    # per-slot behaviour (overridden by FLID-DS)
    # ------------------------------------------------------------------
    def _draw_upgrades(self) -> Tuple[int, ...]:
        """Groups whose upgrade the protocol authorises for the coming period."""
        authorized: List[int] = []
        for group in range(2, self.spec.group_count + 1):
            if self.rng.random() < self.spec.upgrade_probability(group):
                authorized.append(group)
        return tuple(authorized)

    def _on_slot_start(self, slot: int) -> None:
        """Hook invoked at every slot boundary; the base draws upgrade signals."""
        self._current_upgrades = self._draw_upgrades()

    def _decorate_packet(self, packet: Packet, group: int, is_last_in_slot: bool) -> None:
        """Hook for subclasses to add protocol-specific fields (DELTA)."""
        if self.overhead is not None:
            self.overhead.record_data_packet(packet.size_bits, delta_bits=0)

    # ------------------------------------------------------------------
    # transmission loop
    # ------------------------------------------------------------------
    def _transmit_group(self, group: int) -> None:
        if not self._started:
            return
        interval = self._interval_s[group]
        self._send_group_packet(group, interval)
        # Jitter the spacing by ±10 % around the nominal interval.  The mean
        # rate is unchanged, but the de-phasing prevents the strictly periodic
        # layer schedules from locking competing TCP flows out of the
        # drop-tail bottleneck queue.
        jittered = interval * self.rng.uniform(0.9, 1.1)
        self.sim.call_after(jittered, self._transmit_group, group)

    def _has_subscribers(self, group: int) -> bool:
        return self.network.multicast.has_members(self._group_address[group])

    def _send_group_packet(self, group: int, interval: float) -> None:
        if self.suppress_unsubscribed_groups and not self._has_subscribers(group):
            self.packets_suppressed += 1
            return
        slot = self.slot_clock.current_slot
        slot_end = self.slot_clock.end_of(slot)
        is_last_in_slot = (self.sim.now + interval) >= (slot_end - 1e-9)
        seq = self._group_seq[group]
        self._group_seq[group] = seq + 1
        # DATA packets dominate the allocation profile; draw them from the
        # network's pool (the forwarding plane recycles them when dead).
        packet = self._pool.acquire(
            source=self.host.address,
            destination=self._group_address[group],
            size_bytes=self.spec.packet_bytes,
            protocol="flid",
            headers={
                headers.SESSION: self.spec.session_id,
                headers.GROUP: group,
                headers.SLOT: slot,
                headers.GROUP_SEQ: seq,
                headers.UPGRADE_GROUPS: self._current_upgrades,
                headers.CLOSING: is_last_in_slot,
            },
            created_at=self.sim.now,
        )
        self._decorate_packet(packet, group, is_last_in_slot)
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        self.host.send(packet)

    # ------------------------------------------------------------------
    @property
    def current_upgrades(self) -> Tuple[int, ...]:
        """Upgrade authorisations in force for the current slot."""
        return self._current_upgrades
