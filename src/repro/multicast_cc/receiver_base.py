"""Common machinery of the FLID-DL and FLID-DS receivers.

A layered-multicast receiver collects the packets of its subscribed groups,
detects losses through per-group sequence gaps (and through starvation of a
group it has been receiving), gathers the slot's upgrade-authorisation
signals, and at the end of every slot decides whether to decrease, hold or
increase its subscription level.

Packets are grouped by the *slot index stamped by the sender* rather than by
local arrival time, and a slot is evaluated a small guard interval after its
nominal end; this absorbs propagation and queueing skew so that the DELTA key
reconstruction in FLID-DS sees exactly the per-slot packet sets the sender
used to define the keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..simulator.engine import PeriodicTimer
from ..simulator.monitors import ThroughputMonitor
from ..simulator.node import Host, PacketAgent
from ..simulator.packet import Packet
from . import headers
from .session import SessionSpec

__all__ = ["SlotRecord", "LayeredReceiverBase"]

#: Guard added after a slot's nominal end before it is evaluated, sized to
#: exceed the propagation plus typical queueing delay of the §5.1 topology.
DEFAULT_GUARD_S = 0.12


@dataclass
class SlotRecord:
    """Everything the receiver observed about one sender slot."""

    slot: int
    #: Per-group list of (sequence, component, decrease) tuples in arrival order.
    packets: Dict[int, List[Tuple[int, Optional[int], Optional[int]]]] = field(default_factory=dict)
    #: Groups in which a sequence gap was detected.
    gap_groups: Set[int] = field(default_factory=set)
    #: Groups for which the slot's closing (last) packet was received.
    closing_seen: Set[int] = field(default_factory=set)
    #: Union of the upgrade-authorisation signals seen on packets of the slot.
    upgrade_groups: Set[int] = field(default_factory=set)
    bytes_received: int = 0

    def received_groups(self) -> Set[int]:
        return {g for g, pkts in self.packets.items() if pkts}

    def components(self) -> Dict[int, List[int]]:
        return {
            g: [c for (_, c, _) in pkts if c is not None]
            for g, pkts in self.packets.items()
        }

    def decrease_fields(self) -> Dict[int, List[int]]:
        return {
            g: [d for (_, _, d) in pkts if d is not None]
            for g, pkts in self.packets.items()
        }


class LayeredReceiverBase(PacketAgent):
    """Receiver-driven layered congestion control (shared FLID logic)."""

    #: Number of actual receivers this object represents.  Per-object
    #: receivers are exactly one; the :mod:`~repro.multicast_cc.cohort`
    #: subclasses override it with their aggregated population, and the
    #: analysis layer weights goodput/protection metrics by it.
    population: int = 1

    def __init__(
        self,
        host: Host,
        spec: SessionSpec,
        bin_width_s: float = 1.0,
        guard_s: float = DEFAULT_GUARD_S,
        name: str = "",
    ) -> None:
        if not spec.group_addresses:
            raise ValueError("session spec must have group addresses assigned")
        self.host = host
        self.spec = spec
        self.sim = host.sim
        self.guard_s = guard_s
        self.name = name or f"{spec.session_id}-rx-{host.name}"
        self.monitor = ThroughputMonitor(self.sim, bin_width_s=bin_width_s, name=self.name)

        #: Current subscription level (number of groups the receiver believes
        #: it is entitled to).  Level 0 means "not yet admitted".
        self.level = 0
        self._slots: Dict[int, SlotRecord] = {}
        #: Per-group (last sequence seen, slot in which it was seen); used for
        #: gap detection with automatic re-baselining after an absence.
        self._last_seen: Dict[int, Tuple[int, int]] = {}
        #: Groups from which packets have ever been received (starvation of a
        #: never-seen group is join latency, not congestion).
        self._seen_groups: Set[int] = set()
        self._timer: Optional[PeriodicTimer] = None
        self._started_at: Optional[float] = None
        self._last_processed_slot = -1

        #: Slots up to and including this index ignore congestion signals.  A
        #: decrease sets it so that one congestion episode (which persists
        #: until the subscription change actually relieves the bottleneck)
        #: does not trigger a cascade of multi-level drops — the role played
        #: in FLID-DL by dynamic layering's implicit, immediate rate decay.
        self._deaf_until_slot = -1

        # statistics
        self.decreases = 0
        self.increases = 0
        self.congested_slots = 0
        self.level_history: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, delay_s: float = 0.0) -> None:
        """Join the session ``delay_s`` seconds from now."""
        self.sim.schedule(delay_s, self._bootstrap)

    def _bootstrap(self) -> None:
        self._started_at = self.sim.now
        for group in range(1, self.spec.group_count + 1):
            self.host.register_group_agent(self.spec.address_of(group), self)
        self._join_session()
        self._set_level(1)
        slot_duration = self.spec.slot_duration_s
        current_slot = int(self.sim.now / slot_duration)
        self._last_processed_slot = current_slot - 1
        first_delay = (current_slot + 1) * slot_duration + self.guard_s - self.sim.now
        self._timer = PeriodicTimer(
            self.sim, slot_duration, self._on_timer, first_delay=max(first_delay, 1e-6)
        )
        self._timer.start()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    # ------------------------------------------------------------------
    # hooks implemented by FLID-DL / FLID-DS subclasses
    # ------------------------------------------------------------------
    def _join_session(self) -> None:  # pragma: no cover - interface
        """Perform the protocol's admission step (IGMP join or SIGMA session-join)."""
        raise NotImplementedError

    def _apply_decision(self, evaluated_slot: int, record: SlotRecord, congested: bool) -> None:
        """Subscription-control reaction to one evaluated slot."""
        raise NotImplementedError  # pragma: no cover - interface

    # ------------------------------------------------------------------
    # packet path
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        if packet.headers.get(headers.SESSION) != self.spec.session_id:
            return
        group = packet.headers[headers.GROUP]
        slot = packet.headers[headers.SLOT]
        seq = packet.headers[headers.GROUP_SEQ]
        self.monitor.record(packet.size_bytes)
        self._seen_groups.add(group)

        record = self._slots.setdefault(slot, SlotRecord(slot=slot))
        record.bytes_received += packet.size_bytes
        record.packets.setdefault(group, []).append(
            (
                seq,
                packet.headers.get(headers.COMPONENT),
                packet.headers.get(headers.DECREASE),
            )
        )
        record.upgrade_groups.update(packet.headers.get(headers.UPGRADE_GROUPS, ()))
        if packet.headers.get(headers.CLOSING):
            record.closing_seen.add(group)

        # Gap detection with re-baselining: a sequence jump only counts as a
        # loss when the previous packet of the group was seen in this slot or
        # the one before it; after a longer absence (the receiver had left the
        # group) the baseline is stale and the jump is not a loss.
        previous = self._last_seen.get(group)
        if previous is not None:
            last_seq, last_slot = previous
            if last_slot >= slot - 1 and seq > last_seq + 1:
                record.gap_groups.add(group)
        if previous is None or seq > previous[0]:
            self._last_seen[group] = (seq, slot)

    # ------------------------------------------------------------------
    # slot evaluation
    # ------------------------------------------------------------------
    def _on_timer(self) -> None:
        slot_duration = self.spec.slot_duration_s
        ready_until = int((self.sim.now - self.guard_s) / slot_duration) - 1
        while self._last_processed_slot < ready_until:
            self._last_processed_slot += 1
            self._evaluate_slot(self._last_processed_slot)

    def _evaluate_slot(self, slot: int) -> None:
        record = self._slots.pop(slot, SlotRecord(slot=slot))
        congested = self._is_congested(record)
        if congested:
            self.congested_slots += 1
            if slot <= self._deaf_until_slot:
                # Still inside the deaf period of a previous decrease: the
                # congestion is (most likely) the tail of the same episode.
                congested = False
        self._apply_decision(slot, record, congested)

    def _enter_deaf_period(self, last_deaf_slot: int) -> None:
        """Ignore congestion through ``last_deaf_slot`` (inclusive)."""
        self._deaf_until_slot = max(self._deaf_until_slot, last_deaf_slot)

    def _entitled_groups(self, record: SlotRecord) -> Set[int]:
        """Groups whose losses count as congestion for this slot.

        The base implementation is the receiver's current subscription level;
        FLID-DS refines it with its per-slot entitlement schedule.  Groups the
        receiver has deliberately left (or never joined) do not count — their
        missing packets are a consequence of the subscription change, not of
        congestion.
        """
        return set(range(1, self.level + 1))

    def _loss_signal_groups(self, record: SlotRecord) -> Set[int]:
        """Entitled groups with a detected sequence gap or tail loss."""
        return (set(record.gap_groups) | self._tail_loss_groups(record)) & self._entitled_groups(record)

    def _starved_groups(self, record: SlotRecord) -> Set[int]:
        """Entitled, previously-seen groups that went completely silent."""
        received = record.received_groups()
        return {
            group
            for group in self._entitled_groups(record)
            if group in self._seen_groups and group not in received
        }

    def _is_congested(self, record: SlotRecord) -> bool:
        """Single-loss congestion definition plus starvation of a live group."""
        if self._loss_signal_groups(record):
            return True
        # Starvation: a group we are entitled to and have received before went
        # completely silent for a slot.  A fully established level losing every
        # packet of a layer is congestion, not join latency.
        if self._started_at is not None:
            established = self.sim.now - self._started_at > 2 * self.spec.slot_duration_s
            if established and self._starved_groups(record):
                return True
        return False

    def _tail_loss_groups(self, record: SlotRecord) -> Set[int]:
        """Groups whose closing packet is missing despite other packets arriving.

        The sender marks the last packet of every (group, slot); a group with
        traffic but no closing marker lost its tail, which per-sequence gap
        detection alone cannot see until the next slot.
        """
        return {
            group
            for group, pkts in record.packets.items()
            if pkts and group not in record.closing_seen
        }

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _set_level(self, level: int) -> None:
        level = max(0, min(level, self.spec.group_count))
        if level > self.level:
            self.increases += 1
        elif level < self.level:
            self.decreases += 1
        self.level = level
        self.level_history.append((self.sim.now, level))

    def average_rate_kbps(self, start_s: float = 0.0, end_s: Optional[float] = None) -> float:
        """Average goodput of this receiver over the interval, in Kbps."""
        return self.monitor.average_rate_kbps(start_s, end_s)
