"""Columnar population state: every cohort of a scenario in one table.

The cohort model (:mod:`~repro.multicast_cc.cohort`) amortises a homogeneous
population behind a per-cohort receiver *object* — which is what caps
sessions around 100k receivers: with thousands of cohorts the per-slot cost
becomes thousands of Python method calls again.  This module holds the
population state *columnar* instead:

* a :class:`PopulationTable` owns one :class:`PopulationBlock` per
  ``(router, session)`` placement — contiguous ``count`` / ``level`` /
  ``phase`` / ``target`` columns covering every cohort row at that edge;
* the vectorised receivers (:mod:`~repro.multicast_cc.vector`) advance a
  whole block through the array-form decision rules of
  :mod:`~repro.multicast_cc.decision` in **one pass per slot**, then emit a
  single member-weighted IGMP/SIGMA booking for the block;
* columns are numpy ``int64`` arrays when numpy is importable and plain
  :class:`array.array` ``'q'`` columns otherwise — numpy is an *optional*
  accelerator, never a dependency.  ``REPRO_POPULATION_BACKEND=numpy`` or
  ``=fallback`` forces the choice (CI runs the cohort tests on both).

Exactness is inherited from the cohort contract (``docs/scale.md``): within
a block every row is homogeneous (honest or batch-exact adversarial, same
router, same start, lossless access links), so the array rules reproduce
what each member — and therefore each per-cohort object — would have
decided, byte for byte.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, Iterator, List, Sequence, Tuple, Union

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_POPULATION_BACKEND
    _np = None

__all__ = [
    "BACKEND_ENV_VAR",
    "active_backend",
    "numpy_available",
    "split_counts",
    "PopulationBlock",
    "PopulationTable",
]

#: Environment variable forcing the column backend (``numpy`` | ``fallback``).
BACKEND_ENV_VAR = "REPRO_POPULATION_BACKEND"

#: One columnar row: ``(receiver count, subscription level)``.
Row = Tuple[int, int]

#: A column in either backend flavour.
Column = Union["array", "object"]


def numpy_available() -> bool:
    """True when the numpy accelerator backend can be used at all."""
    return _np is not None


def active_backend() -> str:
    """Resolve the column backend: ``"numpy"`` or ``"fallback"``.

    Defaults to numpy when importable; :data:`BACKEND_ENV_VAR` overrides the
    choice in either direction so CI can pin the pure-stdlib path.
    """
    choice = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if choice == "fallback":
        return "fallback"
    if choice == "numpy":
        if _np is None:
            raise RuntimeError(
                f"{BACKEND_ENV_VAR}=numpy requested but numpy is not importable"
            )
        return "numpy"
    if choice:
        raise ValueError(
            f"unknown {BACKEND_ENV_VAR} value {choice!r}; "
            "expected 'numpy' or 'fallback'"
        )
    return "numpy" if _np is not None else "fallback"


def split_counts(count: int, cohorts: int) -> List[int]:
    """Split ``count`` members into ``cohorts`` as-even integer chunks.

    The first ``count % cohorts`` chunks get the extra member, so the split
    is deterministic and order-stable — the same declaration always yields
    the same rows (a determinism-contract requirement for booking order).
    """
    if cohorts < 1 or count < cohorts:
        raise ValueError(f"cannot split {count} members into {cohorts} cohorts")
    base, extra = divmod(count, cohorts)
    return [base + 1 if index < extra else base for index in range(cohorts)]


def _make_column(values: Sequence[int], backend: str) -> Column:
    """Materialise one signed-64-bit column in the chosen backend."""
    if backend == "numpy":
        return _np.asarray(list(values), dtype=_np.int64)
    return array("q", values)


class PopulationBlock:
    """All cohort rows of one ``(router, session)`` placement, columnar.

    A block is the unit a vectorised receiver advances per slot: one
    ``counts`` column (fixed at allocation), one mutable ``levels`` column,
    plus ``phases`` (the churn-cycle flag of the batch-exact churn rule) and
    ``targets`` (the pinned level of an attack strategy).  Rows within a
    block share one host/interface, so the *homogeneity invariant* of the
    cohort model applies block-wide: :meth:`require_uniform` is the columnar
    analogue of the cohort's single-row guard.
    """

    __slots__ = ("router", "session", "population", "_backend", "_counts", "_levels", "_phases", "_targets")

    def __init__(self, router: str, session: str, counts: Sequence[int], backend: str) -> None:
        """Allocate columns for ``counts`` cohort rows placed at ``router``."""
        counts = [int(count) for count in counts]
        if not counts or any(count < 1 for count in counts):
            raise ValueError("a population block needs >=1 rows of >=1 members")
        self.router = router
        self.session = session
        #: Total end systems across every row of the block.
        self.population = sum(counts)
        self._backend = backend
        self._counts = _make_column(counts, backend)
        self._levels = _make_column([0] * len(counts), backend)
        self._phases = _make_column([0] * len(counts), backend)
        self._targets = _make_column([0] * len(counts), backend)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of cohort rows (not members) in the block."""
        return len(self._counts)

    @property
    def backend(self) -> str:
        """The column backend this block was allocated on."""
        return self._backend

    def counts(self) -> Column:
        """The immutable per-row member-count column."""
        return self._counts

    def levels(self) -> Column:
        """The per-row subscription-level column (mutate via the setters)."""
        return self._levels

    def phases(self) -> Column:
        """The per-row churn-phase flag column (0 = low, 1 = high)."""
        return self._phases

    def targets(self) -> Column:
        """The per-row pinned attack-target column (0 = no pin)."""
        return self._targets

    # ------------------------------------------------------------------
    def _store(self, name: str, values: Union[int, Sequence[int]]) -> None:
        column = getattr(self, name)
        if isinstance(values, int):
            if self._backend == "numpy":
                column[:] = values
            else:
                for index in range(len(column)):
                    column[index] = values
            return
        if len(values) != len(column):
            raise ValueError(
                f"column length mismatch: got {len(values)} values for "
                f"{len(column)} rows"
            )
        if self._backend == "numpy":
            column[:] = _np.asarray(values, dtype=_np.int64)
        else:
            for index, value in enumerate(values):
                column[index] = int(value)

    def set_levels(self, values: Union[int, Sequence[int]]) -> None:
        """Overwrite the level column with a scalar or a same-length column."""
        self._store("_levels", values)

    def set_phases(self, values: Union[int, Sequence[int]]) -> None:
        """Overwrite the churn-phase column (scalar or same-length column)."""
        self._store("_phases", values)

    def set_targets(self, values: Union[int, Sequence[int]]) -> None:
        """Overwrite the attack-target column (scalar or same-length column)."""
        self._store("_targets", values)

    # ------------------------------------------------------------------
    def rows(self) -> List[Row]:
        """The block as ``(count, level)`` rows, in stable row order."""
        return [
            (int(count), int(level))
            for count, level in zip(self._counts, self._levels)
        ]

    def require_uniform(self) -> int:
        """Return the single level every row sits at, or fail loudly.

        The columnar analogue of the cohort model's single-row guard: the
        block drives one shared IGMP/SIGMA interface, which can only
        represent one membership set.  Homogeneous blocks never split; a
        split is a bug, not a state to paper over.
        """
        if self._backend == "numpy":
            first = int(self._levels[0])
            if bool((self._levels != first).any()):
                raise RuntimeError(
                    f"population block at {self.router!r} split across levels "
                    f"({self.rows()!r}); heterogeneous members must be "
                    "separate blocks or individuals"
                )
            return first
        first = self._levels[0]
        for level in self._levels:
            if level != first:
                raise RuntimeError(
                    f"population block at {self.router!r} split across levels "
                    f"({self.rows()!r}); heterogeneous members must be "
                    "separate blocks or individuals"
                )
        return first


class PopulationTable:
    """Every population block of one scenario, keyed ``(router, session)``.

    The table is the scenario-level registry the vectorised receivers
    allocate their blocks from; iterating :meth:`blocks` visits allocation
    order (deterministic — spec declaration order), which is what keeps the
    bulk IGMP/SIGMA booking order byte-stable across runs and processes.
    """

    def __init__(self, backend: str = "") -> None:
        """Create an empty table on ``backend`` (default: :func:`active_backend`)."""
        self.backend = backend or active_backend()
        self._blocks: Dict[Tuple[str, str], List[PopulationBlock]] = {}
        self._order: List[PopulationBlock] = []

    def allocate(self, router: str, session: str, counts: Sequence[int]) -> PopulationBlock:
        """Allocate (and register) the block for ``counts`` rows at ``router``."""
        block = PopulationBlock(router, session, counts, self.backend)
        self._blocks.setdefault((router, session), []).append(block)
        self._order.append(block)
        return block

    def blocks(self) -> Iterator[PopulationBlock]:
        """All blocks in allocation order."""
        return iter(self._order)

    def blocks_for(self, router: str, session: str) -> Tuple[PopulationBlock, ...]:
        """The blocks allocated for one ``(router, session)`` placement."""
        return tuple(self._blocks.get((router, session), ()))

    def __len__(self) -> int:
        """Number of allocated blocks."""
        return len(self._order)

    @property
    def population(self) -> int:
        """Total end systems across every block in the table."""
        return sum(block.population for block in self._order)

    @property
    def rows(self) -> int:
        """Total cohort rows across every block in the table."""
        return sum(len(block) for block in self._order)
