"""Vectorised population receivers: many cohorts, one pass per slot.

The per-cohort receivers of :mod:`~repro.multicast_cc.cohort` amortise a
population over one *object* — which reintroduces O(cohorts) Python work
per slot once a scenario declares thousands of cohorts (thousands of slot
timers, interfaces and per-object decision pipelines).  The vectorised
receivers collapse that: **one receiver per edge router** carries every
cohort placed there as rows of a
:class:`~repro.multicast_cc.population.PopulationBlock`, and each slot
advances the whole block through the array-form rules of
:mod:`~repro.multicast_cc.decision` (``decide_dl_array`` and friends) in a
single pass — O(edge routers) Python objects however many cohorts the
population splits into.

The block shares one host/IGMP/SIGMA interface, so the cohort model's
*homogeneity invariant* applies block-wide: every row must sit at the same
subscription level (``PopulationBlock.require_uniform``, the columnar
analogue of the cohort's single-row guard).  That is guaranteed by
construction for the populations the spec layer admits — honest rows (or a
batch-exact attack stack) behind one router with one start time and
lossless access links all observe the same slots, so the deterministic
rules keep the level column uniform forever — and the guard fails loudly if
a future change breaks it.

Exactness therefore reduces to the cohort contract (``docs/scale.md``):
``tests/experiments/test_vector_equivalence.py`` asserts vector == cohort
== individual trajectories and counters for small N, on both column
backends.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..simulator.node import Host
from ..simulator.topology import Network
from .cohort import CohortFlidDlReceiver, CohortFlidDsReceiver, _require_single_row
from .decision import decide_dl, decide_dl_array
from .population import PopulationBlock, PopulationTable
from .receiver_base import SlotRecord
from .session import SessionSpec

__all__ = ["VectorFlidDlReceiver", "VectorFlidDsReceiver"]


class _VectorBlockSupport:
    """Columnar-block plumbing shared by both vectorised receivers."""

    _block: PopulationBlock

    def _init_block(
        self, table: PopulationTable, router: str, counts: Sequence[int]
    ) -> None:
        """Allocate this receiver's rows in the scenario's population table."""
        self._block = table.allocate(router, self.spec.session_id, counts)

    def attach_churn(self, process) -> None:
        """Vector blocks cannot churn (a churn process drives one cohort).

        The churn bookkeeping rewrites a single cohort's row and host
        weight; a multi-row block has no well-defined row to grow or
        shrink.  Declare the churned audience as its own ``model="cohort"``
        block next to the vectorised steady population.
        """
        raise ValueError(
            "vector population blocks cannot churn; declare the churned "
            "audience as a separate model=\"cohort\" block"
        )

    def state_rows(self) -> List[Tuple[int, int]]:
        """The block's ``(count, level)`` rows — per-cohort granularity."""
        return self._block.rows()

    def _sync_block(self) -> None:
        """Write the enacted (merged, single-row) level back to the column."""
        _require_single_row(self._rows)
        self._block.set_levels(int(self._rows[0][1]))


class VectorFlidDlReceiver(_VectorBlockSupport, CohortFlidDlReceiver):
    """FLID-DL receiver carrying every cohort at one edge router, columnar.

    ``counts`` lists the member count of each cohort row; the host stands
    for their sum.  Each evaluated slot advances the whole level column
    through :func:`~repro.multicast_cc.decision.decide_dl_array` in one
    pass, then enacts the (uniform) membership change once through the
    shared IGMP interface — weighted by the block population at send time.
    """

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        counts: Sequence[int],
        table: PopulationTable,
        router: str,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(
            network,
            host,
            spec,
            population=sum(int(count) for count in counts),
            bin_width_s=bin_width_s,
            name=name or f"{spec.session_id}-vector-{host.name}",
        )
        self._init_block(table, router, counts)

    def _bootstrap(self) -> None:
        super()._bootstrap()
        self._block.set_levels(int(self.level))

    def _apply_decision(self, evaluated_slot: int, record: SlotRecord, congested: bool) -> None:
        """One array pass over the level column, then one weighted enactment.

        ``decide_dl_array`` is definitionally the scalar rule mapped over
        the column (the exhaustive tests in
        ``tests/multicast_cc/test_decision.py`` pin it), so the uniform
        block moves exactly as each member — and each per-cohort object —
        would have.
        """
        if self.igmp is None:
            return
        block = self._block
        previous = block.require_uniform()
        block.set_levels(
            decide_dl_array(
                block.levels(), congested, record.upgrade_groups, self.spec.group_count
            )
        )
        block.require_uniform()
        decision = decide_dl(
            previous, congested, record.upgrade_groups, self.spec.group_count
        )
        self._rows = [(self.population, decision.next_level)]
        self._enact(evaluated_slot, decision)


class VectorFlidDsReceiver(_VectorBlockSupport, CohortFlidDsReceiver):
    """FLID-DS receiver carrying every cohort at one edge router, columnar.

    The protected per-slot pipeline (entitlement schedule, one DELTA
    reconstruction, one ``member_count``-stamped subscription message) is
    already O(1) in the row count because the entitlement is uniform across
    the block; this class keeps the level column of the population table in
    lockstep with it, so ``state_rows`` stays per-cohort and the uniformity
    guard covers the protected variant too.
    """

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        counts: Sequence[int],
        table: PopulationTable,
        router: str,
        key_bits: int = 16,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(
            network,
            host,
            spec,
            population=sum(int(count) for count in counts),
            key_bits=key_bits,
            bin_width_s=bin_width_s,
            name=name or f"{spec.session_id}-vector-{host.name}",
        )
        self._init_block(table, router, counts)

    def _join_session(self) -> None:
        super()._join_session()
        self._block.set_levels(1)

    def _apply_decision(self, evaluated_slot: int, record: SlotRecord, congested: bool) -> None:
        """Run the cohort DS pipeline once for the block, then sync columns."""
        if self.sigma is None:
            return
        level = self._block.require_uniform()
        self._rows = [(self.population, level)]
        super()._apply_decision(evaluated_slot, record, congested)
        self._sync_block()
