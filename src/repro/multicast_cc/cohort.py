"""Cohort-aggregated receivers: N homogeneous receivers as one state block.

The paper's robustness and overhead results are *scaling* claims — a few
attackers against sessions with very large honest audiences.  Instantiating
every honest receiver as a full object graph (host + IGMP state + FLID
receiver + SIGMA key table traffic) caps sessions at a few dozen receivers;
these classes instead represent ``N`` homogeneous honest receivers behind one
edge router as a single *cohort*:

* one :class:`~repro.simulator.node.Host` (with ``population = N``) carries
  the whole cohort, so multicast fan-out and the bottleneck dynamics cost
  O(edge interfaces) — exactly what they cost with one receiver;
* subscription state lives in a columnar block of ``(count, level)`` rows
  (array-of-struct tuples), advanced once per slot through the batched pure
  decision functions of :mod:`~repro.multicast_cc.decision`;
* SIGMA traffic is amortised: one session-join / subscription message per
  slot carries ``member_count = N``, the edge router verifies each key once
  and books the delivery for the population.

**Exactness.**  Aggregation is *exact* — byte-identical subscription
trajectories and key-delivery counts versus ``N`` individual receivers —
when the cohort is homogeneous: honest receivers, same edge router, same
start time, and access links that never drop (true in the paper's §5.1
topologies, where the 10 Mbps access links exceed the maximal 3.84 Mbps
session rate and sit downstream of the shared bottleneck).  All per-member divergence sources (attacks, staggered joins,
per-receiver placement) must stay individual objects, which is precisely the
paper's threat model: a handful of misbehaving receivers attacking *into* a
large honest population.  ``tests/experiments/test_cohort_equivalence.py``
asserts the exactness for small N; ``docs/scale.md`` discusses the limits.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..core.sigma import SigmaHostInterface
from ..simulator.node import Host
from ..simulator.topology import Network
from .churn import ChurnProcess
from .decision import decide_dl_batch, merge_rows, reconstruct_ds_batch
from .flid_dl import FlidDlReceiver
from .flid_ds import FlidDsReceiver
from .receiver_base import SlotRecord
from .session import SessionSpec

__all__ = ["CohortFlidDlReceiver", "CohortFlidDsReceiver"]


def _init_cohort(receiver, host: Host, population: int) -> None:
    """Shared cohort initialisation: population wiring + columnar state."""
    if population < 1:
        raise ValueError("a cohort needs at least one receiver")
    receiver.population = population
    # The host stands for the whole cohort: membership counting, IGMP/SIGMA
    # counters and overhead accounting weight it as N end systems.
    host.population = population
    receiver._rows = [(population, 0)]


def _require_single_row(rows) -> None:
    """Enforce the homogeneity invariant before enacting a decision.

    Both cohort receivers drive one shared IGMP/SIGMA interface, which can
    only represent one membership set; a state block that split into several
    levels could no longer be enacted faithfully.  Homogeneous cohorts never
    split (the equivalence tests assert it), so a split here is a bug — fail
    loudly rather than silently drop the extra rows' membership changes.
    """
    if len(rows) != 1:
        raise RuntimeError(
            f"cohort state block split into {len(rows)} rows ({rows!r}); "
            "heterogeneous members must be separate cohorts or individuals"
        )


class _CohortChurnSupport:
    """Population churn shared by both cohort receivers.

    A :class:`~repro.multicast_cc.churn.ChurnProcess` attached to a cohort is
    sampled at every slot-evaluation wakeup (deterministically, before the
    due slots are evaluated): the membership delta is booked through
    member-weighted IGMP/SIGMA messages and the cohort's population —
    including the host weight every counter derives from — is updated before
    any message of the new slot is sent.  Arrivals adopt the cohort's
    current subscription level (flash-crowd members inherit the steady-state
    trajectory); see ``docs/scale.md`` for the exactness conditions.
    """

    _churn: Optional[ChurnProcess] = None
    _churn_initial: int = 0

    def attach_churn(self, process: ChurnProcess) -> None:
        """Drive this cohort's population by ``process`` (call before start)."""
        self._churn = process
        self._churn_initial = self.population

    # ------------------------------------------------------------------
    def _on_timer(self) -> None:
        if self._churn is not None and self._started_at is not None:
            self._apply_churn()
        super()._on_timer()

    def _apply_churn(self) -> None:
        target = self._churn.population_at(
            self._churn_initial, self.sim.now - self._started_at
        )
        delta = target - self.population
        if delta == 0:
            return
        if delta > 0:
            self._book_arrivals(delta)
        else:
            self._book_departures(-delta)
        self._set_population(target)

    def _set_population(self, population: int) -> None:
        """Adopt the new population everywhere counters weigh it."""
        self.population = population
        self.host.population = population
        self._rows = [(population, level) for _count, level in self._rows]

    # hooks implemented per protocol variant -----------------------------
    def _book_arrivals(self, members: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _book_departures(self, members: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class CohortFlidDlReceiver(_CohortChurnSupport, FlidDlReceiver):
    """FLID-DL receiver aggregating ``population`` honest members.

    Behaviour is the single receiver's (the cohort host receives one copy of
    every packet an individual receiver would), but each slot's subscription
    decision runs through the *batched* rule over the cohort's ``(count,
    level)`` rows, and all membership signalling represents the population.
    """

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        population: int,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(
            network,
            host,
            spec,
            bin_width_s=bin_width_s,
            name=name or f"{spec.session_id}-cohort-{host.name}",
        )
        _init_cohort(self, host, population)

    # ------------------------------------------------------------------
    def state_rows(self) -> List[Tuple[int, int]]:
        """The columnar ``(count, level)`` state block (copy)."""
        return list(self._rows)

    def _bootstrap(self) -> None:
        super()._bootstrap()
        self._rows = [(self.population, self.level)]

    # ------------------------------------------------------------------
    # churn accounting (unprotected variant: weighted IGMP churn reports)
    # ------------------------------------------------------------------
    def _book_arrivals(self, members: int) -> None:
        """Arrivals adopt the current level: one weighted join per group."""
        if self.igmp is None:
            return
        for group in range(1, self.level + 1):
            self.igmp.join(self.spec.address_of(group), members=members)

    def _book_departures(self, members: int) -> None:
        """Departures abandon the current level: one weighted leave per group."""
        if self.igmp is None:
            return
        for group in range(1, self.level + 1):
            self.igmp.leave(self.spec.address_of(group), members=members)

    def _apply_decision(self, evaluated_slot: int, record: SlotRecord, congested: bool) -> None:
        """Advance every row through the batched FLID-DL rule, then enact.

        A homogeneous cohort is a single row, so the shared IGMP interface
        enacts exactly the membership change each member would have made.
        """
        if self.igmp is None:
            return
        outcomes = decide_dl_batch(
            self._rows, congested, record.upgrade_groups, self.spec.group_count
        )
        self._rows = merge_rows([(count, d.next_level) for count, d in outcomes])
        _require_single_row(self._rows)
        self._enact(evaluated_slot, outcomes[0][1])


class CohortFlidDsReceiver(_CohortChurnSupport, FlidDsReceiver):
    """FLID-DS receiver aggregating ``population`` honest members.

    DELTA key reconstruction runs once per distinct subscription level of the
    cohort's state block, and the resulting (group, key) pairs go to the edge
    router in one subscription message stamped ``member_count = population``
    — the router verifies each key once and counts a delivery per member, so
    SIGMA's key-table work is O(edge interfaces) rather than O(receivers).
    """

    def __init__(
        self,
        network: Network,
        host: Host,
        spec: SessionSpec,
        population: int,
        key_bits: int = 16,
        bin_width_s: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__(
            network,
            host,
            spec,
            key_bits=key_bits,
            bin_width_s=bin_width_s,
            name=name or f"{spec.session_id}-cohort-{host.name}",
        )
        _init_cohort(self, host, population)
        #: Population-weighted count of keys *submitted* on behalf of members
        #: (each submitted pair speaks for every member of the cohort; the
        #: edge router's ``valid_submissions`` counts the accepted subset).
        self.member_keys_submitted = 0

    # ------------------------------------------------------------------
    def state_rows(self) -> List[Tuple[int, int]]:
        """The columnar ``(count, level)`` state block (copy)."""
        return list(self._rows)

    def _make_sigma_interface(self) -> SigmaHostInterface:
        return SigmaHostInterface(
            self.host,
            self.spec.session_id,
            key_bits=self.key_bits,
            member_count=self.population,
        )

    def _join_session(self) -> None:
        super()._join_session()
        self._rows = [(self.population, 1)]

    # ------------------------------------------------------------------
    # churn accounting (protected variant: member-weighted SIGMA messages)
    # ------------------------------------------------------------------
    def _set_population(self, population: int) -> None:
        super()._set_population(population)
        if self.sigma is not None:
            # Every subsequent SIGMA message speaks for the new population.
            self.sigma.member_count = population

    def _book_arrivals(self, members: int) -> None:
        """Each arrival wave is one key-less session-join for its members."""
        if self.sigma is None:
            return
        self.sigma.session_join(self.spec.minimal_group(), members=members)

    def _book_departures(self, members: int) -> None:
        """Departures are silent under SIGMA — exactly like an individual
        receiver that stops submitting keys: they vanish from the member
        counts of subsequent messages instead of sending a farewell."""

    # ------------------------------------------------------------------
    def _apply_decision(self, evaluated_slot: int, record: SlotRecord, congested: bool) -> None:
        """The scalar FLID-DS slot pipeline, amortised over the cohort rows."""
        if self.sigma is None:
            return
        entitled = self.entitled_level(evaluated_slot)
        governed_slot = evaluated_slot + 2

        if entitled == 0:
            self._rejoin(governed_slot)
            self._rows = [(self.population, 1)]
            return

        observation = self._build_observation(record, entitled, congested)

        def reconstruct_for(level: int):
            if level == entitled:
                return self.delta.reconstruct(observation)
            return self.delta.reconstruct(
                dataclasses.replace(observation, subscription_level=level)
            )

        # The entitlement schedule is shared by the whole (homogeneous)
        # cohort, so every row observes the same entitled level this slot.
        rows = merge_rows([(count, entitled) for count, _ in self._rows])
        _require_single_row(rows)
        outcomes = reconstruct_ds_batch(rows, reconstruct_for)
        result = outcomes[0][1]
        self._on_keys_reconstructed(governed_slot, result.keys)

        if result.keys:
            pairs = [
                (self.spec.address_of(group), key)
                for group, key in result.submitted_pairs()
            ]
            self.sigma.subscribe(governed_slot, pairs)
            self.subscriptions_sent += 1
            self.member_keys_submitted += self.population * len(pairs)

        if congested and result.next_level < entitled:
            self._enter_deaf_period(governed_slot + 1)

        self._schedule_level(governed_slot, result.next_level)
        self._set_level(result.next_level)
        self._rows = merge_rows([(count, r.next_level) for count, r in outcomes])

        if result.next_level == 0:
            self._rejoin(governed_slot)
            self._rows = [(self.population, 1)]
