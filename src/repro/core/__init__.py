"""The paper's primary contribution: DELTA + SIGMA.

* :mod:`repro.core.delta` — in-band distribution of group keys to eligible
  receivers (layered, replicated, threshold and ECN instantiations).
* :mod:`repro.core.sigma` — key-based group access control at edge routers.
* :mod:`repro.core.timeslot` — the s / s+1 / s+2 key pipeline of Figure 2.
* :mod:`repro.core.overhead` — the analytic overhead model of §5.4.
"""

from . import delta, sigma
from .overhead import FIGURE9_DEFAULTS, OverheadModel, OverheadPoint
from .timeslot import KEY_PIPELINE_DEPTH, SlotClock

__all__ = [
    "delta",
    "sigma",
    "FIGURE9_DEFAULTS",
    "OverheadModel",
    "OverheadPoint",
    "KEY_PIPELINE_DEPTH",
    "SlotClock",
]
