"""DELTA instantiation for replicated multicast (Figure 5).

In replicated multicast (Destination Set Grouping style protocols) each group
of a session carries the *same content at a different rate*: group 1 is the
slowest, group N the fastest, and a legitimate subscription is exactly one
group.  The subscription rules mirror the layered case — stay when
uncongested, switch down one group when congested, switch up one group when
authorised — but because levels do not share groups the keys are per-group
rather than cumulative (Equation 6):

* top key       ``τ_g = ⊕_{p∈S_g} c_{g,p}``
* decrease key  ``δ_{g-1} = d_g`` (nonce in the decrease field of group g)
* increase key  ``ι_g = ⊕_{p∈S_{g-1}} c_{g-1,p} = τ_{g-1}``

The sender-side component generation is identical to the layered case
(random components, closing component on the last packet of the slot); only
the key definitions differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ...crypto.nonce import NonceGenerator
from ...crypto.xorkeys import KeyAccumulator, xor_fold
from .base import (
    DeltaPacketFields,
    DeltaReceiver,
    DeltaSender,
    GroupKeys,
    ReceiverSlotObservation,
    ReconstructionResult,
    SlotKeyMaterial,
)

__all__ = ["ReplicatedDeltaSender", "ReplicatedDeltaReceiver"]


@dataclass
class _GroupSlotState:
    accumulator: KeyAccumulator
    decrease_field: Optional[int]
    packets_emitted: int = 0
    closed: bool = False


class ReplicatedDeltaSender(DeltaSender):
    """Sender-side algorithm of Figure 5."""

    def __init__(self, group_count: int, nonces: NonceGenerator) -> None:
        if group_count < 1:
            raise ValueError("a session needs at least one group")
        self.group_count = group_count
        self.nonces = nonces
        self._slot_state: Dict[int, _GroupSlotState] = {}
        self._current_material: Optional[SlotKeyMaterial] = None

    @property
    def current_material(self) -> Optional[SlotKeyMaterial]:
        return self._current_material

    def begin_slot(
        self, distribution_slot: int, upgrade_authorized: Sequence[int]
    ) -> SlotKeyMaterial:
        """Precompute per-group keys: τ_g = C_g, δ_{g-1}, ι_g = C_{g-1}."""
        authorized = frozenset(
            g for g in upgrade_authorized if 2 <= g <= self.group_count
        )
        constants = {g: self.nonces.next() for g in range(1, self.group_count + 1)}
        decrease: Dict[int, int] = {}
        fields_d: Dict[int, int] = {}
        for g in range(2, self.group_count + 1):
            delta = self.nonces.next()
            decrease[g - 1] = delta
            fields_d[g] = delta

        keys: Dict[int, GroupKeys] = {}
        for g in range(1, self.group_count + 1):
            increase = constants[g - 1] if (g in authorized and g >= 2) else None
            keys[g] = GroupKeys(top=constants[g], decrease=decrease.get(g), increase=increase)

        self._slot_state = {
            g: _GroupSlotState(
                accumulator=KeyAccumulator(constants[g], self.nonces.bits),
                decrease_field=fields_d.get(g),
            )
            for g in range(1, self.group_count + 1)
        }
        self._current_material = SlotKeyMaterial(
            governed_slot=distribution_slot + 2,
            keys=keys,
            upgrade_authorized=authorized,
        )
        return self._current_material

    def fields_for_packet(self, group: int, is_last_in_slot: bool) -> DeltaPacketFields:
        if self._current_material is None:
            raise RuntimeError("begin_slot must be called before emitting packets")
        state = self._slot_state.get(group)
        if state is None:
            raise ValueError(f"group {group} outside 1..{self.group_count}")
        if state.closed:
            return DeltaPacketFields(
                group=group,
                component=self.nonces.next(),
                decrease=state.decrease_field,
                closing=False,
            )
        if is_last_in_slot:
            component = state.accumulator.closing_component()
            state.closed = True
        else:
            component = state.accumulator.emit_component(self.nonces.next())
        state.packets_emitted += 1
        return DeltaPacketFields(
            group=group,
            component=component,
            decrease=state.decrease_field,
            closing=is_last_in_slot,
        )


class ReplicatedDeltaReceiver(DeltaReceiver):
    """Receiver-side algorithm of Figure 5.

    ``observation.subscription_level`` is interpreted as the index of the
    single subscribed group; ``components``/``decrease_fields`` should only
    contain entries for that group.
    """

    def __init__(self, group_count: int) -> None:
        if group_count < 1:
            raise ValueError("a session needs at least one group")
        self.group_count = group_count

    def reconstruct(self, observation: ReceiverSlotObservation) -> ReconstructionResult:
        g = observation.subscription_level
        if g <= 0:
            return ReconstructionResult(next_level=0, keys={})
        g = min(g, self.group_count)

        if observation.congested:
            if g == 1:
                return ReconstructionResult(next_level=0, keys={})
            fields = observation.decrease_fields.get(g, [])
            if not fields:
                # Every packet of the current group was lost: no key can be
                # recovered in-band; the receiver must rejoin via session-join.
                return ReconstructionResult(next_level=0, keys={})
            return ReconstructionResult(next_level=g - 1, keys={g - 1: fields[0]})

        # Uncongested: recover the current group's top key from its components.
        top = xor_fold(observation.components.get(g, []))
        upgrade_target = g + 1
        if (
            upgrade_target in observation.upgrade_authorized
            and upgrade_target <= self.group_count
        ):
            # ι_{g+1} equals the XOR of group g's components, i.e. the same value.
            return ReconstructionResult(
                next_level=upgrade_target, keys={upgrade_target: top}
            )
        return ReconstructionResult(next_level=g, keys={g: top})
