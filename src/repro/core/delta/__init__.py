"""DELTA — Distribution of ELigibility To Access.

Protocol-specific, in-band distribution of group keys to exactly the
receivers that are eligible to access the groups in the governed time slot.
Three instantiations from the paper are provided:

* :class:`LayeredDeltaSender` / :class:`LayeredDeltaReceiver` — Figure 4,
  cumulative layered multicast with single-loss congestion (FLID-DL, RLC);
* :class:`ReplicatedDeltaSender` / :class:`ReplicatedDeltaReceiver` —
  Figure 5, replicated multicast (one group per subscription level);
* :class:`ThresholdDeltaSender` / :class:`ThresholdDeltaReceiver` — §3.1.2,
  threshold-based protocols using Shamir secret sharing;

plus the ECN adaptation (:class:`EcnComponentScrambler`).
"""

from .base import (
    DeltaPacketFields,
    DeltaReceiver,
    DeltaSender,
    GroupKeys,
    KeyKind,
    ReceiverSlotObservation,
    ReconstructionResult,
    SlotKeyMaterial,
)
from .ecn import COMPONENT_HEADER, DECREASE_HEADER, EcnComponentScrambler, ecn_observation
from .layered import LayeredDeltaReceiver, LayeredDeltaSender
from .replicated import ReplicatedDeltaReceiver, ReplicatedDeltaSender
from .threshold import (
    ThresholdDeltaReceiver,
    ThresholdDeltaSender,
    ThresholdLevelPlan,
    ThresholdPacketShares,
)

__all__ = [
    "DeltaPacketFields",
    "DeltaReceiver",
    "DeltaSender",
    "GroupKeys",
    "KeyKind",
    "ReceiverSlotObservation",
    "ReconstructionResult",
    "SlotKeyMaterial",
    "COMPONENT_HEADER",
    "DECREASE_HEADER",
    "EcnComponentScrambler",
    "ecn_observation",
    "LayeredDeltaReceiver",
    "LayeredDeltaSender",
    "ReplicatedDeltaReceiver",
    "ReplicatedDeltaSender",
    "ThresholdDeltaReceiver",
    "ThresholdDeltaSender",
    "ThresholdLevelPlan",
    "ThresholdPacketShares",
]
