"""DELTA instantiation for threshold-based protocols (§3.1.2, "Congested state").

Protocols such as RLM, MLDA and WEBRC do not treat a single packet loss as
congestion; a receiver is congested only when its loss rate over a
subscription level exceeds a threshold (RLM's default is 25 %).  For these
protocols DELTA distributes the key of subscription level ``g`` with
Shamir's (k, n) threshold scheme across the ``n`` packets transmitted to the
level during the slot: a receiver that collects at least ``k`` packets —
i.e. whose loss rate stays below the protocol's threshold — interpolates the
polynomial and recovers ``κ_g = q(0)``; a receiver above the threshold
cannot.

As the paper notes, Shamir's scheme does not allow component reuse across
levels, so the per-packet overhead grows with the number of levels; the
overhead ablation benchmark quantifies this cost against the XOR-based
layered instantiation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...crypto.shamir import ShamirSecretSharing, Share
from .base import GroupKeys, SlotKeyMaterial

__all__ = [
    "ThresholdLevelPlan",
    "ThresholdDeltaSender",
    "ThresholdDeltaReceiver",
    "ThresholdPacketShares",
]


@dataclass(frozen=True)
class ThresholdPacketShares:
    """Per-packet share payload: one Shamir share per subscription level.

    ``shares[level]`` is the share of level ``level``'s key carried by this
    packet.  In a layered session a packet of group ``j`` carries shares for
    every level ``j..N`` (levels that include group ``j``), which is exactly
    why the overhead is higher than in the XOR instantiation.
    """

    shares: Dict[int, Share]

    def share_bits(self, key_bits: int) -> int:
        """Overhead bits contributed by the shares (index + value per level)."""
        # A share is a (point, value) pair; the point fits in 16 bits for any
        # realistic packet count, the value needs the full key width.
        return len(self.shares) * (16 + key_bits)


@dataclass
class ThresholdLevelPlan:
    """Sender-side plan for one subscription level in one slot."""

    level: int
    key: int
    threshold_k: int
    packet_count: int
    shares: List[Share] = field(default_factory=list)


class ThresholdDeltaSender:
    """Splits per-level keys across the packets of a slot with Shamir sharing.

    Unlike the XOR instantiations, the sender must know (or upper-bound) the
    number of packets each level will carry in the slot, because Shamir
    shares are generated as points of a fixed polynomial.  FLID-like senders
    transmit at deterministic per-group rates, so the per-slot packet counts
    are known in advance.
    """

    def __init__(
        self,
        group_count: int,
        loss_threshold: float,
        key_bits: int = 16,
        rng: Optional[random.Random] = None,
        cumulative: bool = True,
    ) -> None:
        if group_count < 1:
            raise ValueError("a session needs at least one group")
        if not (0.0 <= loss_threshold < 1.0):
            raise ValueError("loss_threshold must be in [0, 1)")
        self.group_count = group_count
        self.loss_threshold = loss_threshold
        self.key_bits = key_bits
        self.cumulative = cumulative
        self._rng = rng or random.Random()
        self._plans: Dict[int, ThresholdLevelPlan] = {}
        self._material: Optional[SlotKeyMaterial] = None
        #: Next share index to hand out, per level.
        self._cursor: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def level_loss_threshold(self, level: int) -> float:
        """Loss threshold of ``level``.

        WEBRC/MLDA lower the threshold for higher levels; we model that with
        a simple geometric tightening so that higher subscription levels
        require cleaner paths, while level 1 uses the base threshold.
        """
        return self.loss_threshold / (1.35 ** (level - 1))

    def begin_slot(
        self, distribution_slot: int, packets_per_group: Sequence[int]
    ) -> SlotKeyMaterial:
        """Draw per-level keys and split them into shares for the coming slot.

        ``packets_per_group[g-1]`` is the number of packets group ``g`` will
        carry during the slot.
        """
        if len(packets_per_group) != self.group_count:
            raise ValueError(
                f"expected {self.group_count} packet counts, got {len(packets_per_group)}"
            )
        keys: Dict[int, GroupKeys] = {}
        self._plans.clear()
        self._cursor.clear()
        for level in range(1, self.group_count + 1):
            if self.cumulative:
                n = sum(packets_per_group[:level])
            else:
                n = packets_per_group[level - 1]
            if n <= 0:
                continue
            threshold = self.level_loss_threshold(level)
            k = max(1, math.ceil((1.0 - threshold) * n))
            key = self._rng.getrandbits(self.key_bits)
            sharer = ShamirSecretSharing(threshold=k, rng=self._rng)
            shares = sharer.split(key, n)
            self._plans[level] = ThresholdLevelPlan(
                level=level, key=key, threshold_k=k, packet_count=n, shares=shares
            )
            self._cursor[level] = 0
            keys[level] = GroupKeys(top=key)
        self._material = SlotKeyMaterial(
            governed_slot=distribution_slot + 2, keys=keys, upgrade_authorized=frozenset()
        )
        return self._material

    @property
    def current_material(self) -> Optional[SlotKeyMaterial]:
        return self._material

    def plan_for(self, level: int) -> ThresholdLevelPlan:
        return self._plans[level]

    # ------------------------------------------------------------------
    def shares_for_packet(self, group: int) -> ThresholdPacketShares:
        """Shares carried by the next packet of ``group``.

        In the cumulative (layered) case a packet of group ``j`` carries one
        share for every level ``j..N`` whose packet set includes group ``j``.
        In the non-cumulative (replicated) case it carries one share for
        level ``j`` only.
        """
        if self._material is None:
            raise RuntimeError("begin_slot must be called first")
        shares: Dict[int, Share] = {}
        levels = (
            range(group, self.group_count + 1) if self.cumulative else (group,)
        )
        for level in levels:
            plan = self._plans.get(level)
            if plan is None:
                continue
            cursor = self._cursor.get(level, 0)
            if cursor < len(plan.shares):
                shares[level] = plan.shares[cursor]
                self._cursor[level] = cursor + 1
        return ThresholdPacketShares(shares=shares)


class ThresholdDeltaReceiver:
    """Recovers per-level keys from received Shamir shares."""

    def __init__(self, group_count: int) -> None:
        self.group_count = group_count
        self._received: Dict[int, List[Share]] = {}

    def reset(self) -> None:
        """Forget the shares of the previous slot."""
        self._received.clear()

    def observe_packet(self, shares: ThresholdPacketShares) -> None:
        """Record the shares carried by one received packet."""
        for level, share in shares.shares.items():
            self._received.setdefault(level, []).append(share)

    def received_count(self, level: int) -> int:
        return len(self._received.get(level, []))

    def reconstruct_level(self, level: int, threshold_k: int) -> Optional[int]:
        """Try to recover level ``level``'s key; None when below the threshold."""
        shares = self._received.get(level, [])
        if len(shares) < threshold_k:
            return None
        sharer = ShamirSecretSharing(threshold=threshold_k)
        return sharer.reconstruct(shares)

    def reconstruct_all(self, thresholds: Dict[int, int]) -> Dict[int, int]:
        """Recover every level whose share count meets its threshold."""
        recovered: Dict[int, int] = {}
        for level, k in thresholds.items():
            key = self.reconstruct_level(level, k)
            if key is not None:
                recovered[level] = key
        return recovered
