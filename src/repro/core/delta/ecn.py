"""ECN adaptation of DELTA (§3.1.2, "Congestion notification").

For networks where routers mark packets instead of (or in addition to)
dropping them, the paper extends DELTA with a one-line rule: *edge routers
alter the content of the component field in each marked packet*.  A receiver
whose path is congested therefore cannot reconstruct the top key of its
current level even though it received every packet — the mark plays the role
of the loss — while the decrease fields are left untouched so the receiver
can still step down gracefully.

Two pieces implement this:

``EcnComponentScrambler``
    Installed as an edge router's ``local_delivery_hook``; replaces the
    component field of marked packets with a random value before the packet
    reaches the local interface.

``ecn_observation``
    Receiver-side helper that folds ECN marks into the congestion definition
    when building a :class:`~repro.core.delta.base.ReceiverSlotObservation`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from ...simulator.link import Link
from ...simulator.packet import Packet
from .base import ReceiverSlotObservation

__all__ = ["EcnComponentScrambler", "ecn_observation"]

#: Header key under which DELTA component fields travel (shared with FLID-DS).
COMPONENT_HEADER = "delta_component"
DECREASE_HEADER = "delta_decrease"


class EcnComponentScrambler:
    """Edge-router hook that scrambles the component field of marked packets."""

    def __init__(self, key_bits: int = 16, rng: Optional[random.Random] = None) -> None:
        if key_bits <= 0:
            raise ValueError("key_bits must be positive")
        self.key_bits = key_bits
        self._rng = rng or random.Random()
        self.scrambled_packets = 0

    def __call__(self, packet: Packet, link: Link) -> None:
        """Mutate ``packet`` in place if it carries an ECN mark and a component."""
        if not packet.ecn:
            return
        if COMPONENT_HEADER not in packet.headers:
            return
        original = packet.headers[COMPONENT_HEADER]
        replacement = self._rng.getrandbits(self.key_bits)
        # Guarantee the value actually changes so the key reconstruction is
        # deterministically broken rather than probabilistically broken.
        if replacement == original:
            replacement ^= 1
        # Replicas share the sender's headers dictionary; copy-on-write so
        # sibling copies on other interfaces keep the genuine component.
        headers = packet.mutable_headers()
        headers[COMPONENT_HEADER] = replacement
        headers["delta_component_scrambled"] = True
        self.scrambled_packets += 1


def ecn_observation(
    subscription_level: int,
    packets_by_group: Dict[int, Iterable[Packet]],
    upgrade_authorized: Iterable[int] = (),
    lost_groups: Iterable[int] = (),
) -> ReceiverSlotObservation:
    """Build a slot observation that treats ECN marks as congestion.

    ``packets_by_group[g]`` are the packets received from group ``g`` during
    the distribution slot.  A group counts as congested when any of its
    packets carries an ECN mark *or* appears in ``lost_groups`` (losses can
    still happen alongside marking).
    """
    components: Dict[int, List[int]] = {}
    decreases: Dict[int, List[int]] = {}
    marked: set[int] = set(lost_groups)
    for group, packets in packets_by_group.items():
        comps: List[int] = []
        decs: List[int] = []
        for packet in packets:
            if packet.ecn:
                marked.add(group)
            if COMPONENT_HEADER in packet.headers:
                comps.append(packet.headers[COMPONENT_HEADER])
            if DECREASE_HEADER in packet.headers and packet.headers[DECREASE_HEADER] is not None:
                decs.append(packet.headers[DECREASE_HEADER])
        components[group] = comps
        decreases[group] = decs
    return ReceiverSlotObservation(
        subscription_level=subscription_level,
        components=components,
        decrease_fields=decreases,
        lost_groups=frozenset(marked),
        upgrade_authorized=frozenset(upgrade_authorized),
    )
