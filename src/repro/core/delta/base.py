"""Shared vocabulary of the DELTA instantiations.

Every DELTA instantiation — layered (Figure 4), replicated (Figure 5),
threshold-based (§3.1.2) — produces the same kinds of artefacts:

* a set of per-group **keys** for the governed time slot (top, decrease and
  optionally increase keys, Figure 3);
* per-packet **fields** (component and decrease fields) through which
  receivers reconstruct exactly the keys their congestion status entitles
  them to;
* a receiver-side **reconstruction** step that turns the fields gathered
  during a slot, plus the receiver's congestion status and the protocol's
  upgrade authorisation, into the set of keys to submit to the edge router.

This module defines those artefacts as small dataclasses plus the abstract
sender/receiver interfaces the instantiations implement.  SIGMA consumes only
``SlotKeyMaterial`` (the address-to-keys tuples) and never looks inside a
specific instantiation, which is what keeps the edge-router code generic
(Requirement 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

__all__ = [
    "KeyKind",
    "GroupKeys",
    "SlotKeyMaterial",
    "DeltaPacketFields",
    "ReceiverSlotObservation",
    "ReconstructionResult",
    "DeltaSender",
    "DeltaReceiver",
]


class KeyKind(str, Enum):
    """The three key roles of Figure 3."""

    TOP = "top"
    DECREASE = "decrease"
    INCREASE = "increase"


@dataclass(frozen=True)
class GroupKeys:
    """Keys guarding one group for one governed slot.

    Any one of the non-``None`` keys opens access to the group (§3.1.1: "an
    idea of guarding a group with multiple keys such that any of these keys
    opens access to the group").
    """

    top: Optional[int] = None
    decrease: Optional[int] = None
    increase: Optional[int] = None

    def valid_keys(self) -> List[int]:
        """All keys that an edge router should accept for this group."""
        return [key for key in (self.top, self.decrease, self.increase) if key is not None]

    def accepts(self, submitted: int) -> bool:
        """True when ``submitted`` matches any of the group's keys."""
        return submitted in self.valid_keys()

    def with_increase(self, increase: int) -> "GroupKeys":
        return GroupKeys(top=self.top, decrease=self.decrease, increase=increase)


@dataclass
class SlotKeyMaterial:
    """All keys of a session for one governed slot.

    ``keys[g]`` (1-indexed group number) holds the :class:`GroupKeys` of
    group ``g``.  ``upgrade_authorized`` lists the groups for which the
    protocol authorises an upgrade in the governed slot (the set the sender
    drew when it generated the material).
    """

    governed_slot: int
    keys: Dict[int, GroupKeys] = field(default_factory=dict)
    upgrade_authorized: frozenset[int] = frozenset()

    @property
    def group_count(self) -> int:
        return len(self.keys)

    def group_keys(self, group: int) -> GroupKeys:
        return self.keys[group]

    def accepts(self, group: int, submitted: int) -> bool:
        """Does ``submitted`` open ``group`` in this slot?"""
        keys = self.keys.get(group)
        return keys is not None and keys.accepts(submitted)


@dataclass(frozen=True)
class DeltaPacketFields:
    """Per-packet DELTA fields attached by the sender.

    ``component`` contributes to the top/increase keys of the packet's group
    and all higher groups; ``decrease`` (present on groups 2..N) carries the
    decrease key of the group below.  ``closing`` marks the last packet of
    the group in the slot, whose component closes the XOR sum (Figure 4's
    real-time generation).
    """

    group: int
    component: int
    decrease: Optional[int] = None
    closing: bool = False

    def field_bits(self, key_bits: int) -> int:
        """Number of overhead bits these fields add to the packet."""
        bits = key_bits
        if self.decrease is not None:
            bits += key_bits
        return bits


@dataclass
class ReceiverSlotObservation:
    """What a receiver observed during one distribution slot.

    ``components[g]`` is the list of component fields received from group
    ``g`` and ``decrease_fields[g]`` the (identical) decrease field values
    seen on group ``g`` packets.  ``lost_groups`` are subscribed groups in
    which the receiver detected at least one loss; ``received_all`` per group
    is needed because top keys require *every* component.
    """

    subscription_level: int
    components: Dict[int, List[int]] = field(default_factory=dict)
    decrease_fields: Dict[int, List[int]] = field(default_factory=dict)
    lost_groups: frozenset[int] = frozenset()
    upgrade_authorized: frozenset[int] = frozenset()

    @property
    def congested(self) -> bool:
        """Single-loss congestion definition used by FLID-DL/RLC (§3.1.1)."""
        return bool(self.lost_groups)


@dataclass
class ReconstructionResult:
    """Outcome of the receiver-side DELTA algorithm for one slot.

    ``next_level`` is the subscription level the receiver is entitled to in
    the governed slot (``0`` means it holds no keys at all) and ``keys[g]``
    the key it will submit for each group ``1..next_level``.
    """

    next_level: int
    keys: Dict[int, int] = field(default_factory=dict)

    def submitted_pairs(self) -> List[tuple[int, int]]:
        """(group, key) pairs ordered by group number."""
        return sorted(self.keys.items())


class DeltaSender:
    """Interface of sender-side DELTA instantiations."""

    def begin_slot(self, distribution_slot: int, upgrade_authorized: Sequence[int]) -> SlotKeyMaterial:
        """Precompute the keys governed by ``distribution_slot + 2``."""
        raise NotImplementedError

    def fields_for_packet(self, group: int, is_last_in_slot: bool) -> DeltaPacketFields:
        """Fields for the next packet of ``group`` in the current slot."""
        raise NotImplementedError


class DeltaReceiver:
    """Interface of receiver-side DELTA instantiations."""

    def reconstruct(self, observation: ReceiverSlotObservation) -> ReconstructionResult:
        """Derive next-slot keys from the packets observed in one slot."""
        raise NotImplementedError
