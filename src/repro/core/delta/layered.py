"""DELTA instantiation for cumulative layered multicast (Figure 4).

This is the instantiation the paper derives in §3.1.1 for FLID-DL, RLC and
similar unreliable layered protocols that treat a *single packet loss* as
congestion.  Groups carry cumulative layers: group 1 is the base layer and a
subscription level ``g`` means groups ``1..g``.

Keys per group ``g`` for the governed slot (Figure 3):

* **top key**  ``τ_g = ⊕_{j≤g} ⊕_{p∈S_j} c_{j,p}``  — only a receiver that got
  *every* packet of groups ``1..g`` can compute it (Equation 3);
* **decrease key** ``δ_g = d_{g+1}`` — the nonce carried in the decrease field
  of every packet of group ``g+1``; one received packet of group ``g+1``
  suffices (Equation 4);
* **increase key** ``ι_g = τ_{g-1}`` — generated only when the protocol
  authorises an upgrade to group ``g`` (Equation 5).

The sender precomputes the keys before the slot starts (it does not need to
know how many packets will be sent) and then emits component fields in real
time: a fresh nonce on every packet except the last of the group, and a
closing value on the last packet so that the XOR over the whole slot equals
the precomputed per-group constant ``C_g``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ...crypto.nonce import NonceGenerator
from ...crypto.xorkeys import KeyAccumulator, xor_fold
from .base import (
    DeltaPacketFields,
    DeltaReceiver,
    DeltaSender,
    GroupKeys,
    ReceiverSlotObservation,
    ReconstructionResult,
    SlotKeyMaterial,
)

__all__ = ["LayeredDeltaSender", "LayeredDeltaReceiver"]


@dataclass
class _GroupSlotState:
    """Sender-side per-group state for the current distribution slot."""

    accumulator: KeyAccumulator
    decrease_field: Optional[int]  # d_g: the decrease key of group g-1
    packets_emitted: int = 0
    closed: bool = False


class LayeredDeltaSender(DeltaSender):
    """Sender-side algorithm of Figure 4 (layered multicast, single-loss)."""

    def __init__(self, group_count: int, nonces: NonceGenerator) -> None:
        if group_count < 1:
            raise ValueError("a session needs at least one group")
        self.group_count = group_count
        self.nonces = nonces
        self._slot_state: Dict[int, _GroupSlotState] = {}
        self._current_material: Optional[SlotKeyMaterial] = None
        self._distribution_slot: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def current_material(self) -> Optional[SlotKeyMaterial]:
        """Key material produced by the most recent :meth:`begin_slot`."""
        return self._current_material

    def begin_slot(
        self, distribution_slot: int, upgrade_authorized: Sequence[int]
    ) -> SlotKeyMaterial:
        """Precompute keys and decrease fields for ``distribution_slot + 2``.

        Follows the precomputation phase of Figure 4: per-group constants
        ``C_g``, top keys ``τ_g`` as cumulative XOR of the constants, decrease
        keys ``δ_{g-1}`` as fresh nonces carried in decrease fields ``d_g``,
        and increase keys ``ι_g = τ_{g-1}`` for authorised groups.
        """
        authorized = frozenset(
            g for g in upgrade_authorized if 2 <= g <= self.group_count
        )
        constants = {g: self.nonces.next() for g in range(1, self.group_count + 1)}
        top: Dict[int, int] = {}
        decrease: Dict[int, int] = {}
        fields_d: Dict[int, int] = {}
        running = 0
        for g in range(1, self.group_count + 1):
            running ^= constants[g]
            top[g] = running
        for g in range(2, self.group_count + 1):
            delta = self.nonces.next()
            decrease[g - 1] = delta  # δ_{g-1}
            fields_d[g] = delta  # d_g carried on group g packets

        keys: Dict[int, GroupKeys] = {}
        for g in range(1, self.group_count + 1):
            increase = top[g - 1] if (g in authorized and g >= 2) else None
            keys[g] = GroupKeys(
                top=top[g],
                decrease=decrease.get(g),
                increase=increase,
            )

        self._slot_state = {
            g: _GroupSlotState(
                accumulator=KeyAccumulator(constants[g], self.nonces.bits),
                decrease_field=fields_d.get(g),
            )
            for g in range(1, self.group_count + 1)
        }
        self._distribution_slot = distribution_slot
        self._current_material = SlotKeyMaterial(
            governed_slot=distribution_slot + 2,
            keys=keys,
            upgrade_authorized=authorized,
        )
        return self._current_material

    # ------------------------------------------------------------------
    def fields_for_packet(self, group: int, is_last_in_slot: bool) -> DeltaPacketFields:
        """Generate the component (and decrease) field of one data packet."""
        if self._current_material is None:
            raise RuntimeError("begin_slot must be called before emitting packets")
        state = self._slot_state.get(group)
        if state is None:
            raise ValueError(f"group {group} outside 1..{self.group_count}")
        if state.closed:
            # The protocol marked an earlier packet as last; any straggler in
            # the same slot gets an ordinary nonce.  Receivers that see the
            # closing packet ignore later components of the group for key
            # purposes, so this keeps the algebra consistent.
            component = self.nonces.next()
            return DeltaPacketFields(
                group=group,
                component=component,
                decrease=state.decrease_field,
                closing=False,
            )
        if is_last_in_slot:
            component = state.accumulator.closing_component()
            state.closed = True
        else:
            component = state.accumulator.emit_component(self.nonces.next())
        state.packets_emitted += 1
        return DeltaPacketFields(
            group=group,
            component=component,
            decrease=state.decrease_field,
            closing=is_last_in_slot,
        )

    def close_slot(self) -> Dict[int, int]:
        """Force-close every group and return the closing components.

        Used when a group's last packet of the slot cannot be predicted in
        advance; the caller can piggyback the returned closing components on
        the first packets of the next slot.  Groups already closed are
        omitted.
        """
        closing: Dict[int, int] = {}
        for group, state in self._slot_state.items():
            if not state.closed and state.packets_emitted > 0:
                closing[group] = state.accumulator.closing_component()
                state.closed = True
        return closing


class LayeredDeltaReceiver(DeltaReceiver):
    """Receiver-side algorithm of Figure 4."""

    def __init__(self, group_count: int) -> None:
        if group_count < 1:
            raise ValueError("a session needs at least one group")
        self.group_count = group_count

    # ------------------------------------------------------------------
    def reconstruct(self, observation: ReceiverSlotObservation) -> ReconstructionResult:
        """Derive the keys the receiver is entitled to for the governed slot.

        Implements the right-hand column of Figure 4, including the
        resolution of the (r)/(ι) contradiction described in §3.1.1: a
        receiver congested *only* in its top group ``g`` keeps group ``g``
        when the protocol authorises an upgrade to ``g`` and groups
        ``1..g-1`` are loss-free.
        """
        g = observation.subscription_level
        if g <= 0:
            return ReconstructionResult(next_level=0, keys={})
        g = min(g, self.group_count)

        # u_{j-1} <- decrease field from R_j   (unconditional loop of Fig. 4)
        decrease_keys: Dict[int, int] = {}
        for j in range(2, g + 1):
            fields = observation.decrease_fields.get(j, [])
            if fields:
                decrease_keys[j - 1] = fields[0]

        if observation.congested:
            return self._reconstruct_congested(observation, g, decrease_keys)
        return self._reconstruct_uncongested(observation, g, decrease_keys)

    # ------------------------------------------------------------------
    def _top_key_candidate(self, observation: ReceiverSlotObservation, level: int) -> int:
        """XOR of every received component of groups 1..level (Equation 3).

        If any packet was lost the result differs from the true key; the
        receiver cannot tell locally, but the edge router will reject it.
        """
        value = 0
        for j in range(1, level + 1):
            value ^= xor_fold(observation.components.get(j, []))
        return value

    def _contiguous_prefix(self, keys: Dict[int, int], limit: int) -> int:
        """Largest L <= limit such that keys 1..L are all available."""
        level = 0
        for j in range(1, limit + 1):
            if j in keys:
                level = j
            else:
                break
        return level

    def _reconstruct_congested(
        self,
        observation: ReceiverSlotObservation,
        g: int,
        decrease_keys: Dict[int, int],
    ) -> ReconstructionResult:
        keys: Dict[int, int] = dict(decrease_keys)
        # Exception clause: keep group g when only group g lost packets, the
        # protocol authorises an upgrade to g, and groups 1..g-1 are clean.
        only_top_lost = observation.lost_groups <= frozenset({g})
        lower_clean = not any(j in observation.lost_groups for j in range(1, g))
        if (
            g >= 2
            and g in observation.upgrade_authorized
            and only_top_lost
            and lower_clean
        ):
            keys[g] = self._top_key_candidate(observation, g - 1)
            next_level = self._contiguous_prefix(keys, g)
            return ReconstructionResult(next_level=next_level, keys={
                j: keys[j] for j in range(1, next_level + 1)
            })
        # Normal congested path: drop the top group, keep 1..g-1 via decrease keys.
        next_level = self._contiguous_prefix(keys, g - 1)
        return ReconstructionResult(
            next_level=next_level,
            keys={j: keys[j] for j in range(1, next_level + 1)},
        )

    def _reconstruct_uncongested(
        self,
        observation: ReceiverSlotObservation,
        g: int,
        decrease_keys: Dict[int, int],
    ) -> ReconstructionResult:
        keys: Dict[int, int] = dict(decrease_keys)
        keys[g] = self._top_key_candidate(observation, g)
        upgrade_target = g + 1
        if (
            upgrade_target in observation.upgrade_authorized
            and upgrade_target <= self.group_count
        ):
            # ι_{g+1} = τ_g: the key already computed opens the next group too.
            keys[upgrade_target] = keys[g]
            next_level = self._contiguous_prefix(keys, upgrade_target)
        else:
            next_level = self._contiguous_prefix(keys, g)
        return ReconstructionResult(
            next_level=next_level,
            keys={j: keys[j] for j in range(1, next_level + 1)},
        )
