"""Analytic communication-overhead model (§5.4).

The paper derives closed-form expressions for the overhead of communicating
group keys:

* **DELTA** adds a ``b``-bit component field to every packet and a ``b``-bit
  decrease field to every packet of groups ``2..N``.  Relative to the data
  bits this is::

      O_delta = (2 - 1/m^(N-1)) * b / s

  where ``m`` is the multiplicative rate factor per group, ``N`` the number
  of groups and ``s`` the data bits per packet.

* **SIGMA** sends, per time slot, special packets carrying an ``l``-bit slot
  number and one address-key tuple per group (32-bit address + ``b``-bit top
  key, plus a ``b``-bit decrease key for all but the last group, plus a
  ``b``-bit increase key for each group whose upgrade is authorised with
  frequency ``f_g``), expanded by the FEC factor ``z`` and framed with ``h``
  header bits::

      O_sigma = ((l + 32N + b(2N - 1 + sum_g f_g)) * z + h) / (r * t * m^(N-1))

  where ``r`` is the minimal group's rate (bps), ``t`` the slot duration and
  ``r * t * m^(N-1)`` therefore the data bits the whole session transmits per
  slot.

``OverheadModel`` evaluates both expressions with the paper's Figure 9
parameters as defaults, and the Figure 9 benchmark compares them against the
overhead *measured* from the packets the FLID-DS implementation actually
emits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

__all__ = ["OverheadModel", "OverheadPoint", "FIGURE9_DEFAULTS"]


@dataclass(frozen=True)
class OverheadPoint:
    """One point of a Figure 9 curve."""

    parameter: float
    delta_percent: float
    sigma_percent: float


@dataclass(frozen=True)
class OverheadModel:
    """Parameters of the §5.4 overhead analysis.

    Defaults follow the paper's quantification: 500-byte data packets
    (``s = 4000`` bits), cumulative session rate 4 Mbps, minimal-group rate
    100 Kbps, 16-bit keys, 8-bit slot numbers, FEC sized for 50 % loss
    (``z = 2``), 10 groups and 250 ms slots.
    """

    data_bits_per_packet: int = 4000
    cumulative_rate_bps: float = 4_000_000.0
    minimal_rate_bps: float = 100_000.0
    key_bits: int = 16
    slot_number_bits: int = 8
    fec_expansion: float = 2.0
    special_packet_header_bits: int = 224
    group_count: int = 10
    slot_duration_s: float = 0.25
    #: Average per-slot frequency of upgrade authorisations per group
    #: (``f_g`` in the paper); a single value applied to groups 2..N.
    upgrade_frequency: float = 0.5

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def rate_factor(self) -> float:
        """Multiplicative factor ``m`` determined by R = r * m^(N-1) (Eq. 10)."""
        if self.group_count == 1:
            return 1.0
        return (self.cumulative_rate_bps / self.minimal_rate_bps) ** (
            1.0 / (self.group_count - 1)
        )

    def packets_per_slot(self) -> float:
        """Average data packets per slot for the whole session (Eq. 11)."""
        return self.cumulative_rate_bps * self.slot_duration_s / self.data_bits_per_packet

    def minimal_group_packets_per_slot(self) -> float:
        """Average data packets per slot for group 1 (Eq. 12)."""
        return self.minimal_rate_bps * self.slot_duration_s / self.data_bits_per_packet

    # ------------------------------------------------------------------
    # overhead expressions
    # ------------------------------------------------------------------
    def delta_overhead(self) -> float:
        """DELTA bits / data bits (final simplified expression of §5.4)."""
        n = self.group_count
        m = self.rate_factor
        return (2.0 - 1.0 / (m ** (n - 1))) * self.key_bits / self.data_bits_per_packet

    def sigma_overhead(self) -> float:
        """SIGMA bits / data bits (final simplified expression of §5.4)."""
        n = self.group_count
        m = self.rate_factor
        upgrade_sum = self.upgrade_frequency * max(0, n - 1)
        key_bits_total = self.key_bits * (2 * n - 1 + upgrade_sum)
        numerator = (
            self.slot_number_bits + 32 * n + key_bits_total
        ) * self.fec_expansion + self.special_packet_header_bits
        denominator = self.minimal_rate_bps * self.slot_duration_s * (m ** (n - 1))
        return numerator / denominator

    def delta_overhead_percent(self) -> float:
        return self.delta_overhead() * 100.0

    def sigma_overhead_percent(self) -> float:
        return self.sigma_overhead() * 100.0

    # ------------------------------------------------------------------
    # Figure 9 sweeps
    # ------------------------------------------------------------------
    def sweep_group_count(self, group_counts: Sequence[int]) -> List[OverheadPoint]:
        """Figure 9(a): overhead versus the number of groups in the session."""
        points = []
        for n in group_counts:
            model = replace(self, group_count=n)
            points.append(
                OverheadPoint(
                    parameter=float(n),
                    delta_percent=model.delta_overhead_percent(),
                    sigma_percent=model.sigma_overhead_percent(),
                )
            )
        return points

    def sweep_slot_duration(self, durations_s: Sequence[float]) -> List[OverheadPoint]:
        """Figure 9(b): overhead versus the time-slot duration."""
        points = []
        for t in durations_s:
            model = replace(self, slot_duration_s=t)
            points.append(
                OverheadPoint(
                    parameter=t,
                    delta_percent=model.delta_overhead_percent(),
                    sigma_percent=model.sigma_overhead_percent(),
                )
            )
        return points

    # ------------------------------------------------------------------
    # per-packet accounting helpers (used by the measured-overhead path)
    # ------------------------------------------------------------------
    def delta_bits_for_packet(self, group: int) -> int:
        """DELTA field bits on one data packet of ``group``."""
        bits = self.key_bits  # component field on every packet
        if group >= 2:
            bits += self.key_bits  # decrease field on groups 2..N
        return bits

    def sigma_bits_per_slot(self) -> float:
        """Total special-packet bits per slot (before dividing by data bits)."""
        n = self.group_count
        upgrade_sum = self.upgrade_frequency * max(0, n - 1)
        key_bits_total = self.key_bits * (2 * n - 1 + upgrade_sum)
        return (
            self.slot_number_bits + 32 * n + key_bits_total
        ) * self.fec_expansion + self.special_packet_header_bits


#: The exact parameterisation the paper uses to draw Figure 9.
FIGURE9_DEFAULTS = OverheadModel()
