"""Time slots — the atomic duration of group access control.

Figure 2 of the paper defines the key pipeline: keys distributed (in-band to
receivers, via special packets to edge routers) during slot ``s`` control
access during slot ``s + 2``.  Slot ``s + 1`` gives receivers time to
reconstruct the keys and submit them to the edge router before packets of
slot ``s + 2`` arrive.

``SlotClock`` provides that notion of time to every component: the FLID-DS
sender (key precomputation and announcement), the FLID-DS receivers (key
reconstruction at slot boundaries) and the SIGMA edge-router agent (access
enforcement at slot boundaries).  All parties derive the slot index from the
shared simulated clock, so they agree on slot numbering without explicit
synchronisation — the same assumption the paper makes by having the sender
stamp slot numbers on packets.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..simulator.engine import PeriodicTimer, Simulator

__all__ = ["SlotClock", "KEY_PIPELINE_DEPTH"]

#: Keys distributed in slot ``s`` govern slot ``s + KEY_PIPELINE_DEPTH``.
KEY_PIPELINE_DEPTH = 2


class SlotClock:
    """Divides simulated time into fixed-length slots and fires callbacks.

    The slot containing time ``t`` has index ``floor((t - origin) / duration)``.
    Callbacks registered with :meth:`on_slot_start` run at the beginning of
    every slot, in registration order, after the clock has advanced its own
    notion of the current slot.
    """

    def __init__(self, sim: Simulator, duration_s: float, origin_s: float = 0.0) -> None:
        if duration_s <= 0:
            raise ValueError(f"slot duration must be positive (got {duration_s})")
        self.sim = sim
        self.duration_s = duration_s
        self.origin_s = origin_s
        self._callbacks: List[Callable[[int], None]] = []
        self._timer: Optional[PeriodicTimer] = None
        self._started = False

    # ------------------------------------------------------------------
    # slot arithmetic
    # ------------------------------------------------------------------
    def slot_of(self, time_s: Optional[float] = None) -> int:
        """Slot index containing ``time_s`` (defaults to the current time)."""
        t = self.sim.now if time_s is None else time_s
        if t < self.origin_s:
            return -1
        return int((t - self.origin_s) / self.duration_s)

    @property
    def current_slot(self) -> int:
        return self.slot_of()

    def start_of(self, slot: int) -> float:
        """Absolute simulated time at which ``slot`` begins."""
        return self.origin_s + slot * self.duration_s

    def end_of(self, slot: int) -> float:
        """Absolute simulated time at which ``slot`` ends."""
        return self.start_of(slot + 1)

    def governed_slot(self, distribution_slot: int) -> int:
        """Slot whose access is controlled by keys distributed in ``distribution_slot``."""
        return distribution_slot + KEY_PIPELINE_DEPTH

    def distribution_slot(self, governed_slot: int) -> int:
        """Slot during which the keys for ``governed_slot`` are distributed."""
        return governed_slot - KEY_PIPELINE_DEPTH

    # ------------------------------------------------------------------
    # callbacks
    # ------------------------------------------------------------------
    def on_slot_start(self, callback: Callable[[int], None]) -> None:
        """Register ``callback(slot_index)`` to run at every slot boundary."""
        self._callbacks.append(callback)

    def start(self) -> None:
        """Begin firing slot-boundary callbacks (idempotent).

        The first firing happens at the start of the next slot boundary after
        the current time; callbacks for the slot already in progress are not
        retroactively invoked.
        """
        if self._started:
            return
        self._started = True
        now = self.sim.now
        next_slot = self.slot_of(now) + 1
        delay = max(self.start_of(next_slot) - now, 0.0)
        self._timer = PeriodicTimer(
            self.sim, self.duration_s, self._fire, first_delay=delay if delay > 0 else self.duration_s
        )
        # When we are exactly on a boundary, fire immediately for that slot.
        if delay == 0.0:
            self.sim.schedule(0.0, self._fire)
        self._timer.start()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
        self._started = False

    def _fire(self) -> None:
        slot = self.current_slot
        for callback in list(self._callbacks):
            callback(slot)
