"""Edge-router key table.

SIGMA edge routers store, for every governed time slot, the set of keys that
open each multicast group (§3.2.1).  The table is deliberately generic — it
knows nothing about which congestion control protocol produced the keys, only
that a submitted key either matches one of the stored keys for (slot, group)
or it does not (Requirement 3).

Old slots are pruned as the slot clock advances so the table stays bounded by
``groups × retained_slots`` regardless of session length.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ...simulator.address import GroupAddress
from ..delta.base import GroupKeys

__all__ = ["RouterKeyTable"]


class RouterKeyTable:
    """Maps ``(governed slot, group address)`` to the set of accepted keys."""

    def __init__(self, retained_slots: int = 6) -> None:
        if retained_slots < 2:
            raise ValueError("retained_slots must be at least 2")
        self.retained_slots = retained_slots
        self._table: Dict[Tuple[int, int], Set[int]] = {}
        self.entries_stored = 0
        self.lookups = 0
        self.hits = 0

    # ------------------------------------------------------------------
    def store(self, governed_slot: int, group: GroupAddress, keys: GroupKeys) -> None:
        """Record the keys that open ``group`` during ``governed_slot``."""
        valid = keys.valid_keys()
        if not valid:
            return
        entry = self._table.setdefault((governed_slot, int(group)), set())
        entry.update(valid)
        self.entries_stored += 1

    def store_key_values(
        self, governed_slot: int, group: GroupAddress, keys: Iterable[int]
    ) -> None:
        """Record raw key values (used by tests and replay tooling)."""
        entry = self._table.setdefault((governed_slot, int(group)), set())
        entry.update(keys)
        self.entries_stored += 1

    # ------------------------------------------------------------------
    def accepts(self, governed_slot: int, group: GroupAddress, submitted: int) -> bool:
        """True when ``submitted`` opens ``group`` during ``governed_slot``."""
        self.lookups += 1
        keys = self._table.get((governed_slot, int(group)))
        if keys is not None and submitted in keys:
            self.hits += 1
            return True
        return False

    def has_keys_for(self, governed_slot: int, group: GroupAddress) -> bool:
        """True when the router holds any key for (slot, group)."""
        return bool(self._table.get((governed_slot, int(group))))

    def keys_for(self, governed_slot: int, group: GroupAddress) -> Set[int]:
        """The stored key set (copy); empty when unknown."""
        return set(self._table.get((governed_slot, int(group)), set()))

    # ------------------------------------------------------------------
    def prune_before(self, oldest_slot_to_keep: int) -> int:
        """Drop entries for slots before ``oldest_slot_to_keep``; return count dropped."""
        stale = [key for key in self._table if key[0] < oldest_slot_to_keep]
        for key in stale:
            del self._table[key]
        return len(stale)

    def prune_for_current_slot(self, current_slot: int) -> int:
        """Retain only the last ``retained_slots`` slots relative to ``current_slot``."""
        return self.prune_before(current_slot - self.retained_slots + 1)

    def __len__(self) -> int:
        return len(self._table)
