"""Receiver-side SIGMA interface.

Hosts interact with a SIGMA edge router through the same local control path
they would use for IGMP, but with the richer message set of Figure 6.  This
class wraps that message exchange: well-behaved receivers (FLID-DS) call
:meth:`session_join` once and :meth:`subscribe` every slot with the keys
DELTA let them reconstruct; misbehaving receivers use the same interface to
mount their attacks (subscribing without keys, guessing keys), which keeps
the attack surface identical to the paper's threat model — the edge router is
the only point of access (§2.1).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ...simulator.address import GroupAddress
from ...simulator.node import Host
from .messages import SessionJoinMessage, SubscriptionMessage, UnsubscriptionMessage

__all__ = ["SigmaHostInterface"]


class SigmaHostInterface:
    """Host-side stub that sends SIGMA messages to the local edge router."""

    def __init__(
        self, host: Host, session_id: str, key_bits: int = 16, member_count: int = 1
    ) -> None:
        if host.edge_router is None or host.control is None:
            raise RuntimeError(
                f"host {host.name} is not attached to an edge router; "
                "attach it before creating a SIGMA interface"
            )
        if member_count < 1:
            raise ValueError("member_count must be at least 1")
        self.host = host
        self.session_id = session_id
        self.key_bits = key_bits
        #: Receivers this interface speaks for (1 for a plain host; N when the
        #: host aggregates a homogeneous receiver cohort).  Stamped on every
        #: outgoing message so the edge router books keys per receiver while
        #: verifying them once per interface.
        self.member_count = member_count
        self.subscription_messages_sent = 0
        self.session_joins_sent = 0
        self.unsubscriptions_sent = 0

    # ------------------------------------------------------------------
    def _manager(self):
        manager = self.host.edge_router.group_manager
        if manager is None:
            raise RuntimeError(
                f"edge router {self.host.edge_router.name} has no group manager"
            )
        return manager

    # ------------------------------------------------------------------
    def session_join(self, minimal_group: GroupAddress, members: Optional[int] = None) -> None:
        """Request key-less admission to the session's minimal group.

        ``members`` overrides the stamped member count for one message — a
        churned cohort books each arrival wave as a session-join on behalf
        of exactly the newly arrived members, while its per-slot
        subscriptions keep speaking for the whole current population.
        """
        manager = self._manager()
        message = SessionJoinMessage(
            session_id=self.session_id,
            minimal_group=minimal_group,
            member_count=self.member_count if members is None else members,
        )
        self.session_joins_sent += 1
        self.host.control.send(
            manager.handle_session_join,
            self.host,
            message,
            size_bytes=message.size_bytes(),
        )

    def subscribe(self, slot: int, pairs: Sequence[Tuple[GroupAddress, int]]) -> None:
        """Submit (group, key) pairs for ``slot``; empty submissions are skipped."""
        if not pairs:
            return
        manager = self._manager()
        message = SubscriptionMessage(
            session_id=self.session_id,
            slot=slot,
            pairs=tuple(pairs),
            member_count=self.member_count,
        )
        self.subscription_messages_sent += 1
        self.host.control.send(
            manager.handle_subscription,
            self.host,
            message,
            size_bytes=message.size_bytes(self.key_bits),
        )

    def unsubscribe(self, groups: Iterable[GroupAddress]) -> None:
        """Explicitly abandon the listed groups."""
        group_tuple = tuple(groups)
        if not group_tuple:
            return
        manager = self._manager()
        message = UnsubscriptionMessage(session_id=self.session_id, groups=group_tuple)
        self.unsubscriptions_sent += 1
        self.host.control.send(
            manager.handle_unsubscription,
            self.host,
            message,
            size_bytes=message.size_bytes(),
        )
