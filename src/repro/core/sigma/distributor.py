"""Sender-side distribution of keys to edge routers.

SIGMA assumes the network infrastructure is trustworthy, so the sender simply
multicasts *special packets* carrying the per-slot key tuples; edge routers
intercept them (a header bit prevents forwarding to local interfaces) and
store the keys (§3.2.1).  Delivery is made robust with forward error
correction rather than acknowledgements.

``SigmaKeyDistributor`` turns a :class:`~repro.core.delta.base.SlotKeyMaterial`
into a :class:`~repro.core.sigma.messages.KeyAnnouncement`, FEC-encodes it and
transmits the coded symbols in one or more special packets addressed to the
session's minimal group — the group every edge router with session receivers
is already part of.  The byte cost of the special packets is recorded in an
:class:`~repro.simulator.monitors.OverheadAccumulator` so measured SIGMA
overhead (Figure 9) can be compared with the analytic model of §5.4.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ...fec.erasure import ErasureCode, FecConfig
from ...simulator.address import GroupAddress, NodeAddress
from ...simulator.monitors import OverheadAccumulator
from ...simulator.node import Host
from ...simulator.packet import Packet
from ..delta.base import SlotKeyMaterial
from .messages import ANNOUNCEMENT_HEADER, KeyAnnouncement

__all__ = ["SigmaKeyDistributor"]

#: Header bytes of a special packet (network + SIGMA framing), matching the
#: ``h`` term of the §5.4 overhead expression at a typical IP+UDP cost.
SPECIAL_PACKET_HEADER_BYTES = 28


class SigmaKeyDistributor:
    """Builds and multicasts the per-slot key announcements of one session."""

    def __init__(
        self,
        host: Host,
        session_id: str,
        group_addresses: Sequence[GroupAddress],
        key_bits: int = 16,
        slot_bits: int = 8,
        fec_config: Optional[FecConfig] = None,
        symbols_per_packet: int = 16,
        use_fec: bool = True,
        overhead: Optional[OverheadAccumulator] = None,
    ) -> None:
        if not group_addresses:
            raise ValueError("a session needs at least one group address")
        if symbols_per_packet < 1:
            raise ValueError("symbols_per_packet must be positive")
        self.host = host
        self.session_id = session_id
        self.group_addresses = list(group_addresses)
        self.key_bits = key_bits
        self.slot_bits = slot_bits
        self.fec_config = fec_config or FecConfig()
        self.symbols_per_packet = symbols_per_packet
        self.use_fec = use_fec
        self.overhead = overhead
        self._erasure = ErasureCode(self.fec_config)
        self.announcements_sent = 0
        self.special_packets_sent = 0
        self.special_bits_sent = 0

    # ------------------------------------------------------------------
    def announce(self, material: SlotKeyMaterial) -> List[Packet]:
        """Distribute the keys of ``material`` to edge routers.

        Returns the special packets that were sent (useful in tests).
        """
        announcement = KeyAnnouncement.from_material(
            self.session_id, material, self.group_addresses
        )
        packets = (
            self._fec_packets(announcement)
            if self.use_fec
            else [self._plain_packet(announcement)]
        )
        for packet in packets:
            self.host.send(packet)
            self.special_packets_sent += 1
            self.special_bits_sent += packet.size_bits
            if self.overhead is not None:
                self.overhead.record_sigma_packet(packet.size_bits)
        self.announcements_sent += 1
        return packets

    # ------------------------------------------------------------------
    def _minimal_group(self) -> GroupAddress:
        return self.group_addresses[0]

    def _packet_size_bytes(self, symbol_count: int) -> int:
        """Wire size of a special packet carrying ``symbol_count`` coded symbols.

        Every coded symbol costs a 16-bit index plus a key-sized value; the
        framing adds the fixed header bytes.
        """
        symbol_bits = symbol_count * (16 + max(self.key_bits, 32))
        return SPECIAL_PACKET_HEADER_BYTES + math.ceil(symbol_bits / 8)

    def _base_packet(self, size_bytes: int) -> Packet:
        return Packet(
            source=self.host.address,
            destination=self._minimal_group(),
            size_bytes=size_bytes,
            protocol="sigma",
            headers={"sigma_intercept": True},
            overhead_bits=size_bytes * 8,
            created_at=self.host.sim.now,
        )

    def _plain_packet(self, announcement: KeyAnnouncement) -> Packet:
        size = SPECIAL_PACKET_HEADER_BYTES + math.ceil(
            announcement.payload_bits(self.key_bits, self.slot_bits) / 8
        )
        packet = self._base_packet(size)
        packet.headers[ANNOUNCEMENT_HEADER] = announcement
        return packet

    def _fec_packets(self, announcement: KeyAnnouncement) -> List[Packet]:
        source_symbols = announcement.to_ints()
        coded = self._erasure.encode(source_symbols)
        packets: List[Packet] = []
        for start in range(0, len(coded), self.symbols_per_packet):
            chunk = coded[start : start + self.symbols_per_packet]
            packet = self._base_packet(self._packet_size_bytes(len(chunk)))
            packet.headers[ANNOUNCEMENT_HEADER] = {
                "session_id": self.session_id,
                "governed_slot": announcement.governed_slot,
                "source_count": len(source_symbols),
                "symbols": chunk,
            }
            packets.append(packet)
        return packets
