"""SIGMA edge-router agent.

The agent replaces IGMP at a protected edge router (§3.2.3) and implements
the two SIGMA tasks of §3.2:

1. **Key acquisition** — intercept the sender's special packets, reassemble
   (and FEC-decode when needed) the per-slot key announcements, and store the
   address-key tuples in the :class:`~repro.core.sigma.key_table.RouterKeyTable`.
2. **Group management** — process session-join, subscription and
   unsubscription messages from local receivers, verify submitted keys, and
   at every slot boundary stop forwarding groups for which no valid key (or
   grace window) covers the new slot.

Everything here is protocol-independent: the agent never inspects DELTA
semantics, FLID-DL state or congestion signals — it only matches submitted
keys against announced keys, which is Requirement 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ...fec.erasure import ErasureCode, FecConfig
from ...simulator.address import GroupAddress
from ...simulator.multicast import MulticastRoutingService
from ...simulator.node import Host, Router
from ...simulator.packet import Packet
from ..timeslot import SlotClock
from .key_table import RouterKeyTable
from .messages import (
    ANNOUNCEMENT_HEADER,
    KeyAnnouncement,
    SessionJoinMessage,
    SubscriptionMessage,
    UnsubscriptionMessage,
)

__all__ = ["SigmaConfig", "SigmaRouterAgent", "AccessRecord"]


@dataclass
class SigmaConfig:
    """Tunable behaviour of a SIGMA edge router."""

    #: Complete time slots of unrestricted access granted to a new receiver
    #: joining the session's minimal group without a key (§3.2.2).
    session_join_grace_slots: int = 2
    #: Extra slots of unconditional forwarding after a key-validated join of a
    #: group the interface was not yet receiving ("expected group" rule).
    new_group_grace_slots: int = 1
    #: Number of invalid keys from one interface for one (group, slot) that
    #: raises the guessing-attack alarm (§4.2).
    guess_alarm_threshold: int = 8
    #: How many governed slots of key material the router retains.
    retained_slots: int = 6


@dataclass
class AccessRecord:
    """Forwarding state of one (local interface, group) pair."""

    group: GroupAddress
    #: Slots for which a valid key was submitted.
    granted_slots: Set[int] = field(default_factory=set)
    #: Forward unconditionally through the end of this slot (grace windows).
    grace_until_slot: int = -1
    #: Whether the group is currently being forwarded to the interface.
    forwarding: bool = False

    def allows(self, slot: int) -> bool:
        return slot in self.granted_slots or slot <= self.grace_until_slot


class SigmaRouterAgent:
    """Key-based group access control at one edge router."""

    def __init__(
        self,
        router: Router,
        multicast: MulticastRoutingService,
        slot_clock: SlotClock,
        config: Optional[SigmaConfig] = None,
        fec_config: Optional[FecConfig] = None,
    ) -> None:
        self.router = router
        self.multicast = multicast
        self.slot_clock = slot_clock
        self.config = config or SigmaConfig()
        self.key_table = RouterKeyTable(retained_slots=self.config.retained_slots)
        self._erasure = ErasureCode(fec_config or FecConfig())
        #: (host name, group value) -> access record
        self._access: Dict[Tuple[str, int], AccessRecord] = {}
        #: Hosts indexed by name so slot processing can call the multicast service.
        self._hosts: Dict[str, Host] = {}
        #: FEC symbol reassembly buffers: (session, governed slot) -> symbols.
        self._symbol_buffers: Dict[Tuple[str, int], Dict[int, Tuple[int, int]]] = {}
        self._decoded_announcements: Set[Tuple[str, int]] = set()
        # statistics
        self.valid_submissions = 0
        self.invalid_submissions = 0
        self.session_joins = 0
        self.unsubscriptions = 0
        self.revocations = 0
        self.announcements_decoded = 0
        self.igmp_joins_ignored = 0
        self.guess_alarms = 0
        self._guess_counts: Dict[Tuple[str, int, int], int] = {}

        router.group_manager = self
        slot_clock.on_slot_start(self._on_slot_start)

    # ------------------------------------------------------------------
    # key acquisition (special packets)
    # ------------------------------------------------------------------
    def handle_control_packet(self, packet: Packet) -> None:
        """Intercept a SIGMA special packet and absorb its key material."""
        payload = packet.headers.get(ANNOUNCEMENT_HEADER)
        if payload is None:
            return
        if isinstance(payload, KeyAnnouncement):
            self._store_announcement(payload)
            return
        # FEC-coded form: a dict with the symbol slice of a serialised
        # announcement plus the metadata needed to decode it.
        session_id = payload["session_id"]
        governed_slot = payload["governed_slot"]
        source_count = payload["source_count"]
        key = (session_id, governed_slot)
        if key in self._decoded_announcements:
            return
        buffer = self._symbol_buffers.setdefault(key, {})
        for index, value in payload["symbols"]:
            buffer.setdefault(index, (index, value))
        if len(buffer) >= source_count:
            try:
                values = self._erasure.decode(list(buffer.values()), source_count)
            except ValueError:
                return
            announcement = KeyAnnouncement.from_ints(session_id, values)
            self._store_announcement(announcement)
            self._decoded_announcements.add(key)
            del self._symbol_buffers[key]

    def _store_announcement(self, announcement: KeyAnnouncement) -> None:
        for entry in announcement.entries:
            self.key_table.store(announcement.governed_slot, entry.group, entry.keys)
        self.announcements_decoded += 1

    # ------------------------------------------------------------------
    # receiver-facing messages
    # ------------------------------------------------------------------
    def handle_session_join(self, host: Host, message: SessionJoinMessage) -> None:
        """Admit a new receiver to the minimal group without a key (§3.2.2).

        A cohort interface joins once on behalf of ``message.member_count``
        receivers; the admission work (grace window, forwarding state) is per
        interface, so its cost does not grow with the population.
        """
        self.session_joins += message.member_count
        self._hosts[host.name] = host
        record = self._record_for(host, message.minimal_group)
        grace = self.slot_clock.current_slot + self.config.session_join_grace_slots
        record.grace_until_slot = max(record.grace_until_slot, grace)
        self._start_forwarding(host, record)

    def handle_subscription(self, host: Host, message: SubscriptionMessage) -> None:
        """Verify each (group, key) pair and extend access for valid ones.

        Key verification is amortised per interface: each pair is matched
        against the key table exactly once, and the delivery is booked for
        the ``message.member_count`` receivers the interface represents —
        the submission counters therefore track *receivers served*, matching
        what the same population of individual hosts would produce.
        """
        self._hosts[host.name] = host
        members = message.member_count
        for group, key in message.pairs:
            if self.key_table.accepts(message.slot, group, key):
                self.valid_submissions += members
                record = self._record_for(host, group)
                record.granted_slots.add(message.slot)
                if not record.forwarding:
                    grace = message.slot + self.config.new_group_grace_slots
                    record.grace_until_slot = max(record.grace_until_slot, grace)
                    self._start_forwarding(host, record)
            else:
                self.invalid_submissions += members
                self._note_invalid(host, group, message.slot)

    def handle_unsubscription(self, host: Host, message: UnsubscriptionMessage) -> None:
        """Stop forwarding the listed groups to the interface immediately."""
        self.unsubscriptions += 1
        for group in message.groups:
            record = self._access.get((host.name, int(group)))
            if record is not None and record.forwarding:
                self._stop_forwarding(host, record)

    # Legacy IGMP entry points: a SIGMA router ignores bare IGMP reports, which
    # is precisely what blocks the Figure 1 attack at protected edges.
    def handle_join(
        self,
        host: Host,
        group: GroupAddress,
        members: Optional[int] = None,
        enact: bool = True,
    ) -> None:
        """Ignore a bare IGMP join (``members`` = send-time report weight)."""
        self.igmp_joins_ignored += (
            members if members is not None else getattr(host, "population", 1)
        )

    def handle_leave(
        self,
        host: Host,
        group: GroupAddress,
        members: Optional[int] = None,
        enact: bool = True,
    ) -> None:
        """Honour a leave; a churn report (``enact=False``) is accounting-only."""
        if not enact:
            return
        record = self._access.get((host.name, int(group)))
        if record is not None and record.forwarding:
            self._stop_forwarding(host, record)

    # ------------------------------------------------------------------
    # slot-boundary enforcement
    # ------------------------------------------------------------------
    def _on_slot_start(self, slot: int) -> None:
        """Revoke forwarding for every (interface, group) lacking access in ``slot``."""
        for (host_name, group_value), record in list(self._access.items()):
            if not record.forwarding:
                continue
            if record.allows(slot):
                continue
            host = self._hosts.get(host_name)
            if host is None:
                continue
            self._stop_forwarding(host, record)
            # One revocation event per represented receiver, so the counter
            # reads the same whether the population is aggregated or not.
            self.revocations += getattr(host, "population", 1)
        self.key_table.prune_for_current_slot(slot)
        self._prune_access(slot)

    def _prune_access(self, slot: int) -> None:
        horizon = slot - self.config.retained_slots
        for record in self._access.values():
            record.granted_slots = {s for s in record.granted_slots if s >= horizon}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _record_for(self, host: Host, group: GroupAddress) -> AccessRecord:
        key = (host.name, int(group))
        record = self._access.get(key)
        if record is None:
            record = AccessRecord(group=group)
            self._access[key] = record
        return record

    def _start_forwarding(self, host: Host, record: AccessRecord) -> None:
        if not record.forwarding:
            record.forwarding = True
            self.multicast.join(host, record.group)

    def _stop_forwarding(self, host: Host, record: AccessRecord) -> None:
        if record.forwarding:
            record.forwarding = False
            self.multicast.leave(host, record.group)

    def _note_invalid(self, host: Host, group: GroupAddress, slot: int) -> None:
        key = (host.name, int(group), slot)
        self._guess_counts[key] = self._guess_counts.get(key, 0) + 1
        if self._guess_counts[key] == self.config.guess_alarm_threshold:
            self.guess_alarms += 1

    # ------------------------------------------------------------------
    # introspection helpers (used by tests and experiments)
    # ------------------------------------------------------------------
    def is_forwarding(self, host: Host, group: GroupAddress) -> bool:
        record = self._access.get((host.name, int(group)))
        return bool(record and record.forwarding)

    def forwarded_groups(self, host: Host) -> list[GroupAddress]:
        return [
            record.group
            for (host_name, _), record in self._access.items()
            if host_name == host.name and record.forwarding
        ]
