"""SIGMA — Secure Internet Group Management Architecture.

Generic, protocol-independent key-based group access control at edge routers:
key announcements from the sender, a per-slot key table, receiver-facing
session-join / subscription / unsubscription messages, grace windows for new
receivers and newly joined groups, and slot-boundary enforcement.
"""

from .distributor import SigmaKeyDistributor
from .host_interface import SigmaHostInterface
from .key_table import RouterKeyTable
from .messages import (
    ANNOUNCEMENT_HEADER,
    KeyAnnouncement,
    KeyAnnouncementEntry,
    SessionJoinMessage,
    SubscriptionMessage,
    UnsubscriptionMessage,
)
from .router_agent import AccessRecord, SigmaConfig, SigmaRouterAgent

__all__ = [
    "SigmaKeyDistributor",
    "SigmaHostInterface",
    "RouterKeyTable",
    "ANNOUNCEMENT_HEADER",
    "KeyAnnouncement",
    "KeyAnnouncementEntry",
    "SessionJoinMessage",
    "SubscriptionMessage",
    "UnsubscriptionMessage",
    "AccessRecord",
    "SigmaConfig",
    "SigmaRouterAgent",
]
