"""SIGMA message formats.

Figure 6 of the paper defines the three messages receivers send to their edge
router, and §3.2.1 describes the special packets through which the sender
distributes per-slot keys to edge routers.  This module defines all of them
as dataclasses plus the integer serialisation used when key announcements are
FEC-protected.

Receiver → edge router (Figure 6):

* :class:`SessionJoinMessage` — the address of the session's minimal group;
  grants two slots of unrestricted access so a new receiver can bootstrap.
* :class:`SubscriptionMessage` — a time slot plus ``(group address, key)``
  pairs; the router verifies each key before forwarding the group during
  that slot.
* :class:`UnsubscriptionMessage` — addresses of abandoned groups.

Sender → edge routers (§3.2.1):

* :class:`KeyAnnouncement` — for one governed slot, the tuple
  ``(group address, top key, decrease key, increase key)`` for every group in
  the session.  Serialisable to a flat list of field-sized integers so it can
  be spread across FEC-coded special packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ...simulator.address import GroupAddress
from ..delta.base import GroupKeys, SlotKeyMaterial

__all__ = [
    "SessionJoinMessage",
    "SubscriptionMessage",
    "UnsubscriptionMessage",
    "KeyAnnouncementEntry",
    "KeyAnnouncement",
    "ANNOUNCEMENT_HEADER",
]

#: Packet-header key under which announcement payloads travel.
ANNOUNCEMENT_HEADER = "sigma_announcement"

#: Sentinel used in the integer serialisation for "key absent".
_ABSENT = 0xFFFF_FFFF


@dataclass(frozen=True)
class SessionJoinMessage:
    """Figure 6(a): request key-less admission to the session's minimal group.

    ``member_count`` is the number of receivers the sending interface
    represents: 1 for an ordinary host, N for a
    :mod:`~repro.multicast_cc.cohort` host aggregating N homogeneous
    receivers behind one edge interface.
    """

    session_id: str
    minimal_group: GroupAddress
    member_count: int = 1

    def size_bytes(self) -> int:
        """Approximate wire size (session tag + one group address)."""
        return 8 + 4


@dataclass(frozen=True)
class SubscriptionMessage:
    """Figure 6(b): per-slot subscription with one key per requested group.

    A cohort interface submits each (group, key) pair once on behalf of
    ``member_count`` receivers; the edge router verifies the key once and
    books the delivery for the whole population (§3.2's per-interface model
    — the router never needed per-receiver state behind an interface).
    """

    session_id: str
    slot: int
    pairs: Tuple[Tuple[GroupAddress, int], ...]
    member_count: int = 1

    def size_bytes(self, key_bits: int = 16) -> int:
        """Approximate wire size: slot number plus (address, key) pairs."""
        return 8 + 2 + len(self.pairs) * (4 + max(1, key_bits // 8))

    def groups(self) -> List[GroupAddress]:
        return [group for group, _ in self.pairs]


@dataclass(frozen=True)
class UnsubscriptionMessage:
    """Figure 6(c): explicit, immediate departure from the listed groups."""

    session_id: str
    groups: Tuple[GroupAddress, ...]

    def size_bytes(self) -> int:
        return 8 + len(self.groups) * 4


@dataclass(frozen=True)
class KeyAnnouncementEntry:
    """One (group address, keys) tuple of a key announcement."""

    group: GroupAddress
    keys: GroupKeys

    def to_ints(self) -> List[int]:
        """Serialise to five integers: address, top, decrease, increase, flags."""
        return [
            int(self.group),
            self.keys.top if self.keys.top is not None else _ABSENT,
            self.keys.decrease if self.keys.decrease is not None else _ABSENT,
            self.keys.increase if self.keys.increase is not None else _ABSENT,
        ]

    @classmethod
    def from_ints(cls, values: Sequence[int]) -> "KeyAnnouncementEntry":
        if len(values) != 4:
            raise ValueError(f"expected 4 integers per entry, got {len(values)}")
        address, top, decrease, increase = values
        return cls(
            group=GroupAddress(address),
            keys=GroupKeys(
                top=None if top == _ABSENT else top,
                decrease=None if decrease == _ABSENT else decrease,
                increase=None if increase == _ABSENT else increase,
            ),
        )


@dataclass
class KeyAnnouncement:
    """All address-key tuples of one session for one governed slot."""

    session_id: str
    governed_slot: int
    entries: List[KeyAnnouncementEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def from_material(
        cls,
        session_id: str,
        material: SlotKeyMaterial,
        group_addresses: Sequence[GroupAddress],
    ) -> "KeyAnnouncement":
        """Build an announcement from DELTA key material.

        ``group_addresses[g-1]`` is the multicast address of group ``g``.
        """
        if len(group_addresses) < material.group_count:
            raise ValueError(
                "not enough group addresses for the key material "
                f"({len(group_addresses)} < {material.group_count})"
            )
        entries = [
            KeyAnnouncementEntry(group=group_addresses[g - 1], keys=material.keys[g])
            for g in sorted(material.keys)
        ]
        return cls(session_id=session_id, governed_slot=material.governed_slot, entries=entries)

    # ------------------------------------------------------------------
    def to_ints(self) -> List[int]:
        """Flat integer serialisation: [slot, n_entries, entry fields...]."""
        values: List[int] = [self.governed_slot, len(self.entries)]
        for entry in self.entries:
            values.extend(entry.to_ints())
        return values

    @classmethod
    def from_ints(cls, session_id: str, values: Sequence[int]) -> "KeyAnnouncement":
        if len(values) < 2:
            raise ValueError("announcement serialisation too short")
        slot, count = values[0], values[1]
        expected = 2 + count * 4
        if len(values) < expected:
            raise ValueError(
                f"announcement serialisation truncated: need {expected} ints, got {len(values)}"
            )
        entries = [
            KeyAnnouncementEntry.from_ints(values[2 + i * 4 : 6 + i * 4])
            for i in range(count)
        ]
        return cls(session_id=session_id, governed_slot=slot, entries=entries)

    # ------------------------------------------------------------------
    def payload_bits(self, key_bits: int = 16, slot_bits: int = 8) -> int:
        """Bits of key material carried, per the §5.4 overhead model.

        Each tuple carries a 32-bit group address, a top key, a decrease key
        for all but the last group, and an increase key when present.
        """
        bits = slot_bits
        for index, entry in enumerate(self.entries):
            bits += 32  # multicast address
            if entry.keys.top is not None:
                bits += key_bits
            if entry.keys.decrease is not None:
                bits += key_bits
            if entry.keys.increase is not None:
                bits += key_bits
        return bits
