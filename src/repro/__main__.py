"""Command-line entry point: list, run and profile registered scenarios.

Examples::

    python -m repro list
    python -m repro topologies
    python -m repro run figure8-throughput --seeds 4 --jobs 4
    python -m repro run parking-lot-attack --duration 30 --out results/
    python -m repro profile figure8-throughput --top 25 --sort tottime
    python -m repro cache stats --cache-dir results/cache
    python -m repro cache prune --cache-dir results/cache --max-bytes 50000000
    python -m repro serve --socket /tmp/repro.sock --cache-dir results/cache --jobs 4
    python -m repro submit figure8-throughput --socket /tmp/repro.sock --seeds 4
    python -m repro status --socket /tmp/repro.sock

``run`` executes the named scenario's spec over a seed sweep through the
parallel :class:`~repro.experiments.runner.ExperimentRunner`, prints the
per-seed key metrics, the cache/warm-start counters and the cross-seed
aggregate, and optionally writes the raw results plus the aggregate as JSON.

``cache`` inspects the runner's on-disk cache: ``stats`` reports result
entries and checkpoint blobs (count and bytes), ``prune --max-bytes N``
evicts oldest-first until the directory fits the budget.

``profile`` realises one seed of a scenario under :mod:`cProfile` and prints
the top-N entries of the :mod:`pstats` table — the workflow behind the
engine hot-path overhaul (see ``docs/performance.md``).

``serve`` runs the experiment daemon (see ``docs/service.md``); ``submit``
sends a scenario sweep to a running daemon and streams the results back;
``status`` prints a daemon's introspection snapshot (queue depth, cache hit
rate, worker health).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .adversary import ADVERSARIES
from .analysis.reporting import (
    aggregate_metrics,
    format_aggregate_table,
    format_protection_table,
    format_table,
    write_json,
)
from .experiments import (
    ExperimentRunner,
    cache_stats,
    list_scenarios,
    prune_cache,
    scenario_entry,
)
from .simulator.topology import TOPOLOGIES


def _first_doc_line(obj) -> str:
    """First docstring line, or empty (docstrings vanish under ``python -OO``)."""
    return next(iter((obj.__doc__ or "").strip().splitlines()), "")


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [(entry.name, entry.description) for entry in list_scenarios()]
    print(format_table(["scenario", "description"], rows))
    return 0


def _cmd_topologies(_args: argparse.Namespace) -> int:
    rows = [
        (name, _first_doc_line(factory)) for name, factory in sorted(TOPOLOGIES.items())
    ]
    print(format_table(["topology", "description"], rows))
    return 0


def _cmd_adversaries(_args: argparse.Namespace) -> int:
    rows = [(name, _first_doc_line(cls)) for name, cls in sorted(ADVERSARIES.items())]
    print(format_table(["strategy", "description"], rows))
    return 0


def _parse_param(text: str):
    """Parse a ``key=value`` override; values become int/float/bool if they can."""
    key, sep, raw = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    value: object
    lowered = raw.lower()
    if lowered in ("true", "false"):
        value = lowered == "true"
    else:
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
    return key, value


def _resolve_spec(args: argparse.Namespace):
    """Resolve a subcommand's scenario + overrides into ``(entry, spec)``.

    Shared by ``run`` and ``profile`` (which accept the same scenario,
    ``--duration`` and ``--param`` surface).  Prints an ``error:`` line and
    returns None on user error; callers exit 2.
    """
    try:
        entry = scenario_entry(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return None
    params = dict(args.param or [])
    if args.duration is not None:
        params["duration_s"] = args.duration
    try:
        spec = entry.build(**params)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    return entry, spec


def _run_population(result) -> int:
    """Receivers one run simulated, cohort-aware.

    Sessions that declare cohorts report an explicit ``population``; plain
    sessions count one receiver per goodput entry.
    """
    total = 0
    for session in result.metrics.get("multicast", {}).values():
        total += session.get("population", len(session.get("receiver_kbps", ())))
    return total


def _format_population_rate(results, wall_s: float, cache_hits: int) -> str:
    """One-line receivers-simulated-per-second summary for ``run`` output."""
    total = sum(_run_population(result) for result in results)
    rate = total / wall_s if wall_s > 0 else 0.0
    line = (
        f"receivers simulated: {total:,} across {len(results)} run(s) "
        f"in {wall_s:.2f}s wall ({rate:,.0f} receivers/s)"
    )
    if cache_hits:
        line += f" [{cache_hits} cached run(s); rate includes cache hits]"
    return line


def _cmd_run(args: argparse.Namespace) -> int:
    resolved = _resolve_spec(args)
    if resolved is None:
        return 2
    entry, spec = resolved
    try:
        runner = ExperimentRunner(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            warm_start=args.warm_start,
            verify_warm_start=args.verify_warm_start,
        )
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    wall_start = time.perf_counter()
    results = runner.run_seed_sweep(spec, range(args.seeds))
    wall_s = time.perf_counter() - wall_start

    print(f"{entry.name}: {entry.description}")
    print(
        f"topology={spec.topology} protected={spec.protected} "
        f"duration={spec.effective_duration_s:g}s seeds={args.seeds} jobs={args.jobs}"
    )
    print(_format_population_rate(results, wall_s, runner.cache_hits))
    print(
        f"cache: {runner.cache_hits} hit(s), {runner.cache_misses} miss(es); "
        f"warm starts: {runner.warm_runs} run(s) from "
        f"{runner.checkpoint_hits + runner.checkpoint_misses} checkpoint(s) "
        f"({runner.checkpoint_hits} reused, {runner.checkpoint_misses} built)"
    )
    rows = []
    for result in results:
        for session_id, session in result.metrics["multicast"].items():
            rows.append((result.seed, session_id, session["average_kbps"]))
    print()
    print(format_table(["seed", "session", "avg goodput (Kbps)"], rows))
    for result in results:
        protection = result.metrics.get("protection")
        if protection:
            print(f"\nprotection (seed {result.seed}):")
            print(format_protection_table(protection))
    print()
    aggregate = aggregate_metrics([result.metrics for result in results])
    print(format_aggregate_table(aggregate))

    if args.out is not None:
        out_dir = Path(args.out)
        runs_path = write_json(
            out_dir / f"{entry.name}-runs.json", [r.to_dict() for r in results]
        )
        agg_path = write_json(out_dir / f"{entry.name}-aggregate.json", aggregate)
        print(f"\nwrote {runs_path} and {agg_path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceConfig, run_daemon

    if args.socket is None and args.port is None:
        print("error: serve needs --socket PATH or --port N", file=sys.stderr)
        return 2
    try:
        config = ServiceConfig(
            cache_dir=Path(args.cache_dir),
            socket=Path(args.socket) if args.socket else None,
            host=args.host,
            port=args.port or 0,
            jobs=args.jobs,
            retries=args.retries,
            timeout_s=args.timeout,
            max_queue=args.max_queue,
            warm_start=args.warm_start,
            checkpoint_dir=Path(args.checkpoint_dir) if args.checkpoint_dir else None,
        )
        run_daemon(config)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _connect_client(args: argparse.Namespace):
    """Open a :class:`~repro.service.ServiceClient` from ``--socket``/``--host``.

    Prints an ``error:`` line and returns None on user/connection error;
    callers exit 2.
    """
    from .service import ServiceClient, ServiceError

    if args.socket is None and args.port is None:
        print(
            "error: need --socket PATH or --host/--port of a running daemon",
            file=sys.stderr,
        )
        return None
    try:
        return ServiceClient(
            socket_path=args.socket,
            host=args.host if args.socket is None else None,
            port=args.port if args.socket is None else None,
            timeout_s=args.connect_timeout,
        )
    except (OSError, ServiceError) as exc:
        print(f"error: cannot reach the daemon: {exc}", file=sys.stderr)
        return None


def _cmd_submit(args: argparse.Namespace) -> int:
    import hashlib
    import json

    from .service import ServiceError

    resolved = _resolve_spec(args)
    if resolved is None:
        return 2
    entry, spec = resolved
    client = _connect_client(args)
    if client is None:
        return 2
    events = []
    try:
        with client:
            results = client.run(
                spec,
                seeds=list(range(args.seeds)),
                timeout_s=args.timeout,
                on_event=events.append,
            )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    streamed = {e["seed"]: e for e in events if e.get("event") == "result"}
    cached = sum(1 for e in streamed.values() if e.get("cached"))
    deduped = sum(1 for e in streamed.values() if e.get("deduped"))
    warm = sum(1 for e in streamed.values() if e.get("warm"))
    print(f"{entry.name}: {entry.description}")
    print(
        f"daemon answered {len(results)} cell(s): {cached} cached, "
        f"{deduped} deduped, {warm} warm-started"
    )
    rows = []
    for result in results:
        for session_id, session in result.metrics["multicast"].items():
            rows.append((result.seed, session_id, session["average_kbps"]))
    print()
    print(format_table(["seed", "session", "avg goodput (Kbps)"], rows))
    if args.digest:
        for result in results:
            text = json.dumps(
                result.metrics, sort_keys=True, separators=(",", ":")
            )
            digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
            print(f"metrics_sha256 seed={result.seed}: {digest}")
    if args.out is not None:
        out_dir = Path(args.out)
        runs_path = write_json(
            out_dir / f"{entry.name}-runs.json", [r.to_dict() for r in results]
        )
        print(f"wrote {runs_path}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    client = _connect_client(args)
    if client is None:
        return 2
    with client:
        document = client.status()
    document.pop("event", None)
    document.pop("id", None)
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    directory = Path(args.cache_dir)
    try:
        if args.cache_command == "prune":
            report = prune_cache(directory, args.max_bytes)
            print(
                f"{report['path']}: deleted {report['deleted']} file(s), "
                f"freed {report['freed_bytes']:,} bytes, "
                f"{report['remaining_bytes']:,} bytes remain"
            )
        else:
            report = cache_stats(directory)
            results, checkpoints = report["results"], report["checkpoints"]
            print(f"{report['path']}:")
            print(
                f"  results:     {results['entries']} entries, "
                f"{results['bytes']:,} bytes"
            )
            print(
                f"  checkpoints: {checkpoints['entries']} blobs, "
                f"{checkpoints['bytes']:,} bytes"
            )
            print(f"  total:       {report['total_bytes']:,} bytes")
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    from .experiments.scenario import Scenario

    resolved = _resolve_spec(args)
    if resolved is None:
        return 2
    entry, spec = resolved
    spec = spec.with_seed(args.seed)
    duration = spec.effective_duration_s
    scenario = Scenario.from_spec(spec)
    sim = scenario.network.sim

    print(
        f"profiling {entry.name} (seed {args.seed}, {duration:g}s simulated) ..."
    )
    profiler = cProfile.Profile()
    profiler.enable()
    scenario.run(duration)
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    wall = max(stats.total_tt, 1e-9)
    print(
        f"{sim.events_executed:,} events in {wall:.2f}s profiled "
        f"({sim.events_executed / wall:,.0f} events/s under instrumentation; "
        f"run benchmarks/bench_engine_hotpath.py for uninstrumented numbers)"
    )
    if args.out is not None:
        stats.dump_stats(args.out)
        print(f"wrote raw profile to {args.out} (inspect with `python -m pstats`)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of GorinskyJVZ03: run registered evaluation scenarios.",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list registered scenarios").set_defaults(func=_cmd_list)
    sub.add_parser("topologies", help="list named topologies").set_defaults(
        func=_cmd_topologies
    )
    sub.add_parser("adversaries", help="list registered adversary strategies").set_defaults(
        func=_cmd_adversaries
    )

    # Options shared by every subcommand that resolves a scenario spec
    # (consumed by _resolve_spec).
    spec_options = argparse.ArgumentParser(add_help=False)
    spec_options.add_argument("scenario", help="scenario name (see `list`)")
    spec_options.add_argument(
        "--duration", type=float, default=None, help="override duration (s)"
    )
    spec_options.add_argument(
        "--param",
        type=_parse_param,
        action="append",
        metavar="KEY=VALUE",
        help="builder parameter override (repeatable), e.g. --param count=8",
    )

    run = sub.add_parser(
        "run", help="run a registered scenario by name", parents=[spec_options]
    )
    run.add_argument("--seeds", type=int, default=1, help="number of seeds (0..N-1)")
    run.add_argument("--jobs", type=int, default=1, help="parallel worker processes")
    run.add_argument("--out", default=None, help="directory for JSON results")
    run.add_argument("--cache-dir", default=None, help="per-run result cache directory")
    run.add_argument(
        "--no-warm-start",
        dest="warm_start",
        action="store_false",
        help="disable common-prefix warm starts (always run cells cold)",
    )
    run.add_argument(
        "--verify-warm-start",
        action="store_true",
        help="re-run one warm-started cell per prefix cold and assert "
        "byte-identical results",
    )
    run.set_defaults(func=_cmd_run, warm_start=True)

    cache = sub.add_parser("cache", help="inspect or prune a runner cache directory")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser("stats", help="result/checkpoint entry counts and bytes")
    stats.add_argument("--cache-dir", required=True, help="cache directory to inspect")
    stats.set_defaults(func=_cmd_cache)
    prune = cache_sub.add_parser("prune", help="evict oldest entries to fit a byte budget")
    prune.add_argument("--cache-dir", required=True, help="cache directory to prune")
    prune.add_argument(
        "--max-bytes", type=int, required=True, help="target size in bytes"
    )
    prune.set_defaults(func=_cmd_cache)

    profile = sub.add_parser(
        "profile",
        help="run one scenario under cProfile and print the hot spots",
        parents=[spec_options],
    )
    profile.add_argument("--seed", type=int, default=0, help="seed to profile")
    profile.add_argument("--top", type=int, default=20, help="pstats rows to print")
    profile.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls", "time", "calls"],
        help="pstats sort key",
    )
    profile.add_argument("--out", default=None, help="write the raw .prof dump here")
    profile.set_defaults(func=_cmd_profile)

    # Options shared by the subcommands that talk to a running daemon.
    endpoint_options = argparse.ArgumentParser(add_help=False)
    endpoint_options.add_argument(
        "--socket", default=None, help="Unix socket path of the daemon"
    )
    endpoint_options.add_argument(
        "--host", default="127.0.0.1", help="daemon TCP host (with --port)"
    )
    endpoint_options.add_argument(
        "--port", type=int, default=None, help="daemon TCP port"
    )

    serve = sub.add_parser(
        "serve",
        help="run the experiment daemon (async job server over the runner)",
        parents=[endpoint_options],
    )
    serve.add_argument(
        "--cache-dir",
        required=True,
        help="shared result-cache / checkpoint-store directory",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        help="warm-start blob directory (default: --cache-dir)",
    )
    serve.add_argument("--jobs", type=int, default=1, help="worker processes")
    serve.add_argument(
        "--retries",
        type=int,
        default=2,
        help="bounded retries for a job whose worker crashed",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-job wall-clock budget (s)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=256, help="pending-cell admission bound"
    )
    serve.add_argument(
        "--no-warm-start",
        dest="warm_start",
        action="store_false",
        help="disable common-prefix warm starts (always run cells cold)",
    )
    serve.set_defaults(func=_cmd_serve, warm_start=True)

    submit = sub.add_parser(
        "submit",
        help="send a scenario sweep to a running daemon and stream results",
        parents=[spec_options, endpoint_options],
    )
    submit.add_argument("--seeds", type=int, default=1, help="number of seeds (0..N-1)")
    submit.add_argument(
        "--timeout", type=float, default=None, help="per-job budget override (s)"
    )
    submit.add_argument(
        "--connect-timeout",
        type=float,
        default=None,
        help="socket timeout for talking to the daemon (s)",
    )
    submit.add_argument(
        "--digest",
        action="store_true",
        help="print each result's canonical metrics SHA-256 (golden-digest form)",
    )
    submit.add_argument("--out", default=None, help="directory for JSON results")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status",
        help="print a running daemon's introspection snapshot",
        parents=[endpoint_options],
    )
    status.add_argument(
        "--connect-timeout",
        type=float,
        default=None,
        help="socket timeout for talking to the daemon (s)",
    )
    status.set_defaults(func=_cmd_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        print()
        return _cmd_list(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
