"""Command-line entry point: list and run registered scenarios.

Examples::

    python -m repro list
    python -m repro topologies
    python -m repro run figure8-throughput --seeds 4 --jobs 4
    python -m repro run parking-lot-attack --duration 30 --out results/

``run`` executes the named scenario's spec over a seed sweep through the
parallel :class:`~repro.experiments.runner.ExperimentRunner`, prints the
per-seed key metrics and the cross-seed aggregate, and optionally writes the
raw results plus the aggregate as JSON.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .adversary import ADVERSARIES
from .analysis.reporting import (
    aggregate_metrics,
    format_aggregate_table,
    format_protection_table,
    format_table,
    write_json,
)
from .experiments import ExperimentRunner, list_scenarios, scenario_entry
from .simulator.topology import TOPOLOGIES


def _first_doc_line(obj) -> str:
    """First docstring line, or empty (docstrings vanish under ``python -OO``)."""
    return next(iter((obj.__doc__ or "").strip().splitlines()), "")


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [(entry.name, entry.description) for entry in list_scenarios()]
    print(format_table(["scenario", "description"], rows))
    return 0


def _cmd_topologies(_args: argparse.Namespace) -> int:
    rows = [
        (name, _first_doc_line(factory)) for name, factory in sorted(TOPOLOGIES.items())
    ]
    print(format_table(["topology", "description"], rows))
    return 0


def _cmd_adversaries(_args: argparse.Namespace) -> int:
    rows = [(name, _first_doc_line(cls)) for name, cls in sorted(ADVERSARIES.items())]
    print(format_table(["strategy", "description"], rows))
    return 0


def _parse_param(text: str):
    """Parse a ``key=value`` override; values become int/float/bool if they can."""
    key, sep, raw = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    value: object
    lowered = raw.lower()
    if lowered in ("true", "false"):
        value = lowered == "true"
    else:
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
    return key, value


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        entry = scenario_entry(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    params = dict(args.param or [])
    if args.duration is not None:
        params["duration_s"] = args.duration
    try:
        spec = entry.build(**params)
        runner = ExperimentRunner(jobs=args.jobs, cache_dir=args.cache_dir)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    results = runner.run_seed_sweep(spec, range(args.seeds))

    print(f"{entry.name}: {entry.description}")
    print(
        f"topology={spec.topology} protected={spec.protected} "
        f"duration={spec.effective_duration_s:g}s seeds={args.seeds} jobs={args.jobs}"
    )
    rows = []
    for result in results:
        for session_id, session in result.metrics["multicast"].items():
            rows.append((result.seed, session_id, session["average_kbps"]))
    print()
    print(format_table(["seed", "session", "avg goodput (Kbps)"], rows))
    for result in results:
        protection = result.metrics.get("protection")
        if protection:
            print(f"\nprotection (seed {result.seed}):")
            print(format_protection_table(protection))
    print()
    aggregate = aggregate_metrics([result.metrics for result in results])
    print(format_aggregate_table(aggregate))

    if args.out is not None:
        out_dir = Path(args.out)
        runs_path = write_json(
            out_dir / f"{entry.name}-runs.json", [r.to_dict() for r in results]
        )
        agg_path = write_json(out_dir / f"{entry.name}-aggregate.json", aggregate)
        print(f"\nwrote {runs_path} and {agg_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of GorinskyJVZ03: run registered evaluation scenarios.",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list registered scenarios").set_defaults(func=_cmd_list)
    sub.add_parser("topologies", help="list named topologies").set_defaults(
        func=_cmd_topologies
    )
    sub.add_parser("adversaries", help="list registered adversary strategies").set_defaults(
        func=_cmd_adversaries
    )

    run = sub.add_parser("run", help="run a registered scenario by name")
    run.add_argument("scenario", help="scenario name (see `list`)")
    run.add_argument("--seeds", type=int, default=1, help="number of seeds (0..N-1)")
    run.add_argument("--jobs", type=int, default=1, help="parallel worker processes")
    run.add_argument("--duration", type=float, default=None, help="override duration (s)")
    run.add_argument(
        "--param",
        type=_parse_param,
        action="append",
        metavar="KEY=VALUE",
        help="builder parameter override (repeatable), e.g. --param count=8",
    )
    run.add_argument("--out", default=None, help="directory for JSON results")
    run.add_argument("--cache-dir", default=None, help="per-run result cache directory")
    run.set_defaults(func=_cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        print()
        return _cmd_list(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
