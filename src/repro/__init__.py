"""repro — reproduction of "Robustness to Inflated Subscription in Multicast
Congestion Control" (Gorinsky, Jain, Vin, Zhang; SIGCOMM 2003).

The package is organised bottom-up:

* :mod:`repro.simulator` — discrete-event network simulator (the NS-2
  substitute): engine, links, queues, routers, multicast, IGMP, monitors.
* :mod:`repro.crypto` / :mod:`repro.fec` — nonces, XOR key algebra, Shamir
  secret sharing and erasure coding.
* :mod:`repro.core` — the paper's contribution: DELTA (in-band key
  distribution), SIGMA (key-based group access at edge routers), the time-slot
  pipeline and the analytic overhead model.
* :mod:`repro.transport` — TCP Reno and CBR cross traffic.
* :mod:`repro.multicast_cc` — FLID-DL, FLID-DS, misbehaving receivers and the
  replicated-multicast variant.
* :mod:`repro.analysis` — throughput, fairness and convergence analysis.
* :mod:`repro.experiments` — one module per paper figure, with the §5.1
  settings as defaults.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
