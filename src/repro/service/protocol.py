"""Wire protocol of the experiment service: line-delimited canonical JSON.

Every message — request or event — is one JSON object serialised in the
repository's canonical form (sorted keys, no whitespace) followed by a
single ``\\n``.  The framing is deliberately primitive: any language (or
``nc``) can speak it, and canonical serialisation means two byte-equal
messages are the *same* message, which the determinism suite leans on.

Client → server requests carry an ``op`` field:

========== ===========================================================
op         payload
========== ===========================================================
submit     ``{"op": "submit", "id": str?, "spec": {...}, "seeds": [int]?,``
           ``"timeout_s": float?}`` — run a canonical
           :class:`~repro.experiments.spec.ScenarioSpec` dict over the seed
           sweep (default: the spec's own seed), streaming one ``result``
           event per cell as it completes.
status     ``{"op": "status"}`` — service introspection snapshot.
cache-get  ``{"op": "cache-get", "key": str}`` — fetch the result document
           stored under a SHA-256 cache key, never touching the pool.
blob-stat  ``{"op": "blob-stat", "key": str}`` — existence/size of a
           ``ck_<key>.pkl`` warm-start blob in the shared store.
shutdown   ``{"op": "shutdown"}`` — ask the daemon to drain and exit
           (equivalent to SIGTERM; in-flight jobs finish first).
========== ===========================================================

Server → client messages carry an ``event`` field: ``hello`` (greeting with
protocol/package versions), ``accepted``/``rejected`` (admission verdicts),
``result`` (one cell's :class:`~repro.experiments.runner.RunResult` dict,
tagged with its seed and whether it was served from cache), ``error``
(per-cell or per-request failure), ``done`` (end of a submission's stream,
with summary counters), ``status``, ``cache``, ``blob`` and ``bye`` (drain
notice).  Events for concurrent submissions on one connection interleave;
every event echoes the request's ``id`` so clients can demultiplex.
"""

from __future__ import annotations

import json
from typing import Any, Dict

__all__ = [
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_line",
    "encode_message",
]

#: Bumped on any incompatible change to the message schema.  The server
#: advertises it in the ``hello`` event; clients refuse to talk to a newer
#: major protocol.
PROTOCOL_VERSION = 1

#: Upper bound on one framed message.  Spec documents and result documents
#: with recorded series are large but bounded; 64 MiB leaves headroom while
#: keeping a malformed (newline-less) peer from ballooning server memory.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A line that is not a valid protocol message."""


def encode_message(document: Dict[str, Any]) -> bytes:
    """Frame ``document`` as one canonical-JSON line (UTF-8, ``\\n``-terminated)."""
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict.

    Raises :class:`ProtocolError` for anything that is not a single JSON
    object — the server answers those with an ``error`` event instead of
    dropping the connection, so one bad line cannot take down a client's
    other in-flight work.
    """
    try:
        document = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from None
    if not isinstance(document, dict):
        raise ProtocolError(
            f"a protocol message must be a JSON object, got {type(document).__name__}"
        )
    return document
