"""The experiment daemon: an asyncio front-end over the shared runner.

:class:`ExperimentService` listens on a Unix socket or a TCP port, speaks
the line-delimited protocol from :mod:`repro.service.protocol`, and routes
submissions through an :class:`~repro.service.jobs.ExperimentScheduler`
onto an :class:`~repro.service.pool.AsyncJobPool`.  The daemon owns the
durable stores — the SHA-256 result cache and the ``ck_*.pkl`` warm-start
blobs — so every client shares one cache and one simulation per distinct
spec.

Lifecycle: ``SIGTERM``/``SIGINT`` (or a ``shutdown`` request) begin a
*drain* — the listener closes, new submissions are rejected with a
``draining`` notice, in-flight submissions run to completion and stream
their results, then connections are told ``bye`` and the process exits.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from .. import __version__
from ..experiments.runner import ResultCache
from ..experiments.spec import ScenarioSpec
from ..experiments.warmstart import CheckpointStore
from .jobs import ExperimentScheduler, QueueFullError, ServiceDrainingError
from .pool import AsyncJobPool
from .protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_message,
)

__all__ = ["ExperimentService", "ServiceConfig", "run_daemon"]


@dataclass
class ServiceConfig:
    """Everything the daemon needs to come up.

    Exactly one endpoint is used: ``socket`` (a Unix socket path) when set,
    otherwise TCP on ``host``/``port`` (``port=0`` picks a free port, which
    the startup announcement reports).  ``checkpoint_dir`` defaults to
    ``cache_dir`` so result entries and warm-start blobs share one store,
    exactly like a batch runner pointed at the same directory.
    """

    cache_dir: Path
    socket: Optional[Path] = None
    host: str = "127.0.0.1"
    port: int = 0
    jobs: int = 1
    retries: int = 2
    timeout_s: Optional[float] = None
    max_queue: int = 256
    warm_start: bool = True
    checkpoint_dir: Optional[Path] = None

    def resolved_checkpoint_dir(self) -> Path:
        """The blob store directory (defaults to the result cache's)."""
        return Path(self.checkpoint_dir or self.cache_dir)


class ExperimentService:
    """One daemon instance: listener, scheduler, pool and drain logic."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.pool = AsyncJobPool(
            jobs=config.jobs, retries=config.retries, timeout_s=config.timeout_s
        )
        self.cache = ResultCache(Path(config.cache_dir))
        self.scheduler = ExperimentScheduler(
            pool=self.pool,
            cache=self.cache,
            checkpoint_dir=config.resolved_checkpoint_dir(),
            warm_start=config.warm_start,
            max_queue=config.max_queue,
        )
        self.blobs = CheckpointStore(config.resolved_checkpoint_dir())
        #: ``("unix", path)`` or ``("tcp", host, port)`` once listening.
        self.endpoint: Optional[Tuple[Any, ...]] = None
        self._drain = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._submissions: Set["asyncio.Task[None]"] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._started = time.monotonic()
        self.connections_served = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Begin the drain: reject new work, let in-flight work finish."""
        self.scheduler.draining = True
        self._drain.set()

    async def serve(self, announce: bool = True) -> None:
        """Listen until drained; returns after in-flight work completes.

        With ``announce`` the daemon prints one ``listening`` event line to
        stdout once the endpoint is bound — the hook supervisors (and the
        test harness) wait on before connecting.
        """
        if self.config.socket is not None:
            path = Path(self.config.socket)
            path.parent.mkdir(parents=True, exist_ok=True)
            with contextlib.suppress(OSError):
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=str(path), limit=MAX_MESSAGE_BYTES
            )
            self.endpoint = ("unix", str(path))
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                self.config.host,
                self.config.port,
                limit=MAX_MESSAGE_BYTES,
            )
            bound = self._server.sockets[0].getsockname()
            self.endpoint = ("tcp", bound[0], bound[1])
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, self.request_drain)
        if announce:
            document: Dict[str, Any] = {"event": "listening"}
            if self.endpoint[0] == "unix":
                document["socket"] = self.endpoint[1]
            else:
                document["host"], document["port"] = self.endpoint[1:]
            sys.stdout.buffer.write(encode_message(document))
            sys.stdout.buffer.flush()
        try:
            await self._drain.wait()
        finally:
            await self._shutdown()

    async def _shutdown(self) -> None:
        """Drain sequence: stop listening, finish work, say bye, tear down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._submissions:
            await asyncio.gather(*self._submissions, return_exceptions=True)
        for writer in list(self._writers):
            with contextlib.suppress(OSError, ConnectionError):
                writer.write(encode_message({"event": "bye", "draining": True}))
                await writer.drain()
            writer.close()
        self.pool.close()
        if self.config.socket is not None:
            with contextlib.suppress(OSError):
                Path(self.config.socket).unlink()

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _send(
        self, writer: asyncio.StreamWriter, document: Dict[str, Any]
    ) -> None:
        writer.write(encode_message(document))
        await writer.drain()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        self._writers.add(writer)
        streams: Set["asyncio.Task[None]"] = set()
        try:
            await self._send(
                writer,
                {
                    "event": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "version": __version__,
                },
            )
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Oversized (newline-less) message: unrecoverable framing.
                    await self._send(
                        writer,
                        {"event": "error", "message": "message too large"},
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                try:
                    await self._dispatch(writer, line, streams)
                except (ConnectionError, OSError):
                    break
                except Exception as exc:
                    # One bad request answers in-band; it must never take
                    # down the connection's other in-flight work.
                    await self._send(
                        writer,
                        {"event": "error", "message": f"internal error: {exc}"},
                    )
        except (ConnectionError, OSError):
            pass
        finally:
            # A vanished client abandons its streams, never its simulations:
            # the scheduler's executions are detached and shielded, so the
            # in-flight cell still completes into the shared cache.
            for task in streams:
                task.cancel()
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        line: bytes,
        streams: Set["asyncio.Task[None]"],
    ) -> None:
        """Handle one request line (errors answer in-band, never kill I/O)."""
        try:
            message = decode_line(line)
        except ProtocolError as exc:
            await self._send(writer, {"event": "error", "message": str(exc)})
            return
        op = message.get("op")
        request_id = message.get("id")
        if op == "submit":
            await self._handle_submit(writer, message, streams)
        elif op == "status":
            await self._send(
                writer, {"event": "status", "id": request_id, **self.status()}
            )
        elif op == "cache-get":
            key = str(message.get("key", ""))
            document = self.cache.load_key(key)
            await self._send(
                writer,
                {
                    "event": "cache",
                    "id": request_id,
                    "key": key,
                    "hit": document is not None,
                    "result": document,
                },
            )
        elif op == "blob-stat":
            key = str(message.get("key", ""))
            path = self.blobs.path(key)
            exists = path.exists()
            await self._send(
                writer,
                {
                    "event": "blob",
                    "id": request_id,
                    "key": key,
                    "exists": exists,
                    "size": path.stat().st_size if exists else 0,
                },
            )
        elif op == "shutdown":
            await self._send(
                writer, {"event": "bye", "id": request_id, "draining": True}
            )
            self.request_drain()
        else:
            await self._send(
                writer,
                {
                    "event": "error",
                    "id": request_id,
                    "message": f"unknown op {op!r}",
                },
            )

    # ------------------------------------------------------------------
    # submissions
    # ------------------------------------------------------------------
    async def _handle_submit(
        self,
        writer: asyncio.StreamWriter,
        message: Dict[str, Any],
        streams: Set["asyncio.Task[None]"],
    ) -> None:
        request_id = message.get("id")
        try:
            spec = ScenarioSpec.from_dict(message["spec"])
        except (KeyError, TypeError, ValueError) as exc:
            await self._send(
                writer,
                {
                    "event": "rejected",
                    "id": request_id,
                    "reason": f"invalid spec: {exc}",
                },
            )
            return
        raw_seeds = message.get("seeds")
        if raw_seeds is None:
            seeds: List[int] = [spec.seed]
        elif (
            isinstance(raw_seeds, list)
            and raw_seeds
            and all(isinstance(s, int) and not isinstance(s, bool) for s in raw_seeds)
        ):
            seeds = list(raw_seeds)
        else:
            await self._send(
                writer,
                {
                    "event": "rejected",
                    "id": request_id,
                    "reason": "seeds must be a non-empty list of integers",
                },
            )
            return
        timeout_s = message.get("timeout_s")
        try:
            self.scheduler.admit(len(seeds))
        except (QueueFullError, ServiceDrainingError) as exc:
            await self._send(
                writer,
                {
                    "event": "rejected",
                    "id": request_id,
                    "reason": str(exc),
                    "draining": isinstance(exc, ServiceDrainingError),
                },
            )
            return
        await self._send(
            writer,
            {"event": "accepted", "id": request_id, "cells": len(seeds)},
        )
        task = asyncio.get_running_loop().create_task(
            self._stream(writer, request_id, spec, seeds, timeout_s)
        )
        streams.add(task)
        self._submissions.add(task)
        task.add_done_callback(streams.discard)
        task.add_done_callback(self._submissions.discard)

    async def _stream(
        self,
        writer: asyncio.StreamWriter,
        request_id: Any,
        spec: ScenarioSpec,
        seeds: List[int],
        timeout_s: Optional[float],
    ) -> None:
        """Run the seed sweep, streaming each cell's result as it lands."""
        remaining = len(seeds)
        completed = failed = from_cache = 0
        try:
            for seed in seeds:
                cell = spec.with_seed(seed)
                try:
                    outcome = await self.scheduler.run_cell(cell, timeout_s)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    failed += 1
                    await self._send(
                        writer,
                        {
                            "event": "error",
                            "id": request_id,
                            "seed": seed,
                            "message": str(exc),
                        },
                    )
                    continue
                finally:
                    remaining -= 1
                    self.scheduler.release(1)
                completed += 1
                from_cache += 1 if outcome.cached else 0
                await self._send(
                    writer,
                    {
                        "event": "result",
                        "id": request_id,
                        "seed": seed,
                        "key": self.cache.key(cell),
                        "cached": outcome.cached,
                        "deduped": outcome.deduped,
                        "warm": outcome.warm,
                        "result": outcome.result.to_dict(),
                    },
                )
            await self._send(
                writer,
                {
                    "event": "done",
                    "id": request_id,
                    "completed": completed,
                    "failed": failed,
                    "cached": from_cache,
                },
            )
        except (asyncio.CancelledError, ConnectionError, OSError):
            # Stream abandoned (client gone or connection torn down): give
            # back the queue room reserved for the cells never started.
            self.scheduler.release(remaining)
            raise

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The ``/status`` document: queue, cache, worker and uptime state."""
        return {
            "protocol": PROTOCOL_VERSION,
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "connections": len(self._writers),
            "connections_served": self.connections_served,
            "scheduler": self.scheduler.stats(),
            "pool": self.pool.stats(),
        }


def run_daemon(config: ServiceConfig, announce: bool = True) -> None:
    """Run an :class:`ExperimentService` until it drains (blocking)."""
    service = ExperimentService(config)
    asyncio.run(service.serve(announce=announce))
