"""Job admission, in-flight dedup and cell execution for the daemon.

The scheduler is the daemon's single point of truth for *what work exists*:
it admits submissions against a bounded queue, answers cells from the
shared :class:`~repro.experiments.runner.ResultCache` without touching the
pool, coalesces concurrent identical cells onto one execution (the
cross-connection extension of the batch runner's in-batch dedup), and runs
misses through :func:`~repro.experiments.runner.plan_cell` — the exact
code path a batch :class:`~repro.experiments.runner.ExperimentRunner` with
a durable cache takes, which is why service results are byte-identical to
batch results.

Executions are detached :class:`asyncio.Task`s keyed by cache key: a
client that disconnects mid-stream never cancels the simulation — the
result still lands in the shared cache for the next submitter.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from ..experiments.runner import ResultCache, RunResult, plan_cell
from ..experiments.spec import ScenarioSpec
from .pool import AsyncJobPool

__all__ = [
    "CellOutcome",
    "ExperimentScheduler",
    "QueueFullError",
    "ServiceDrainingError",
]


class QueueFullError(RuntimeError):
    """A submission would push the pending-cell queue past its bound."""


class ServiceDrainingError(RuntimeError):
    """The service is draining and admits no new submissions."""


@dataclass
class CellOutcome:
    """How one cell was answered: the result and where it came from."""

    result: RunResult
    #: Served from the result store without touching the pool.
    cached: bool = False
    #: Coalesced onto another client's in-flight execution of the same spec.
    deduped: bool = False
    #: Resumed from a shared warm-start checkpoint blob.
    warm: bool = False


class ExperimentScheduler:
    """Admit, deduplicate and execute experiment cells for the service."""

    def __init__(
        self,
        pool: AsyncJobPool,
        cache: ResultCache,
        checkpoint_dir: Optional[Path],
        warm_start: bool = True,
        max_queue: int = 256,
    ) -> None:
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.pool = pool
        self.cache = cache
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.warm_start = warm_start
        self.max_queue = max_queue
        self.draining = False
        #: Cells admitted but not yet finished (the queue depth ``/status``
        #: reports; includes the cells currently executing on the pool).
        self.queued = 0
        self._inflight: Dict[str, "asyncio.Task[RunResult]"] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.dedup_hits = 0
        self.cells_executed = 0
        self.cells_failed = 0
        self.checkpoint_hits = 0
        self.checkpoint_misses = 0
        self.warm_runs = 0

    # ------------------------------------------------------------------
    def admit(self, cells: int) -> None:
        """Reserve queue room for ``cells``, or refuse the submission.

        Raises :class:`ServiceDrainingError` once a drain has begun and
        :class:`QueueFullError` when the bound would be exceeded; the
        server maps both onto ``rejected`` events.
        """
        if self.draining:
            raise ServiceDrainingError(
                "the service is draining; it finishes in-flight jobs but "
                "accepts no new submissions"
            )
        if self.queued + cells > self.max_queue:
            raise QueueFullError(
                f"submitting {cells} cell(s) would exceed the queue bound "
                f"({self.queued} queued, {self.max_queue} max)"
            )
        self.queued += cells

    def release(self, cells: int = 1) -> None:
        """Return queue room reserved by :meth:`admit`."""
        self.queued = max(0, self.queued - cells)

    # ------------------------------------------------------------------
    async def run_cell(
        self, spec: ScenarioSpec, timeout_s: Optional[float] = None
    ) -> CellOutcome:
        """Answer one cell: cache first, then dedup, then the pool.

        The execution itself is a detached task shielded from this caller's
        cancellation — a client disconnect abandons the *stream*, never the
        simulation, so the result still publishes to the shared store.
        """
        cached = self.cache.load(spec)
        if cached is not None:
            self.cache_hits += 1
            return CellOutcome(result=cached, cached=True)
        self.cache_misses += 1
        key = self.cache.key(spec)
        task = self._inflight.get(key)
        if task is not None:
            self.dedup_hits += 1
            return CellOutcome(result=await asyncio.shield(task), deduped=True)
        plan = plan_cell(
            spec, checkpoint_dir=self.checkpoint_dir, warm_start=self.warm_start
        )
        self.checkpoint_hits += plan.checkpoint_hits
        self.checkpoint_misses += plan.checkpoint_misses
        task = asyncio.get_running_loop().create_task(
            self._execute_cell(spec, plan, timeout_s)
        )
        self._inflight[key] = task
        task.add_done_callback(lambda done: self._finish(key, done))
        return CellOutcome(
            result=await asyncio.shield(task), warm=plan.warm
        )

    def _finish(self, key: str, task: "asyncio.Task[RunResult]") -> None:
        """Drop a finished execution from the in-flight table.

        The exception (if any) is consumed here so an execution every
        awaiter abandoned (all clients gone) never logs an unretrieved-
        exception warning; awaiters that are still around observe it
        through their shielded await.
        """
        if self._inflight.get(key) is task:
            del self._inflight[key]
        if not task.cancelled() and task.exception() is not None:
            self.cells_failed += 1

    async def _execute_cell(
        self,
        spec: ScenarioSpec,
        plan: Any,
        timeout_s: Optional[float],
    ) -> RunResult:
        """Run one planned cell on the pool and publish its result."""
        for job in plan.setup_jobs:
            await self.pool.run(job, timeout_s)
        outputs = await asyncio.gather(
            *(self.pool.run(job, timeout_s) for job in plan.jobs)
        )
        result = plan.merge(outputs)
        self.cache.store(spec, result.to_json())
        self.cells_executed += 1
        if plan.warm:
            self.warm_runs += 1
        return result

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Scheduler counters for the service's ``/status`` document."""
        lookups = self.cache_hits + self.cache_misses
        return {
            "queued": self.queued,
            "inflight": len(self._inflight),
            "max_queue": self.max_queue,
            "draining": self.draining,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (self.cache_hits / lookups) if lookups else 0.0,
            "dedup_hits": self.dedup_hits,
            "cells_executed": self.cells_executed,
            "cells_failed": self.cells_failed,
            "checkpoint_hits": self.checkpoint_hits,
            "checkpoint_misses": self.checkpoint_misses,
            "warm_runs": self.warm_runs,
        }
