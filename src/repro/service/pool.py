"""Async worker-pool layer: the daemon's bridge onto the runner's workers.

:class:`AsyncJobPool` schedules the same ``(kind, payload)`` jobs the batch
:class:`~repro.experiments.runner.JobExecutor` runs — through the same
module-level worker entry point (:func:`~repro.experiments.runner.run_job`)
— but from an asyncio event loop, with the service-grade failure semantics
the daemon needs:

* **bounded retry on worker crash** — a :class:`BrokenProcessPool` rebuilds
  the pool and resubmits the job (up to ``retries`` times); because jobs
  are pure functions of their payload, the retried attempt returns exactly
  the bytes the crashed one would have,
* **per-job timeout** — a job over budget gets its workers killed and the
  pool rebuilt, surfacing :class:`JobTimeoutError` instead of wedging a
  worker slot forever,
* **admission control** — at most ``jobs`` jobs execute at once (a
  semaphore, so the queue depth visible to clients is the server's, not an
  opaque pool backlog).

Concurrent jobs that were riding a pool which a crash or timeout tore down
observe :class:`BrokenProcessPool` too and take the same bounded-retry
path; the ``restarts`` counter surfaces every rebuild for ``/status``.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Optional, Tuple

from ..experiments.runner import (
    ExperimentExecutionError,
    _crash_message,
    describe_job,
    run_job,
)

__all__ = ["AsyncJobPool", "JobTimeoutError"]


class JobTimeoutError(RuntimeError):
    """A job exceeded its wall-clock budget and its worker was killed."""


class AsyncJobPool:
    """Awaitable execution of runner jobs over a self-healing process pool."""

    def __init__(
        self,
        jobs: int = 1,
        retries: int = 2,
        timeout_s: Optional[float] = None,
        worker: Optional[Callable[[Tuple[str, str]], str]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.jobs = jobs
        self.retries = retries
        self.timeout_s = timeout_s
        self._worker = worker
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Monotonic pool incarnation: a failed job only tears down the pool
        #: it actually ran on, so concurrent failures rebuild exactly once.
        self._generation = 0
        self._semaphore = asyncio.Semaphore(jobs)
        self.restarts = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.retries_used = 0

    # ------------------------------------------------------------------
    def _resolve_worker(self) -> Callable[[Tuple[str, str]], str]:
        """The worker function — the runner's default unless injected."""
        return self._worker if self._worker is not None else run_job

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _rebuild(self, generation: int, kill: bool = False) -> None:
        """Tear down the pool incarnation ``generation`` (at most once).

        ``kill`` additionally terminates the worker processes — required on
        a timeout, where the stuck worker would otherwise run (and hold its
        slot) forever.  A later caller whose pool already died sees a newer
        generation and skips the teardown.
        """
        if generation != self._generation:
            return
        self._generation += 1
        self.restarts += 1
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            # SIGKILL, not SIGTERM: fork-started workers inherit the server's
            # asyncio SIGTERM handler, which would swallow a terminate() and
            # leave the worker running (and the abandoned pool's management
            # thread waiting on it) for the rest of the job.
            for process in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    process.kill()
                except OSError:  # pragma: no cover - already-dead worker
                    pass
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    async def run(
        self, job: Tuple[str, str], timeout_s: Optional[float] = None
    ) -> str:
        """Execute one job, retrying crashed workers, and return its output."""
        budget = self.timeout_s if timeout_s is None else timeout_s
        attempts = 0
        async with self._semaphore:
            while True:
                pool = self._ensure_pool()
                generation = self._generation
                future = asyncio.wrap_future(pool.submit(self._resolve_worker(), job))
                try:
                    output = await asyncio.wait_for(future, budget)
                    self.jobs_completed += 1
                    return output
                except asyncio.TimeoutError:
                    self._rebuild(generation, kill=True)
                    self.jobs_failed += 1
                    raise JobTimeoutError(
                        f"the {describe_job(job)} exceeded its {budget:g}s "
                        "budget; its worker was killed and the pool rebuilt"
                    ) from None
                except BrokenProcessPool:
                    attempts += 1
                    self.retries_used += 1
                    self._rebuild(generation)
                    if attempts > self.retries:
                        self.jobs_failed += 1
                        raise ExperimentExecutionError(
                            _crash_message(job, attempts, self.retries)
                        ) from None

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Worker-health snapshot for the service's ``/status`` document."""
        return {
            "workers": self.jobs,
            "alive": self._pool is not None,
            "restarts": self.restarts,
            "completed": self.jobs_completed,
            "failed": self.jobs_failed,
            "retries_used": self.retries_used,
        }

    def close(self) -> None:
        """Shut the pool down (idempotent; in-flight work is drained first
        by the server, so nothing is cancelled here in practice)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
