"""Synchronous client for the experiment service.

:class:`ServiceClient` is a thin blocking wrapper over the line protocol:
it connects to a daemon's Unix socket or TCP endpoint, validates the
``hello`` handshake, and exposes one method per protocol op.  The CLI's
``submit``/``status`` subcommands are built on it, and the test harness
uses it directly — there is no async machinery on the client side, so any
script (or REPL) can drive a daemon with a few lines.
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from ..experiments.runner import RunResult
from ..experiments.spec import ScenarioSpec
from .protocol import PROTOCOL_VERSION, ProtocolError, decode_line, encode_message

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The daemon rejected a request or the conversation broke down."""


class ServiceClient:
    """One blocking connection to a running experiment daemon."""

    def __init__(
        self,
        socket_path: Optional[Union[str, Path]] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        if socket_path is None and (host is None or port is None):
            raise ValueError("need either socket_path or host and port")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(str(socket_path))
        else:
            self._sock = socket.create_connection(
                (host, int(port)), timeout=timeout_s
            )
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self.hello = self._recv()
        if self.hello.get("event") != "hello":
            raise ServiceError(
                f"expected a hello handshake, got {self.hello.get('event')!r}"
            )
        if self.hello.get("protocol") != PROTOCOL_VERSION:
            raise ServiceError(
                f"daemon speaks protocol {self.hello.get('protocol')}, this "
                f"client speaks {PROTOCOL_VERSION}"
            )

    # ------------------------------------------------------------------
    # framing
    # ------------------------------------------------------------------
    def _request_id(self) -> str:
        self._next_id += 1
        return f"r{self._next_id}"

    def _send(self, document: Dict[str, Any]) -> None:
        try:
            self._sock.sendall(encode_message(document))
        except OSError as exc:
            raise ServiceError(f"connection to daemon lost: {exc}") from None

    def _recv(self) -> Dict[str, Any]:
        try:
            line = self._file.readline()
        except OSError as exc:
            raise ServiceError(f"connection to daemon lost: {exc}") from None
        if not line:
            raise ServiceError("daemon closed the connection")
        try:
            return decode_line(line)
        except ProtocolError as exc:
            raise ServiceError(f"malformed daemon message: {exc}") from None

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def stream(
        self,
        spec: ScenarioSpec,
        seeds: Optional[List[int]] = None,
        timeout_s: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Submit a sweep and yield its raw events through ``done``.

        Yields the ``accepted`` event, then each ``result``/``error`` event
        as the daemon streams them, and finally ``done``.  Raises
        :class:`ServiceError` immediately on a ``rejected`` verdict (queue
        full, draining, or an invalid spec).
        """
        request_id = self._request_id()
        request: Dict[str, Any] = {
            "op": "submit",
            "id": request_id,
            "spec": spec.to_dict(),
        }
        if seeds is not None:
            request["seeds"] = list(seeds)
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        self._send(request)
        while True:
            event = self._recv()
            if event.get("id") != request_id:
                continue
            if event.get("event") == "rejected":
                raise ServiceError(
                    f"submission rejected: {event.get('reason', 'unknown')}"
                )
            yield event
            if event.get("event") == "done":
                return

    def run(
        self,
        spec: ScenarioSpec,
        seeds: Optional[List[int]] = None,
        timeout_s: Optional[float] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> List[RunResult]:
        """Submit a sweep and return its results in seed order.

        Any per-cell ``error`` event fails the whole call (the partial
        results are in the shared cache regardless).  ``on_event`` observes
        every streamed event — the CLI uses it for progress lines.
        """
        results: List[RunResult] = []
        failures: List[str] = []
        for event in self.stream(spec, seeds=seeds, timeout_s=timeout_s):
            if on_event is not None:
                on_event(event)
            kind = event.get("event")
            if kind == "result":
                results.append(RunResult.from_dict(event["result"]))
            elif kind == "error":
                failures.append(
                    f"seed {event.get('seed')}: {event.get('message')}"
                )
        if failures:
            raise ServiceError(
                "the daemon reported cell failures: " + "; ".join(failures)
            )
        return results

    def status(self) -> Dict[str, Any]:
        """The daemon's ``/status`` introspection document."""
        request_id = self._request_id()
        self._send({"op": "status", "id": request_id})
        return self._await_event(request_id, "status")

    def cache_get(self, key: str) -> Optional[Dict[str, Any]]:
        """The result document under cache ``key``, or ``None`` on a miss."""
        request_id = self._request_id()
        self._send({"op": "cache-get", "id": request_id, "key": key})
        return self._await_event(request_id, "cache").get("result")

    def blob_stat(self, key: str) -> Dict[str, Any]:
        """Existence/size of the warm-start blob under ``key``."""
        request_id = self._request_id()
        self._send({"op": "blob-stat", "id": request_id, "key": key})
        return self._await_event(request_id, "blob")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit; returns its ``bye`` notice."""
        request_id = self._request_id()
        self._send({"op": "shutdown", "id": request_id})
        return self._await_event(request_id, "bye")

    def _await_event(self, request_id: str, kind: str) -> Dict[str, Any]:
        """Read events until our reply arrives (skipping unrelated ones)."""
        while True:
            event = self._recv()
            if event.get("id") != request_id:
                continue
            if event.get("event") == "error":
                raise ServiceError(str(event.get("message")))
            if event.get("event") == kind:
                return event

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
