"""Experiment service mode: an async job server over the batch runner.

The package turns the repository's batch experiment machinery into a
long-lived daemon: ``python -m repro serve`` listens on a Unix socket or
TCP port, accepts :class:`~repro.experiments.spec.ScenarioSpec` documents
over a line-delimited JSON protocol, schedules them across a self-healing
process pool, and streams per-seed results back as they complete.  The
daemon fronts the same SHA-256 result cache and warm-start checkpoint
store the batch runner uses, so cache hits are answered without touching
the pool and every client shares one simulation per distinct spec.

Because the daemon executes cells through the exact job planner and worker
entry points the batch :class:`~repro.experiments.runner.ExperimentRunner`
uses, a result obtained through the service is byte-identical to the batch
result for the same spec — the property ``tests/service/`` proves.
"""

from .client import ServiceClient, ServiceError
from .jobs import (
    CellOutcome,
    ExperimentScheduler,
    QueueFullError,
    ServiceDrainingError,
)
from .pool import AsyncJobPool, JobTimeoutError
from .protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_message,
)
from .server import ExperimentService, ServiceConfig, run_daemon

__all__ = [
    "AsyncJobPool",
    "CellOutcome",
    "ExperimentScheduler",
    "ExperimentService",
    "JobTimeoutError",
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueFullError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDrainingError",
    "ServiceError",
    "decode_line",
    "encode_message",
    "run_daemon",
]
