"""Analysis helpers: fairness, convergence and report formatting."""

from .fairness import bandwidth_shares, jain_index, max_min_ratio
from .convergence import convergence_time, levels_converged
from .reporting import (
    aggregate_metrics,
    flatten_metrics,
    format_aggregate_table,
    format_series_table,
    format_table,
    write_json,
)

__all__ = [
    "bandwidth_shares",
    "jain_index",
    "max_min_ratio",
    "convergence_time",
    "levels_converged",
    "aggregate_metrics",
    "flatten_metrics",
    "format_aggregate_table",
    "format_series_table",
    "format_table",
    "write_json",
]
