"""Analysis helpers: fairness, convergence and report formatting."""

from .fairness import bandwidth_shares, jain_index, max_min_ratio
from .convergence import convergence_time, levels_converged
from .reporting import format_series_table, format_table

__all__ = [
    "bandwidth_shares",
    "jain_index",
    "max_min_ratio",
    "convergence_time",
    "levels_converged",
    "format_series_table",
    "format_table",
]
