"""Analysis helpers: fairness, convergence, protection and report formatting."""

from .fairness import bandwidth_shares, jain_index, max_min_ratio
from .convergence import convergence_time, levels_converged
from .golden import scenario_trace_digest, subscription_vector
from .protection import (
    excess_goodput_kbps,
    honest_baseline_kbps,
    time_to_containment_s,
    weighted_excess_goodput_kbps,
    weighted_honest_baseline_kbps,
)
from .reporting import (
    aggregate_metrics,
    flatten_metrics,
    format_aggregate_table,
    format_protection_table,
    format_series_table,
    format_table,
    write_json,
)

__all__ = [
    "bandwidth_shares",
    "jain_index",
    "max_min_ratio",
    "convergence_time",
    "levels_converged",
    "scenario_trace_digest",
    "subscription_vector",
    "excess_goodput_kbps",
    "honest_baseline_kbps",
    "time_to_containment_s",
    "weighted_excess_goodput_kbps",
    "weighted_honest_baseline_kbps",
    "aggregate_metrics",
    "flatten_metrics",
    "format_aggregate_table",
    "format_protection_table",
    "format_series_table",
    "format_table",
    "write_json",
]
