"""Plain-text report formatting.

The benchmark harness prints, for every figure, the same rows or series the
paper reports; these helpers keep that output aligned and readable without
pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table."""
    materialised: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series_table(
    label: str, series: Sequence[tuple[float, float]], x_name: str = "time (s)", y_name: str = "value"
) -> str:
    """Render an (x, y) series with a caption line."""
    body = format_table(
        [x_name, y_name],
        [(f"{x:.2f}", f"{y:.1f}") for x, y in series],
    )
    return f"{label}\n{body}"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
