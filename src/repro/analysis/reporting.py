"""Report formatting and cross-run aggregation.

The benchmark harness prints, for every figure, the same rows or series the
paper reports; these helpers keep that output aligned and readable without
pulling in any plotting dependency.  The aggregation helpers reduce the
metric documents produced by the experiment runner (nested dicts/lists of
numbers) across seeds into mean/min/max summaries and write them as JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Union

__all__ = [
    "format_table",
    "format_series_table",
    "format_protection_table",
    "flatten_metrics",
    "aggregate_metrics",
    "format_aggregate_table",
    "write_json",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table."""
    materialised: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series_table(
    label: str, series: Sequence[tuple[float, float]], x_name: str = "time (s)", y_name: str = "value"
) -> str:
    """Render an (x, y) series with a caption line."""
    body = format_table(
        [x_name, y_name],
        [(f"{x:.2f}", f"{y:.1f}") for x, y in series],
    )
    return f"{label}\n{body}"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def format_protection_table(protection: Mapping[str, Any]) -> str:
    """Render a run's ``protection`` metric block as a text table.

    One row per attacker: its goodput over the attack window, the excess
    over the honest baseline, and the time SIGMA/DELTA took to contain the
    subscription ("never" is the unprotected Figure 1 outcome).
    """
    rows = []
    for session_id, session in protection.get("sessions", {}).items():
        for index, entry in session.get("attackers", {}).items():
            containment = entry.get("containment_s")
            rows.append(
                (
                    session_id,
                    index,
                    entry.get("goodput_kbps", 0.0),
                    entry.get("excess_kbps", 0.0),
                    "never" if containment is None else f"{containment:.1f}",
                )
            )
    baseline = protection.get("honest_baseline_kbps", 0.0)
    table = format_table(
        ["session", "rx", "attacker (Kbps)", "excess (Kbps)", "contained (s)"], rows
    )
    return f"honest baseline: {baseline:.1f} Kbps\n{table}"


# ----------------------------------------------------------------------
# metric aggregation across runs
# ----------------------------------------------------------------------
def flatten_metrics(
    metrics: Union[Mapping[str, Any], Sequence[Any], float, int],
    prefix: str = "",
) -> Dict[str, float]:
    """Flatten a nested metric document to ``dotted.path -> number``.

    Dict keys are joined with ``.``; list entries are indexed.  Non-numeric
    leaves (strings, ``None``) are skipped, so series and labels do not
    pollute the aggregate.
    """
    flat: Dict[str, float] = {}
    if isinstance(metrics, Mapping):
        for key, value in metrics.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(value, path))
    elif isinstance(metrics, (list, tuple)):
        for index, value in enumerate(metrics):
            flat.update(flatten_metrics(value, f"{prefix}[{index}]"))
    elif isinstance(metrics, bool):
        pass
    elif isinstance(metrics, (int, float)):
        flat[prefix] = float(metrics)
    return flat


def aggregate_metrics(
    metric_documents: Sequence[Mapping[str, Any]],
) -> Dict[str, Dict[str, float]]:
    """Reduce metric documents (e.g. one per seed) to per-key statistics.

    Returns ``flattened key -> {"mean", "min", "max", "count"}`` over the
    documents in which the key appears.
    """
    samples: Dict[str, List[float]] = {}
    for document in metric_documents:
        for key, value in flatten_metrics(document).items():
            samples.setdefault(key, []).append(value)
    return {
        key: {
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
            "count": len(values),
        }
        for key, values in sorted(samples.items())
    }


def format_aggregate_table(aggregate: Mapping[str, Mapping[str, float]]) -> str:
    """Render an :func:`aggregate_metrics` result as a text table."""
    rows = [
        (key, stats["mean"], stats["min"], stats["max"], int(stats["count"]))
        for key, stats in aggregate.items()
    ]
    return format_table(["metric", "mean", "min", "max", "runs"], rows)


def write_json(path: Union[str, Path], payload: Any) -> Path:
    """Write ``payload`` as stable, human-diffable JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return target
