"""Fairness metrics.

The paper argues about fairness qualitatively (Figure 1 versus Figure 7);
these helpers quantify it so tests and EXPERIMENTS.md can assert on it:
Jain's fairness index, the max/min share ratio, and normalised bandwidth
shares.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["jain_index", "max_min_ratio", "bandwidth_shares"]


def jain_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n is maximally unfair."""
    values = list(throughputs)
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def max_min_ratio(throughputs: Sequence[float]) -> float:
    """Ratio of the largest to the smallest throughput (1.0 = equal shares).

    Returns ``inf`` when some flow is completely starved, which is itself a
    meaningful signal in the inflated-subscription experiments.
    """
    values = [v for v in throughputs]
    if not values:
        return 1.0
    smallest = min(values)
    largest = max(values)
    if smallest <= 0:
        return float("inf") if largest > 0 else 1.0
    return largest / smallest


def bandwidth_shares(throughputs: Dict[str, float]) -> Dict[str, float]:
    """Normalise named throughputs to fractions of the total."""
    total = sum(throughputs.values())
    if total <= 0:
        return {name: 0.0 for name in throughputs}
    return {name: value / total for name, value in throughputs.items()}
