"""Protection metrics: did SIGMA/DELTA contain an attack, and how fast?

Two quantities summarise the paper's §5.2 claim for any attack scenario:

* **excess goodput** — the attacker's goodput during the attack window minus
  the honest baseline (the mean goodput honest multicast receivers achieved
  over the same window).  Unprotected Figure 1 shows a large positive
  excess; a protected run should hold it near zero.
* **time to containment** — how long after the attack onset the attacker's
  subscription level returns to (and stays within) its honest entitlement.
  ``0.0`` means the attack never lifted the subscription above the bound;
  ``None`` means it was never contained (the Figure 1 outcome).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = [
    "honest_baseline_kbps",
    "weighted_honest_baseline_kbps",
    "excess_goodput_kbps",
    "weighted_excess_goodput_kbps",
    "time_to_containment_s",
    "goodput_containment_s",
    "combined_containment_s",
]


def honest_baseline_kbps(
    honest_rates_kbps: Sequence[float], fallback_kbps: float
) -> float:
    """Mean goodput of the honest receivers, or ``fallback_kbps`` without any.

    The fallback (typically the configured fair share) covers scenarios whose
    every multicast receiver is an attacker.
    """
    rates = list(honest_rates_kbps)
    if not rates:
        return fallback_kbps
    return sum(rates) / len(rates)


def weighted_honest_baseline_kbps(
    rates_and_weights_kbps: Sequence[Tuple[float, int]], fallback_kbps: float
) -> float:
    """Population-weighted honest baseline.

    Each ``(rate, weight)`` pair is one receiver *model*: an individual
    receiver weighs 1 and a cohort weighs its member count, so the baseline
    is the mean goodput over *end systems* rather than over receiver
    objects.  With unit weights this reduces — bit for bit (``rate * 1`` is
    exact in IEEE arithmetic) — to :func:`honest_baseline_kbps`, which keeps
    every pre-population protection metric byte-identical.
    """
    pairs = list(rates_and_weights_kbps)
    if not pairs:
        return fallback_kbps
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        return fallback_kbps
    return sum(rate * weight for rate, weight in pairs) / total


def excess_goodput_kbps(attacker_kbps: float, baseline_kbps: float) -> float:
    """Attacker goodput beyond the honest baseline (positive = attack pays)."""
    return attacker_kbps - baseline_kbps


def weighted_excess_goodput_kbps(
    attacker_kbps: float, baseline_kbps: float, population: int
) -> float:
    """Population-weighted excess: what the whole attacker cohort extracted.

    An adversarial cohort of ``population`` members whose per-member goodput
    beats the honest baseline by ``x`` Kbps has pulled ``population * x``
    Kbps of aggregate bandwidth away from honest receivers — the quantity
    the paper's containment claim bounds as audiences scale.  With
    ``population == 1`` this reduces exactly to
    :func:`excess_goodput_kbps` (``x * 1`` is exact in IEEE arithmetic).
    """
    return excess_goodput_kbps(attacker_kbps, baseline_kbps) * population


def time_to_containment_s(
    level_history: Sequence[Tuple[float, int]],
    onset_s: float,
    bound_level: int,
    end_s: float,
) -> Optional[float]:
    """Seconds from attack onset until the subscription is contained for good.

    ``level_history`` is the receiver's ``(time, level)`` transition list
    (levels persist until the next entry).  Containment is the earliest time
    ``t >= onset_s`` from which the level stays ``<= bound_level`` through
    ``end_s``; returns ``t - onset_s``, or ``None`` when the level still
    exceeds the bound at the end of the run.
    """
    level_at_onset = 0
    transitions: List[Tuple[float, int]] = []
    for time_s, level in level_history:
        if time_s <= onset_s:
            level_at_onset = level
        elif time_s <= end_s:
            transitions.append((time_s, level))

    contained_since: Optional[float] = None if level_at_onset > bound_level else onset_s
    for time_s, level in transitions:
        if level > bound_level:
            contained_since = None
        elif contained_since is None:
            contained_since = time_s
    if contained_since is None:
        return None
    return contained_since - onset_s


def goodput_containment_s(
    rate_series_kbps: Sequence[Tuple[float, float]],
    onset_s: float,
    bound_kbps: float,
    end_s: float,
) -> Optional[float]:
    """Containment as *delivered*: when the goodput drops under the bound.

    Same fixed-point semantics as :func:`time_to_containment_s`, applied to
    a ``(bin end time, Kbps)`` throughput series against the rate the honest
    entitlement corresponds to.  This is the SIGMA-side view: a misbehaving
    receiver may *claim* an inflated subscription forever, but once the edge
    router stops forwarding the extra groups its delivered rate is bounded.
    """
    contained_since: Optional[float] = onset_s
    for time_s, rate_kbps in rate_series_kbps:
        if time_s <= onset_s or time_s > end_s:
            continue
        if rate_kbps > bound_kbps:
            contained_since = None
        elif contained_since is None:
            contained_since = time_s
    if contained_since is None:
        return None
    return contained_since - onset_s


def combined_containment_s(
    level_containment: Optional[float], goodput_containment: Optional[float]
) -> Optional[float]:
    """An attack is contained when *either* view says so (earliest wins).

    The receiver-side view (subscription intent) catches attackers the
    protocol talks back into line; the network-side view (delivered rate)
    catches attackers that keep claiming inflated subscriptions the router
    no longer honours.
    """
    candidates = [c for c in (level_containment, goodput_containment) if c is not None]
    return min(candidates) if candidates else None
