"""Golden-trace digests: compact, byte-stable fingerprints of a scenario run.

A digest captures, per receiver, the *shape* of a run — the per-slot
subscription vector (stored in the clear, so a regression diff is readable)
and a SHA-256 over the full 1-second throughput series — plus a hash over
the complete runner metric document.  Because the simulator is
byte-deterministic for a given :class:`~repro.experiments.spec.ScenarioSpec`
(see ``tests/properties/test_determinism.py``), any behavioural drift in the
protocols, the adversary subsystem or the protection pipeline changes the
digest, which is what the golden regression tests under ``tests/golden/``
lock in.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only (import cycle guard)
    from ..experiments.spec import ScenarioSpec

__all__ = ["subscription_vector", "scenario_trace_digest"]


def _sha256(payload: Any) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def subscription_vector(
    level_history: Sequence[Tuple[float, int]], slot_duration_s: float, duration_s: float
) -> List[int]:
    """Subscription level in force at the end of each slot.

    ``level_history`` is the receiver's ``(time, level)`` transition list;
    the vector samples it at every slot boundary, giving the per-slot trace
    the paper's figures plot (and SIGMA enforces).
    """
    vector: List[int] = []
    index = 0
    level = 0
    slots = int(round(duration_s / slot_duration_s))
    history = list(level_history)
    for slot in range(1, slots + 1):
        boundary = slot * slot_duration_s
        while index < len(history) and history[index][0] <= boundary:
            level = history[index][1]
            index += 1
        vector.append(level)
    return vector


def scenario_trace_digest(spec: "ScenarioSpec") -> Dict[str, Any]:
    """Run ``spec`` and fingerprint the result.

    The digest is plain JSON data: per session and receiver the subscription
    vector (explicit) and a hash of the smoothed throughput series, plus a
    hash of the complete metric document (which covers goodputs, SIGMA
    counters and the protection block).
    """
    # Imported here, not at module scope: the experiment runner itself uses
    # the analysis package, so an eager import would cycle through
    # ``analysis/__init__`` during ``repro.experiments`` initialisation.
    from ..experiments.runner import collect_metrics
    from ..experiments.scenario import Scenario

    scenario = Scenario.from_spec(spec)
    duration = spec.effective_duration_s
    scenario.run(duration)
    metrics = collect_metrics(scenario, spec)

    sessions: Dict[str, Any] = {}
    for decl, session in zip(spec.sessions, scenario.sessions):
        receivers = []
        for receiver in session.receivers:
            series = [
                [sample.time_s, sample.rate_kbps]
                for sample in receiver.monitor.smoothed_series(
                    window_bins=5, end_time_s=duration
                )
            ]
            receivers.append(
                {
                    "subscription": subscription_vector(
                        receiver.level_history, session.spec.slot_duration_s, duration
                    ),
                    "throughput_sha256": _sha256(series),
                }
            )
        sessions[decl.session_id] = receivers

    return {
        "spec_sha256": hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest(),
        "sessions": sessions,
        "metrics_sha256": _sha256(metrics),
    }
