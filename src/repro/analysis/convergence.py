"""Subscription-convergence metrics (Figures 8(g) and 8(h)).

When several receivers of one session share a bottleneck, FLID-DL (and,
per the paper, FLID-DS) drive them to the same subscription level even if
they join at different times.  These helpers extract that property from the
level histories the receivers record.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["levels_converged", "convergence_time", "level_at"]

LevelHistory = Sequence[Tuple[float, int]]


def level_at(history: LevelHistory, time_s: float) -> int:
    """Subscription level recorded in ``history`` at time ``time_s``."""
    level = 0
    for timestamp, value in history:
        if timestamp <= time_s:
            level = value
        else:
            break
    return level


def levels_converged(
    histories: Sequence[LevelHistory], time_s: float, tolerance: int = 1
) -> bool:
    """True when every receiver's level at ``time_s`` is within ``tolerance``."""
    levels = [level_at(history, time_s) for history in histories]
    if not levels:
        return True
    return max(levels) - min(levels) <= tolerance


def convergence_time(
    histories: Sequence[LevelHistory],
    start_s: float,
    end_s: float,
    sample_interval_s: float = 1.0,
    tolerance: int = 1,
    hold_s: float = 5.0,
) -> Optional[float]:
    """First time after ``start_s`` at which levels stay converged for ``hold_s``.

    Returns None when the receivers never converge within the window, which
    tests treat as a failure of the convergence property.
    """
    if end_s <= start_s:
        return None
    samples = []
    t = start_s
    while t <= end_s:
        samples.append(t)
        t += sample_interval_s
    hold_needed = max(1, int(round(hold_s / sample_interval_s)))
    run_length = 0
    for sample_time in samples:
        if levels_converged(histories, sample_time, tolerance):
            run_length += 1
            if run_length >= hold_needed:
                return sample_time - (hold_needed - 1) * sample_interval_s
        else:
            run_length = 0
    return None
