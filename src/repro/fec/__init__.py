"""Forward error correction for SIGMA control packets.

SIGMA distributes per-slot ``(group address, keys)`` tuples to edge routers
via special multicast packets and relies on forward error correction to make
the delivery reliable without acknowledgements (§3.2.1).  The paper's
overhead analysis models FEC as a bit-expansion factor ``z`` sized to
overcome 50 % packet loss.

This package provides a simple erasure code with exactly that interface: the
encoder expands ``k`` source symbols into ``n >= k`` coded symbols and the
decoder recovers the source from any ``k`` received symbols.
"""

from .erasure import ErasureCode, FecConfig, RepetitionCode

__all__ = ["ErasureCode", "FecConfig", "RepetitionCode"]
