"""Erasure codes used by SIGMA key distribution.

Two codes are provided:

``ErasureCode``
    A Reed-Solomon-style maximum-distance-separable code over a prime field.
    ``k`` source symbols are interpreted as evaluations of a degree ``k-1``
    polynomial at points ``1..k``; the encoder outputs evaluations at points
    ``1..n``.  Any ``k`` of the ``n`` coded symbols recover the source, so a
    50 % loss tolerance corresponds to ``n = 2k`` — the expansion factor ``z``
    the paper's overhead model uses.

    The implementation is tuned for the simulator's hot path (one encode per
    sender per time slot, one decode per edge router per time slot): the code
    is systematic so loss-free decoding is a dictionary lookup, and parity
    symbols are produced with barycentric Lagrange evaluation plus Montgomery
    batch inversion, which needs only a handful of modular exponentiations
    per announcement.

``RepetitionCode``
    A trivial baseline (every symbol sent ``copies`` times); kept for the FEC
    ablation benchmark, since repetition needs a larger expansion factor to
    reach the same delivery probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

__all__ = ["FecConfig", "ErasureCode", "RepetitionCode"]

#: Prime field large enough for 32-bit symbols with room to spare.
_FIELD_PRIME = (1 << 61) - 1


@dataclass(frozen=True)
class FecConfig:
    """Configuration of the FEC expansion.

    ``loss_tolerance`` is the fraction of coded symbols that may be lost
    while still guaranteeing decodability; the paper uses 0.5.
    """

    loss_tolerance: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_tolerance < 1.0):
            raise ValueError("loss_tolerance must be in [0, 1)")

    @property
    def expansion_factor(self) -> float:
        """The bit-expansion factor ``z`` of the paper's overhead model."""
        return 1.0 / (1.0 - self.loss_tolerance)

    def coded_symbols(self, source_symbols: int) -> int:
        """Number of coded symbols needed for ``source_symbols`` source symbols."""
        if source_symbols <= 0:
            raise ValueError("source_symbols must be positive")
        return max(source_symbols, math.ceil(source_symbols * self.expansion_factor))


def _batch_inverse(values: Sequence[int], prime: int = _FIELD_PRIME) -> List[int]:
    """Invert every value with a single modular exponentiation (Montgomery's trick)."""
    prefix: List[int] = []
    running = 1
    for value in values:
        prefix.append(running)
        running = (running * value) % prime
    inverse_all = pow(running, prime - 2, prime)
    inverses = [0] * len(values)
    for index in range(len(values) - 1, -1, -1):
        inverses[index] = (prefix[index] * inverse_all) % prime
        inverse_all = (inverse_all * values[index]) % prime
    return inverses


class _BarycentricInterpolator:
    """Evaluates the polynomial through ``points`` at arbitrary x (barycentric form)."""

    def __init__(self, points: Sequence[Tuple[int, int]], prime: int = _FIELD_PRIME) -> None:
        self.prime = prime
        self.xs = [x % prime for x, _ in points]
        self.ys = [y % prime for _, y in points]
        diffs_products = []
        for i, xi in enumerate(self.xs):
            product = 1
            for j, xj in enumerate(self.xs):
                if i != j:
                    product = (product * (xi - xj)) % prime
            diffs_products.append(product)
        self.weights = _batch_inverse(diffs_products, prime)
        self._x_set = set(self.xs)

    def evaluate(self, x: int) -> int:
        prime = self.prime
        x %= prime
        if x in self._x_set:
            return self.ys[self.xs.index(x)]
        deltas = [(x - xi) % prime for xi in self.xs]
        inv_deltas = _batch_inverse(deltas, prime)
        numerator = 0
        denominator = 0
        for weight, y, inv_delta in zip(self.weights, self.ys, inv_deltas):
            term = (weight * inv_delta) % prime
            numerator = (numerator + term * y) % prime
            denominator = (denominator + term) % prime
        return (numerator * pow(denominator, prime - 2, prime)) % prime


@lru_cache(maxsize=None)
def _parity_rows(k: int, n: int) -> Tuple[Tuple[Tuple[int, ...], int], ...]:
    """Cached barycentric coefficient rows for the systematic encoder.

    Encoding evaluates the polynomial through the systematic points
    ``x = 1..k`` at the parity points ``x = k+1..n``.  Those abscissae are
    fixed, so for each parity point the per-source coefficients
    ``c_i = w_i / (x - x_i)`` and the inverse denominator ``(Σ c_i)^-1``
    depend only on ``(k, n)`` — one modular-inverse batch per distinct shape
    for the whole process, zero modular exponentiations per announcement.
    """
    prime = _FIELD_PRIME
    xs = list(range(1, k + 1))
    weights = _BarycentricInterpolator([(x, 0) for x in xs], prime).weights
    rows = []
    for x in range(k + 1, n + 1):
        deltas = [(x - xi) % prime for xi in xs]
        inv_deltas = _batch_inverse(deltas, prime)
        coeffs = tuple((w * d) % prime for w, d in zip(weights, inv_deltas))
        denominator = sum(coeffs) % prime
        rows.append((coeffs, pow(denominator, prime - 2, prime)))
    return tuple(rows)


@lru_cache(maxsize=1024)
def _decode_rows(
    xs: Tuple[int, ...], source_count: int
) -> Tuple[Tuple[Tuple[int, ...], int], ...]:
    """Cached interpolation rows for decoding from the abscissae ``xs``.

    Loss patterns repeat heavily across slots (the same symbols of an
    announcement survive the same bottlenecks), so the coefficient matrix
    for a given surviving-index set is computed once and reused; only the
    received values change between announcements.
    """
    prime = _FIELD_PRIME
    interpolator = _BarycentricInterpolator([(x, 0) for x in xs], prime)
    weights = interpolator.weights
    rows = []
    for x in range(1, source_count + 1):
        if x in interpolator._x_set:
            # Systematic symbol present: marker row selecting it directly.
            rows.append(((), xs.index(x)))
            continue
        deltas = [(x - xi) % prime for xi in xs]
        inv_deltas = _batch_inverse(deltas, prime)
        coeffs = tuple((w * d) % prime for w, d in zip(weights, inv_deltas))
        denominator = sum(coeffs) % prime
        rows.append((coeffs, pow(denominator, prime - 2, prime)))
    return tuple(rows)


class ErasureCode:
    """MDS erasure code: recover ``k`` source symbols from any ``k`` coded symbols."""

    def __init__(self, config: FecConfig | None = None) -> None:
        self.config = config or FecConfig()
        self.prime = _FIELD_PRIME

    # ------------------------------------------------------------------
    def encode(self, source: Sequence[int], coded_count: int | None = None) -> List[Tuple[int, int]]:
        """Encode ``source`` symbols into ``coded_count`` (index, value) symbols.

        The first ``len(source)`` coded symbols are systematic (equal to the
        source), so in the loss-free case decoding is a no-op.  Parity
        symbols are inner products with the cached :func:`_parity_rows`
        coefficients — no field inversions on the per-slot path.
        """
        if not source:
            raise ValueError("cannot encode an empty symbol list")
        prime = self.prime
        for symbol in source:
            if not (0 <= symbol < prime):
                raise ValueError(f"symbol {symbol} outside field range")
        k = len(source)
        n = coded_count if coded_count is not None else self.config.coded_symbols(k)
        if n < k:
            raise ValueError(f"coded_count {n} must be at least the source size {k}")
        coded: List[Tuple[int, int]] = [(i + 1, source[i]) for i in range(k)]
        if n > k:
            for offset, (coeffs, inv_denominator) in enumerate(_parity_rows(k, n)):
                numerator = 0
                for coeff, symbol in zip(coeffs, source):
                    numerator += coeff * symbol
                coded.append((k + 1 + offset, (numerator % prime) * inv_denominator % prime))
        return coded

    def decode(self, received: Sequence[Tuple[int, int]], source_count: int) -> List[int]:
        """Recover the ``source_count`` source symbols from received coded symbols.

        Raises ``ValueError`` when fewer than ``source_count`` distinct coded
        symbols are available (the loss exceeded the code's tolerance).
        """
        unique: Dict[int, int] = {}
        for index, value in received:
            unique.setdefault(index, value)
        if len(unique) < source_count:
            raise ValueError(
                f"insufficient symbols: need {source_count}, received {len(unique)}"
            )
        # Systematic fast path: every source symbol arrived untouched.
        if all(index in unique for index in range(1, source_count + 1)):
            return [unique[index] for index in range(1, source_count + 1)]
        points = list(unique.items())[:source_count]
        prime = self.prime
        xs = tuple(x for x, _ in points)
        ys = [y % prime for _, y in points]
        source: List[int] = []
        for coeffs, tail in _decode_rows(xs, source_count):
            if not coeffs:
                source.append(ys[tail])  # marker row: systematic symbol
                continue
            numerator = 0
            for coeff, y in zip(coeffs, ys):
                numerator += coeff * y
            source.append((numerator % prime) * tail % prime)
        return source

    # ------------------------------------------------------------------
    def overhead_bits(self, source_bits: int) -> int:
        """Total bits on the wire for ``source_bits`` of payload."""
        return math.ceil(source_bits * self.config.expansion_factor)


class RepetitionCode:
    """Baseline FEC: transmit every symbol ``copies`` times."""

    def __init__(self, copies: int = 2) -> None:
        if copies < 1:
            raise ValueError("copies must be at least 1")
        self.copies = copies

    def encode(self, source: Sequence[int]) -> List[Tuple[int, int]]:
        """Return (source index, value) pairs, each index repeated ``copies`` times."""
        coded = []
        for _ in range(self.copies):
            coded.extend((i + 1, value) for i, value in enumerate(source))
        return coded

    def decode(self, received: Sequence[Tuple[int, int]], source_count: int) -> List[int]:
        values: Dict[int, int] = {}
        for index, value in received:
            values.setdefault(index, value)
        missing = [i for i in range(1, source_count + 1) if i not in values]
        if missing:
            raise ValueError(f"missing source symbols {missing}")
        return [values[i] for i in range(1, source_count + 1)]

    @property
    def expansion_factor(self) -> float:
        return float(self.copies)
