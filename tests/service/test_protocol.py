"""Unit tests of the line protocol: canonical framing and strict parsing."""

import json

import pytest

from repro.service import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_message,
)


class TestEncode:
    def test_one_canonical_line(self):
        framed = encode_message({"b": 1, "a": {"z": True, "y": None}})
        assert framed == b'{"a":{"y":null,"z":true},"b":1}\n'

    def test_roundtrip(self):
        document = {"op": "submit", "spec": {"name": "x"}, "seeds": [0, 1, 2]}
        assert decode_line(encode_message(document)) == document

    def test_canonical_means_byte_equal(self):
        # Two dicts with different insertion order frame identically — the
        # property the determinism suite's byte comparisons rest on.
        assert encode_message({"a": 1, "b": 2}) == encode_message({"b": 2, "a": 1})


class TestDecode:
    def test_rejects_invalid_json(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_line(b"{not json}\n")

    def test_rejects_invalid_utf8(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_line(b"\xff\xfe\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="must be a JSON object, got list"):
            decode_line(b"[1,2]\n")

    def test_accepts_trailing_newline_and_whitespace(self):
        assert decode_line(b' {"op": "status"} \n') == {"op": "status"}


class TestConstants:
    def test_protocol_version_is_one(self):
        assert PROTOCOL_VERSION == 1

    def test_message_bound_fits_large_result_documents(self):
        # A recorded-series result document is ~1 MiB; the bound leaves a
        # wide margin without letting a newline-less peer balloon memory.
        assert MAX_MESSAGE_BYTES == 64 * 1024 * 1024
        document = {"metrics": {"series": [[0.1, 1.0]] * 10_000}}
        assert len(encode_message(document)) < MAX_MESSAGE_BYTES

    def test_encoded_form_is_json_parseable(self):
        framed = encode_message({"event": "hello", "protocol": PROTOCOL_VERSION})
        assert json.loads(framed.decode()) == {
            "event": "hello",
            "protocol": PROTOCOL_VERSION,
        }
