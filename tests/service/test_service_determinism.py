"""Service results are byte-identical to batch results — the PR's core bar.

The daemon executes cells through the same planner
(:func:`~repro.experiments.runner.plan_cell`), worker entry point and
canonical serialisation the batch :class:`ExperimentRunner` uses, so a
result obtained over the wire must equal the batch result byte for byte —
for every golden scenario, on both population backends, through the serial
and pooled daemon, for sharded specs, and with identical SHA-256 cache
keys on disk.  One daemon per backend is shared across the parametrised
cases (that sharing *is* the service's cache model).
"""

import pytest

from repro.adversary import AttackSpec
from repro.experiments import (
    CohortDecl,
    ExperimentRunner,
    PAPER_DEFAULTS,
    ResultCache,
    RunResult,
    ScenarioSpec,
    SessionDecl,
    execute_spec,
    scenario_spec,
)
from repro.multicast_cc.population import BACKEND_ENV_VAR, numpy_available

#: Same golden scenarios (and shortened overrides) as ``tests/golden`` and
#: the warm-start byte-identity suite.
GOLDEN_CASES = {
    "figure1-attack": dict(attack_start_s=12.0, duration_s=30.0),
    "figure7-defence": dict(attack_start_s=12.0, duration_s=30.0),
    "attack-flapping": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-key-guessing": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-key-replay": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-join-storm": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-ignore-congestion": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-composite": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-collusion-parking-lot": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-inflated-100k": dict(
        receivers=2000, attackers=5, attack_start_s=6.0, duration_s=18.0
    ),
    "attack-keys-100k": dict(
        receivers=2000, replayers=5, guessers=5, attack_start_s=6.0, duration_s=18.0
    ),
    "attack-collusion-100k": dict(
        receivers=2000, publishers=5, exploiters=5, attack_start_s=6.0, duration_s=18.0
    ),
    "attack-churn-flash-crowd": dict(
        initial=50, surge=1950, surge_at_s=8.0, attack_start_s=6.0, duration_s=18.0
    ),
    "scale-protection": dict(
        audience=1000, attacker_fraction=0.01, attack_start_s=6.0, duration_s=18.0
    ),
}

BACKENDS = ("numpy", "fallback")


def _backend_or_skip(name):
    if name == "numpy" and not numpy_available():
        pytest.skip("numpy not importable in this environment")
    return name


@pytest.fixture(scope="module")
def daemon_for(shared_daemon):
    """One pooled daemon per backend, started lazily and shared module-wide."""
    handles = {}

    def get(backend):
        if backend not in handles:
            handles[backend] = shared_daemon(
                jobs=2, backend=backend, name=f"det-{backend}"
            )
        return handles[backend]

    return get


def fast_spec(seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="determinism-fast",
        protected=False,
        sessions=(SessionDecl("mc"),),
        duration_s=6.0,
        config=PAPER_DEFAULTS.with_duration(6.0).with_seed(seed),
    )


def sharded_spec() -> ScenarioSpec:
    """A small 2-region sharded scenario with an adversarial cohort."""
    return ScenarioSpec(
        name="determinism-sharded",
        protected=True,
        topology="sharded-dumbbell",
        topology_params={"regions": 2, "edges_per_region": 2},
        shards=2,
        duration_s=10.0,
        sessions=(
            SessionDecl(
                "mc",
                receivers=0,
                population=(
                    CohortDecl(200, model="vector", cohorts=8),
                    CohortDecl(
                        40,
                        model="vector",
                        cohorts=4,
                        attack=AttackSpec("inflated-join", start_s=6.0),
                    ),
                ),
            ),
        ),
        config=PAPER_DEFAULTS,
    )


def _service_results(handle, spec, seeds):
    """Run ``spec`` over ``seeds`` through a daemon; returns (results, events)."""
    with handle.client() as client:
        events = []
        results = client.run(spec, seeds=seeds, on_event=events.append)
    return results, [e for e in events if e["event"] == "result"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_service_equals_batch(name, backend, daemon_for, monkeypatch):
    """Every golden scenario, both backends: wire bytes == batch bytes."""
    monkeypatch.setenv(BACKEND_ENV_VAR, _backend_or_skip(backend))
    spec = scenario_spec(name, **GOLDEN_CASES[name])
    batch = execute_spec(spec).to_json()
    handle = daemon_for(backend)
    results, events = _service_results(handle, spec, [spec.seed])
    assert results[0].to_json() == batch
    # The streamed document round-trips to the same bytes, and the daemon
    # filed it under the exact cache key a batch runner would use.
    assert RunResult.from_dict(events[0]["result"]).to_json() == batch
    key = ResultCache.key(spec)
    assert events[0]["key"] == key
    assert (handle.cache_dir / f"{key}.json").read_text() == batch


@pytest.mark.parametrize("jobs", (1, 2))
def test_grid_equals_batch_serial_and_pooled(jobs, daemon, tmp_path):
    """A spec × seed grid through the daemon == the batch runner: result
    bytes and the cache directory's key set, serial and pooled."""
    seeds = [0, 1, 2]
    batch_cache = tmp_path / f"batch-cache-{jobs}"
    runner = ExperimentRunner(jobs=jobs, cache_dir=batch_cache)
    batch = [r.to_json() for r in runner.run_seed_sweep(fast_spec(), seeds)]
    handle = daemon(jobs=jobs, name=f"grid-{jobs}")
    results, events = _service_results(handle, fast_spec(), seeds)
    assert [r.to_json() for r in results] == batch
    service_keys = {p.name for p in handle.cache_dir.glob("*.json")}
    batch_keys = {p.name for p in batch_cache.glob("*.json")}
    assert service_keys == batch_keys == {
        f"{ResultCache.key(fast_spec(seed))}.json" for seed in seeds
    }


def test_sharded_spec_service_equals_batch(daemon):
    """Region-sharded specs take the same fan-out + merge path either way."""
    spec = sharded_spec()
    batch = ExperimentRunner(jobs=1).run_one(spec).to_json()
    results, events = _service_results(daemon(jobs=2), spec, [spec.seed])
    assert results[0].to_json() == batch
    assert events[0]["key"] == ResultCache.key(spec)


def test_repeated_submission_bytes_stable_across_cold_and_cached(daemon):
    """Cold execution, cache hit and a fresh daemon on the same store all
    stream identical bytes."""
    handle = daemon(name="stable-a")
    spec = fast_spec()
    cold, _ = _service_results(handle, spec, [0])
    warm, warm_events = _service_results(handle, spec, [0])
    assert warm_events[0]["cached"] is True
    second = daemon(name="stable-b", cache_dir=handle.cache_dir)
    reread, reread_events = _service_results(second, spec, [0])
    assert reread_events[0]["cached"] is True
    assert cold[0].to_json() == warm[0].to_json() == reread[0].to_json()
