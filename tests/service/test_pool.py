"""Worker-crash and timeout semantics of the two job execution substrates.

Covers the PR's runner fix — a worker that dies mid-job no longer aborts a
grid with a raw :class:`BrokenProcessPool`; it is retried (bounded) on a
fresh pool and, when retries are exhausted, surfaces an actionable
:class:`~repro.experiments.ExperimentExecutionError` — plus the async
pool's per-job timeout (stuck worker killed, pool rebuilt, caller told).

Crash injection monkeypatches the module-level worker entry point; the
``fork`` start method propagates the patched binding into pool workers, so
the tests skip on platforms with ``spawn``/``forkserver`` defaults.
"""

import asyncio
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentExecutionError,
    ExperimentRunner,
    JobExecutor,
    PAPER_DEFAULTS,
    ScenarioSpec,
    SessionDecl,
)
from repro.experiments.runner import describe_job, run_job
from repro.service import AsyncJobPool, JobTimeoutError

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash injection relies on fork inheriting monkeypatched workers",
)

#: Environment key naming the crash-once marker file (set per-test; read by
#: forked workers, which inherit the test process environment).
MARKER_ENV = "REPRO_TEST_CRASH_MARKER"


def fast_spec(seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="pool-fast",
        protected=False,
        sessions=(SessionDecl("mc"),),
        duration_s=6.0,
        config=PAPER_DEFAULTS.with_duration(6.0).with_seed(seed),
    )


def _jobs(seeds):
    return [("spec", fast_spec(seed).to_json()) for seed in seeds]


def crash_once_worker(job):
    """Die hard (uncatchable, like an OOM kill) on the first job ever seen."""
    marker = Path(os.environ[MARKER_ENV])
    if not marker.exists():
        marker.write_text("crashed")
        os._exit(137)
    return run_job(job)


def always_crash_worker(job):
    os._exit(137)


def sleep_forever_worker(job):
    time.sleep(300.0)
    return run_job(job)


# ----------------------------------------------------------------------
# JobExecutor (the batch substrate)
# ----------------------------------------------------------------------
class TestJobExecutor:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="jobs"):
            JobExecutor(jobs=0)
        with pytest.raises(ValueError, match="retries"):
            JobExecutor(retries=-1)

    def test_serial_equals_pooled(self):
        jobs = _jobs((0, 1))
        with JobExecutor(jobs=1) as serial, JobExecutor(jobs=2) as pooled:
            assert pooled.run_all(jobs) == serial.run_all(jobs)

    @fork_only
    def test_crashed_worker_is_retried_byte_identically(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MARKER_ENV, str(tmp_path / "crash.marker"))
        jobs = _jobs((0, 1))
        expected = [run_job(job) for job in jobs]
        with JobExecutor(jobs=2, retries=2, worker=crash_once_worker) as executor:
            assert executor.run_all(jobs) == expected
            assert executor.restarts >= 1

    @fork_only
    def test_exhausted_retries_raise_actionable_error(self):
        with JobExecutor(jobs=2, retries=1, worker=always_crash_worker) as executor:
            with pytest.raises(ExperimentExecutionError) as excinfo:
                executor.run_all(_jobs((0, 1)))
        message = str(excinfo.value)
        assert "worker process crashed" in message
        assert "pool-fast" in message
        assert "jobs=1" in message

    def test_serial_path_propagates_real_exceptions(self):
        with JobExecutor(jobs=1) as executor:
            with pytest.raises(ValueError):
                executor.run_all([("spec", "this is not a spec document")])


# ----------------------------------------------------------------------
# ExperimentRunner regression: no more raw BrokenProcessPool grid loss
# ----------------------------------------------------------------------
class TestRunnerCrashRecovery:
    @fork_only
    def test_sweep_survives_one_worker_crash(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MARKER_ENV, str(tmp_path / "crash.marker"))
        expected = ExperimentRunner(jobs=1).run_seed_sweep(fast_spec(), (0, 1))
        # Patch only after the serial reference run: the serial path executes
        # the worker in-process, where the injected crash would kill pytest.
        monkeypatch.setattr(
            "repro.experiments.runner.run_job", crash_once_worker
        )
        results = ExperimentRunner(jobs=2).run_seed_sweep(fast_spec(), (0, 1))
        assert [r.to_json() for r in results] == [r.to_json() for r in expected]

    @fork_only
    def test_persistent_crash_raises_experiment_error(self, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.runner.run_job", always_crash_worker
        )
        runner = ExperimentRunner(jobs=2, retries=0)
        with pytest.raises(ExperimentExecutionError, match="did not recover"):
            runner.run_seed_sweep(fast_spec(), (0, 1))


# ----------------------------------------------------------------------
# AsyncJobPool (the service substrate)
# ----------------------------------------------------------------------
class TestAsyncJobPool:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="jobs"):
            AsyncJobPool(jobs=0)
        with pytest.raises(ValueError, match="retries"):
            AsyncJobPool(retries=-1)

    def test_runs_jobs_and_counts_completions(self):
        async def scenario():
            pool = AsyncJobPool(jobs=2)
            try:
                jobs = _jobs((0, 1))
                outputs = await asyncio.gather(*(pool.run(job) for job in jobs))
                assert outputs == [run_job(job) for job in jobs]
                assert pool.stats()["completed"] == 2
                assert pool.stats()["restarts"] == 0
            finally:
                pool.close()

        asyncio.run(scenario())

    @fork_only
    def test_crashed_worker_retried_byte_identically(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MARKER_ENV, str(tmp_path / "crash.marker"))

        async def scenario():
            pool = AsyncJobPool(jobs=2, retries=2, worker=crash_once_worker)
            try:
                job = _jobs((0,))[0]
                assert await pool.run(job) == run_job(job)
                stats = pool.stats()
                assert stats["restarts"] >= 1
                assert stats["retries_used"] >= 1
            finally:
                pool.close()

        asyncio.run(scenario())

    @fork_only
    def test_exhausted_retries_raise_actionable_error(self):
        async def scenario():
            pool = AsyncJobPool(jobs=1, retries=1, worker=always_crash_worker)
            try:
                with pytest.raises(ExperimentExecutionError, match="jobs=1"):
                    await pool.run(_jobs((0,))[0])
            finally:
                pool.close()

        asyncio.run(scenario())

    @fork_only
    def test_timeout_kills_worker_and_pool_recovers(self):
        async def scenario():
            pool = AsyncJobPool(jobs=1, worker=sleep_forever_worker)
            try:
                job = _jobs((0,))[0]
                with pytest.raises(JobTimeoutError, match="budget"):
                    await pool.run(job, timeout_s=0.5)
                assert pool.stats()["restarts"] == 1
                # The rebuilt pool is immediately usable with a sane worker.
                pool._worker = run_job
                assert await pool.run(job, timeout_s=120.0) == run_job(job)
            finally:
                pool.close()

        asyncio.run(scenario())


def test_describe_job_names_scenario_and_seed():
    description = describe_job(("spec", fast_spec(3).to_json()))
    assert "spec job" in description
    assert "'pool-fast'" in description
    assert "seed 3" in description
