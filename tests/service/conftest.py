"""Fixtures for the service suite: real daemons and in-process services.

Two harnesses, used by different tests (both implemented in ``_util.py``):

* ``daemon`` / ``shared_daemon`` — a *real* ``python -m repro serve``
  subprocess on a Unix socket, for end-to-end behaviour, SIGTERM drain and
  the CLI surface.  The factories wait for the daemon's ``listening``
  announcement before returning and guarantee teardown.
* ``service_loop`` — an in-process
  :class:`~repro.service.ExperimentService` inside a test-owned event
  loop, for fault injection (the pool's worker entry point can be
  monkeypatched, which ``fork``-started workers inherit) and for
  deterministic cross-connection concurrency tests.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _util import reap_daemons, spawn_daemon, start_service_loop


@pytest.fixture
def daemon(tmp_path):
    """Factory: start a real daemon subprocess; all started daemons are
    terminated (and reaped) at teardown regardless of test outcome."""
    started = []
    yield lambda **kwargs: spawn_daemon(tmp_path, started, **kwargs)
    reap_daemons(started)


@pytest.fixture(scope="module")
def shared_daemon(tmp_path_factory):
    """Module-scoped daemon factory, for suites that amortise one daemon
    (per backend) across a parametrised set of cases."""
    started = []
    base = tmp_path_factory.mktemp("service-daemons")
    yield lambda **kwargs: spawn_daemon(base, started, **kwargs)
    reap_daemons(started)


@pytest.fixture
def service_loop(tmp_path):
    """Factory usable *inside* a test-owned event loop::

        async def scenario():
            loop = await service_loop(jobs=2)
            ...
            await loop.stop()
        asyncio.run(scenario())
    """

    async def start(**overrides):
        overrides.setdefault("cache_dir", tmp_path / "svc-cache")
        overrides.setdefault("socket", tmp_path / "svc.sock")
        return await start_service_loop(**overrides)

    return start
