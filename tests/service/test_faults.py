"""Fault injection: crashes, disconnects, drains and torn cache entries.

Each failure mode the service must absorb, proven deterministically:

* a worker killed mid-job is retried on a rebuilt pool and the streamed
  result is byte-identical to the no-fault run,
* a client that disconnects mid-stream abandons only its stream — the
  in-flight simulation completes and lands in the shared cache,
* ``SIGTERM`` drains: in-flight submissions finish and stream, new ones
  are refused with a ``draining`` notice, and the daemon exits 0,
* a torn/corrupt cache entry reads as a miss: the cell re-runs cold and
  the entry is atomically healed,
* a job over its wall-clock budget surfaces an in-band error and the
  pool recovers for the next submission.

Crash/slow workers are injected by monkeypatching the async pool's worker
entry point; ``fork``-started pool workers inherit the patched binding.
"""

import asyncio
import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.experiments import (
    PAPER_DEFAULTS,
    ResultCache,
    ScenarioSpec,
    SessionDecl,
    execute_spec,
    scenario_spec,
)
from repro.experiments.runner import run_job
from repro.service import ServiceError

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fault injection relies on fork inheriting monkeypatched workers",
)

MARKER_ENV = "REPRO_TEST_FAULT_MARKER"


def fast_spec(seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="faults-fast",
        protected=False,
        sessions=(SessionDecl("mc"),),
        duration_s=6.0,
        config=PAPER_DEFAULTS.with_duration(6.0).with_seed(seed),
    )


def crash_once_worker(job):
    """Die hard (uncatchable, like an OOM kill) on the first job ever seen."""
    marker = Path(os.environ[MARKER_ENV])
    if not marker.exists():
        marker.write_text("crashed")
        os._exit(137)
    return run_job(job)


def slow_worker(job):
    """Hold the job long enough for the test to act mid-flight."""
    time.sleep(1.5)
    return run_job(job)


def sleep_forever_worker(job):
    time.sleep(300.0)
    return run_job(job)


async def _submit_and_collect(conn, spec, seeds=None, timeout_s=None):
    request = {"op": "submit", "id": "f1", "spec": spec.to_dict()}
    if seeds is not None:
        request["seeds"] = seeds
    if timeout_s is not None:
        request["timeout_s"] = timeout_s
    await conn.send(request)
    return await conn.events_until("done", request_id="f1")


class TestWorkerCrash:
    @fork_only
    def test_killed_worker_is_retried_byte_identically(
        self, service_loop, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(MARKER_ENV, str(tmp_path / "crash.marker"))
        spec = fast_spec()
        expected = execute_spec(spec).to_json()
        monkeypatch.setattr("repro.service.pool.run_job", crash_once_worker)

        async def scenario():
            loop = await service_loop(jobs=2)
            conn = await loop.connect()
            events = await _submit_and_collect(conn, spec)
            conn.close()
            stats = loop.service.pool.stats()
            await loop.stop()
            return events, stats

        events, stats = asyncio.run(scenario())
        kinds = [e["event"] for e in events]
        assert kinds == ["accepted", "result", "done"]
        result = next(e for e in events if e["event"] == "result")
        assert (
            json.dumps(result["result"], sort_keys=True, separators=(",", ":"))
            == expected
        )
        assert stats["restarts"] >= 1
        assert stats["retries_used"] >= 1


class TestClientDisconnect:
    @fork_only
    def test_inflight_cell_completes_into_shared_cache(
        self, service_loop, monkeypatch
    ):
        spec = fast_spec()
        expected = execute_spec(spec).to_json()
        monkeypatch.setattr("repro.service.pool.run_job", slow_worker)

        async def scenario():
            loop = await service_loop(jobs=1)
            conn = await loop.connect()
            await conn.send(
                {"op": "submit", "id": "d1", "spec": spec.to_dict()}
            )
            accepted = await conn.recv()
            assert accepted["event"] == "accepted"
            # Vanish mid-execution: the worker holds the job for ~1.5s.
            conn.close()
            deadline = asyncio.get_running_loop().time() + 60.0
            while loop.service.scheduler.stats()["cells_executed"] < 1:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.05)
            cached = loop.service.cache.load(spec)
            stats = loop.service.scheduler.stats()
            await loop.stop()
            return cached, stats

        cached, stats = asyncio.run(scenario())
        assert cached is not None and cached.to_json() == expected
        assert stats["cells_executed"] == 1
        assert stats["queued"] == 0  # the abandoned stream released its slot


class TestSigtermDrain:
    def test_inflight_finish_new_refused_exit_zero(self, daemon):
        handle = daemon(jobs=1)
        # ~0.5s of simulation per cell: a wide-enough window to signal the
        # daemon and submit from a second connection while cells run.
        spec = scenario_spec("figure8-throughput", duration_s=30.0, count=8)
        streamer = handle.client()
        stream = streamer.stream(spec, seeds=[0, 1])
        assert next(stream)["event"] == "accepted"
        bystander = handle.client()
        handle.proc.send_signal(signal.SIGTERM)
        time.sleep(0.2)
        with pytest.raises(ServiceError, match="draining"):
            bystander.run(fast_spec(), seeds=[0])
        events = list(stream)
        assert [e["event"] for e in events].count("result") == 2
        assert events[-1]["event"] == "done"
        assert events[-1]["completed"] == 2
        streamer.close()
        bystander.close()
        assert handle.wait() == 0
        assert not handle.socket.exists()

    def test_listener_is_closed_while_draining(self, daemon):
        handle = daemon()
        handle.proc.send_signal(signal.SIGTERM)
        assert handle.wait() == 0
        with pytest.raises((ConnectionError, FileNotFoundError, OSError)):
            handle.client()


class TestTornCacheEntry:
    @pytest.mark.parametrize("garbage", [b"", b'{"scenario": "faults-f', b"\x00" * 64])
    def test_corrupt_entry_is_a_miss_and_heals(self, daemon, garbage):
        handle = daemon()
        spec = fast_spec()
        expected = execute_spec(spec).to_json()
        entry = handle.cache_dir / f"{ResultCache.key(spec)}.json"
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_bytes(garbage)
        with handle.client() as client:
            events = []
            (result,) = client.run(spec, seeds=[0], on_event=events.append)
        streamed = next(e for e in events if e["event"] == "result")
        assert streamed["cached"] is False  # the torn entry was not trusted
        assert result.to_json() == expected
        assert entry.read_text() == expected  # atomically healed on disk


class TestJobTimeout:
    @fork_only
    def test_budget_exceeded_answers_in_band_and_pool_recovers(
        self, service_loop, monkeypatch
    ):
        spec = fast_spec()
        monkeypatch.setattr("repro.service.pool.run_job", sleep_forever_worker)

        async def scenario():
            loop = await service_loop(jobs=1)
            conn = await loop.connect()
            events = await _submit_and_collect(conn, spec, timeout_s=0.5)
            # Un-wedge the worker binding and prove the rebuilt pool works.
            monkeypatch.setattr("repro.service.pool.run_job", run_job)
            healthy = await _submit_and_collect(conn, spec)
            conn.close()
            stats = loop.service.pool.stats()
            await loop.stop()
            return events, healthy, stats

        events, healthy, stats = asyncio.run(scenario())
        error = next(e for e in events if e["event"] == "error")
        assert "budget" in error["message"]
        assert events[-1] == {
            "event": "done",
            "id": "f1",
            "completed": 0,
            "failed": 1,
            "cached": 0,
        }
        assert [e["event"] for e in healthy] == ["accepted", "result", "done"]
        assert stats["restarts"] >= 1
