"""Cross-connection dedup: one simulation per distinct spec, daemon-wide.

Two clients racing the same spec must cost exactly one execution — the
second connection coalesces onto the first's in-flight task (or, if it
arrives after completion, reads the shared cache) and both receive
byte-identical results.  The in-process test pins the interleaving with a
slowed worker so the dedup path itself (not the cache) is exercised; the
subprocess test races two real clients through a real daemon and asserts
the daemon-wide invariant that only one cell was ever executed.
"""

import asyncio
import concurrent.futures
import multiprocessing
import time

import pytest

from repro.experiments import (
    PAPER_DEFAULTS,
    ScenarioSpec,
    SessionDecl,
)
from repro.experiments.runner import run_job

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker slowdown relies on fork inheriting monkeypatched workers",
)


def fast_spec(seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="concurrency-fast",
        protected=False,
        sessions=(SessionDecl("mc"),),
        duration_s=6.0,
        config=PAPER_DEFAULTS.with_duration(6.0).with_seed(seed),
    )


def slow_worker(job):
    """Hold the job long enough for a second submission to arrive."""
    time.sleep(1.0)
    return run_job(job)


class TestInProcessDedup:
    @fork_only
    def test_second_connection_coalesces_onto_inflight_cell(
        self, service_loop, monkeypatch
    ):
        spec = fast_spec()
        monkeypatch.setattr("repro.service.pool.run_job", slow_worker)

        async def scenario():
            loop = await service_loop(jobs=2)
            first = await loop.connect()
            second = await loop.connect()
            await first.send({"op": "submit", "id": "a", "spec": spec.to_dict()})
            assert (await first.recv())["event"] == "accepted"
            # The cell is now in flight (worker sleeps ~1s); race it.
            await second.send({"op": "submit", "id": "b", "spec": spec.to_dict()})
            events_a = await first.events_until("done", request_id="a")
            events_b = await second.events_until("done", request_id="b")
            first.close()
            second.close()
            stats = loop.service.scheduler.stats()
            pool_stats = loop.service.pool.stats()
            await loop.stop()
            return events_a, events_b, stats, pool_stats

        events_a, events_b, stats, pool_stats = asyncio.run(scenario())
        result_a = next(e for e in events_a if e["event"] == "result")
        result_b = next(e for e in events_b if e["event"] == "result")
        assert result_a["result"] == result_b["result"]
        assert result_a["key"] == result_b["key"]
        # Exactly one execution; the racing submission took the dedup path.
        assert stats["cells_executed"] == 1
        assert stats["dedup_hits"] == 1
        assert pool_stats["completed"] == 1
        assert {result_a["deduped"], result_b["deduped"]} == {False, True}

    @fork_only
    def test_dedup_does_not_conflate_distinct_seeds(self, service_loop, monkeypatch):
        monkeypatch.setattr("repro.service.pool.run_job", slow_worker)

        async def scenario():
            loop = await service_loop(jobs=2)
            first = await loop.connect()
            second = await loop.connect()
            await first.send(
                {"op": "submit", "id": "a", "spec": fast_spec(0).to_dict()}
            )
            await second.send(
                {"op": "submit", "id": "b", "spec": fast_spec(1).to_dict()}
            )
            events_a = await first.events_until("done", request_id="a")
            events_b = await second.events_until("done", request_id="b")
            first.close()
            second.close()
            stats = loop.service.scheduler.stats()
            await loop.stop()
            return events_a, events_b, stats

        events_a, events_b, stats = asyncio.run(scenario())
        result_a = next(e for e in events_a if e["event"] == "result")
        result_b = next(e for e in events_b if e["event"] == "result")
        assert result_a["key"] != result_b["key"]
        assert result_a["result"]["seed"] == 0
        assert result_b["result"]["seed"] == 1
        assert stats["cells_executed"] == 2
        assert stats["dedup_hits"] == 0


class TestDaemonWideDedup:
    def test_two_real_clients_one_cache_entry_one_simulation(self, daemon):
        handle = daemon(jobs=2)
        spec = fast_spec()

        def submit():
            with handle.client() as client:
                (result,) = client.run(spec, seeds=[0])
                return result.to_json()

        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            outputs = list(pool.map(lambda _: submit(), range(2)))
        assert outputs[0] == outputs[1]
        with handle.client() as client:
            status = client.status()
        # However the race resolved (dedup or cache), exactly one simulation
        # ran and exactly one entry exists in the shared store.
        assert status["scheduler"]["cells_executed"] == 1
        assert (
            status["scheduler"]["dedup_hits"]
            + status["scheduler"]["cache_hits"]
        ) == 1
        assert len(list(handle.cache_dir.glob("*.json"))) == 1
