"""Shared harness code for the service suite (imported by conftest fixtures).

Keeps the subprocess-daemon plumbing (:class:`DaemonHandle`,
:func:`spawn_daemon`) and the in-process protocol conversation helpers
(:class:`AsyncConn`, :class:`ServiceLoop`) in one importable module, so
test files and ``conftest.py`` use literally the same harness.
"""

import asyncio
import os
import select
import subprocess
import sys
from pathlib import Path

from repro.service import ExperimentService, ServiceClient, ServiceConfig
from repro.service.protocol import decode_line, encode_message

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def daemon_env(backend=None):
    """Subprocess environment with ``src/`` importable and an optional
    population-backend override."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    if backend is not None:
        env["REPRO_POPULATION_BACKEND"] = backend
    return env


class DaemonHandle:
    """A running ``repro serve`` subprocess plus its endpoint and stores."""

    def __init__(self, proc, socket_path, cache_dir):
        self.proc = proc
        self.socket = socket_path
        self.cache_dir = cache_dir

    def client(self, timeout_s=120.0):
        """A fresh blocking client connected to this daemon."""
        return ServiceClient(socket_path=self.socket, timeout_s=timeout_s)

    def wait(self, timeout=60.0):
        """Wait for the daemon process to exit; returns its exit code."""
        return self.proc.wait(timeout=timeout)


def _wait_for_listening(proc, timeout_s=60.0):
    """Block until the daemon announces its endpoint (or fails to start)."""
    ready, _, _ = select.select([proc.stdout], [], [], timeout_s)
    if not ready:
        proc.kill()
        raise AssertionError("daemon never announced its endpoint")
    line = proc.stdout.readline()
    assert b'"listening"' in line, (
        f"unexpected daemon announcement: {line!r}; stderr: {proc.stderr.read()!r}"
    )


def spawn_daemon(base, started, jobs=1, backend=None, cache_dir=None,
                 extra_args=(), name="d"):
    """Start a ``repro serve`` subprocess and wait for it to listen."""
    cache = Path(cache_dir) if cache_dir else base / f"{name}-cache"
    socket_path = base / f"{name}.sock"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            str(socket_path),
            "--cache-dir",
            str(cache),
            "--jobs",
            str(jobs),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=daemon_env(backend),
    )
    started.append(proc)
    _wait_for_listening(proc)
    return DaemonHandle(proc, socket_path, cache)


def reap_daemons(started):
    """Terminate (then kill) every daemon a factory fixture started."""
    for proc in started:
        if proc.poll() is None:
            proc.terminate()
    for proc in started:
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


class AsyncConn:
    """One protocol conversation over asyncio streams (in-process tests)."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, socket_path):
        """Connect and consume the ``hello`` handshake."""
        reader, writer = await asyncio.open_unix_connection(str(socket_path))
        conn = cls(reader, writer)
        hello = await conn.recv()
        assert hello["event"] == "hello"
        return conn

    async def send(self, document):
        self.writer.write(encode_message(document))
        await self.writer.drain()

    async def recv(self):
        line = await self.reader.readline()
        assert line, "service closed the connection"
        return decode_line(line)

    async def events_until(self, kind, request_id=None):
        """Collect events through the first of kind ``kind`` (inclusive)."""
        events = []
        while True:
            event = await self.recv()
            if request_id is not None and event.get("id") != request_id:
                continue
            events.append(event)
            if event.get("event") == kind:
                return events

    def close(self):
        self.writer.close()


class ServiceLoop:
    """An in-process service bound to a Unix socket inside the test's loop."""

    def __init__(self, service, task):
        self.service = service
        self.task = task

    async def connect(self):
        return await AsyncConn.open(self.service.endpoint[1])

    async def stop(self):
        """Drain the service and wait for its serve task to finish."""
        self.service.request_drain()
        await self.task


async def start_service_loop(**overrides):
    """Start an in-process :class:`ExperimentService` in the running loop."""
    service = ExperimentService(ServiceConfig(**overrides))
    task = asyncio.get_running_loop().create_task(service.serve(announce=False))
    while service.endpoint is None:
        assert not task.done(), task.exception()
        await asyncio.sleep(0.01)
    return ServiceLoop(service, task)
