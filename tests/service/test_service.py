"""End-to-end daemon behaviour: handshake, streaming, caching, CLI surface.

Runs a real ``python -m repro serve`` subprocess on a Unix socket and
drives it with the blocking :class:`~repro.service.ServiceClient` (the same
path the ``submit``/``status`` subcommands use), plus raw protocol
conversations for the error-handling contract: a malformed line or unknown
op answers in-band and never kills the connection's other work.
"""

import asyncio
import hashlib
import json
import subprocess
import sys

import pytest

from _util import AsyncConn, daemon_env

from repro.experiments import (
    PAPER_DEFAULTS,
    ResultCache,
    ScenarioSpec,
    SessionDecl,
    execute_spec,
    plan_prefix,
    scenario_spec,
)
from repro.service import PROTOCOL_VERSION, ServiceError
from repro.service.jobs import (
    ExperimentScheduler,
    QueueFullError,
    ServiceDrainingError,
)
from repro.service.pool import AsyncJobPool


def fast_spec(seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="service-fast",
        protected=False,
        sessions=(SessionDecl("mc"),),
        duration_s=6.0,
        config=PAPER_DEFAULTS.with_duration(6.0).with_seed(seed),
    )


class TestEndToEnd:
    def test_hello_handshake(self, daemon):
        with daemon().client() as client:
            assert client.hello["protocol"] == PROTOCOL_VERSION
            assert isinstance(client.hello["version"], str)

    def test_submit_streams_results_in_seed_order(self, daemon):
        handle = daemon(jobs=2)
        events = []
        with handle.client() as client:
            results = client.run(fast_spec(), seeds=[0, 1], on_event=events.append)
        assert [e["event"] for e in events] == ["accepted", "result", "result", "done"]
        assert events[0]["cells"] == 2
        assert [e["seed"] for e in events[1:3]] == [0, 1]
        assert events[3] == {
            "event": "done",
            "id": events[3]["id"],
            "completed": 2,
            "failed": 0,
            "cached": 0,
        }
        for seed, result in zip((0, 1), results):
            assert result.to_json() == execute_spec(fast_spec(seed)).to_json()

    def test_result_events_carry_batch_cache_keys(self, daemon):
        handle = daemon()
        with handle.client() as client:
            events = list(client.stream(fast_spec(), seeds=[0]))
        result = next(e for e in events if e["event"] == "result")
        key = ResultCache.key(fast_spec(0))
        assert result["key"] == key
        assert (handle.cache_dir / f"{key}.json").exists()

    def test_resubmission_is_served_from_cache(self, daemon):
        handle = daemon()
        with handle.client() as client:
            client.run(fast_spec(), seeds=[0, 1])
        with handle.client() as client:
            events = list(client.stream(fast_spec(), seeds=[0, 1]))
            status = client.status()
        assert all(
            e["cached"] for e in events if e["event"] == "result"
        )
        # Cache hits are answered without touching the worker pool.
        assert status["pool"]["completed"] == 2
        assert status["scheduler"]["cache_hits"] == 2
        assert status["scheduler"]["cache_hit_rate"] == pytest.approx(0.5)

    def test_cache_get_round_trip_and_miss(self, daemon):
        handle = daemon()
        spec = fast_spec()
        with handle.client() as client:
            (result,) = client.run(spec, seeds=[0])
            assert client.cache_get(ResultCache.key(spec)) == result.to_dict()
            assert client.cache_get("0" * 64) is None

    def test_warm_start_blob_is_served_from_shared_store(self, daemon):
        spec = scenario_spec(
            "attack-flapping", attack_start_s=6.0, duration_s=18.0
        )
        plan = plan_prefix(spec)
        assert plan is not None
        handle = daemon()
        with handle.client() as client:
            events = list(client.stream(spec))
            result = next(e for e in events if e["event"] == "result")
            assert result["warm"] is True
            stat = client.blob_stat(plan.checkpoint_key())
        assert stat["exists"] is True
        assert stat["size"] > 0

    def test_status_document_shape(self, daemon):
        with daemon(jobs=2).client() as client:
            status = client.status()
        assert status["protocol"] == PROTOCOL_VERSION
        assert status["uptime_s"] >= 0
        assert status["connections"] == 1
        assert status["pool"]["workers"] == 2
        assert status["scheduler"]["draining"] is False
        assert status["scheduler"]["max_queue"] == 256

    def test_shutdown_op_drains_and_exits(self, daemon):
        handle = daemon()
        with handle.client() as client:
            bye = client.shutdown()
        assert bye["draining"] is True
        assert handle.wait() == 0
        assert not handle.socket.exists()


class TestProtocolErrorHandling:
    def _converse(self, handle, scenario):
        async def run():
            conn = await AsyncConn.open(handle.socket)
            try:
                return await scenario(conn)
            finally:
                conn.close()

        return asyncio.run(run())

    def test_malformed_line_answers_error_and_connection_survives(self, daemon):
        handle = daemon()

        async def scenario(conn):
            conn.writer.write(b"this is not json\n")
            await conn.writer.drain()
            error = await conn.recv()
            await conn.send({"op": "status", "id": "s1"})
            status = await conn.recv()
            return error, status

        error, status = self._converse(handle, scenario)
        assert error["event"] == "error"
        assert "undecodable" in error["message"]
        assert status["event"] == "status"

    def test_unknown_op_answers_error(self, daemon):
        async def scenario(conn):
            await conn.send({"op": "frobnicate", "id": "x"})
            return await conn.recv()

        event = self._converse(daemon(), scenario)
        assert event["event"] == "error"
        assert "unknown op 'frobnicate'" in event["message"]

    def test_invalid_spec_is_rejected(self, daemon):
        async def scenario(conn):
            await conn.send({"op": "submit", "id": "x", "spec": {"bogus": 1}})
            return await conn.recv()

        event = self._converse(daemon(), scenario)
        assert event["event"] == "rejected"
        assert "invalid spec" in event["reason"]

    def test_non_integer_seeds_are_rejected(self, daemon):
        async def scenario(conn):
            await conn.send(
                {
                    "op": "submit",
                    "id": "x",
                    "spec": fast_spec().to_dict(),
                    "seeds": [0, "one"],
                }
            )
            return await conn.recv()

        event = self._converse(daemon(), scenario)
        assert event["event"] == "rejected"
        assert "seeds" in event["reason"]


class TestSchedulerAdmission:
    def _scheduler(self, tmp_path, max_queue=2):
        return ExperimentScheduler(
            pool=AsyncJobPool(jobs=1),
            cache=ResultCache(tmp_path),
            checkpoint_dir=tmp_path,
            max_queue=max_queue,
        )

    def test_queue_bound_is_enforced(self, tmp_path):
        scheduler = self._scheduler(tmp_path, max_queue=2)
        scheduler.admit(2)
        with pytest.raises(QueueFullError, match="queue bound"):
            scheduler.admit(1)
        scheduler.release(1)
        scheduler.admit(1)

    def test_draining_rejects_admission(self, tmp_path):
        scheduler = self._scheduler(tmp_path)
        scheduler.draining = True
        with pytest.raises(ServiceDrainingError, match="draining"):
            scheduler.admit(1)

    def test_release_never_goes_negative(self, tmp_path):
        scheduler = self._scheduler(tmp_path)
        scheduler.release(5)
        assert scheduler.queued == 0

    def test_queue_full_submission_is_rejected_in_band(self, daemon):
        handle = daemon(extra_args=("--max-queue", "1"))
        with handle.client() as client:
            with pytest.raises(ServiceError, match="queue bound"):
                list(client.stream(fast_spec(), seeds=[0, 1]))
            # A submission that fits still goes through afterwards.
            (result,) = client.run(fast_spec(), seeds=[0])
            assert result.seed == 0


class TestCli:
    def _cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            timeout=300,
            env=daemon_env(),
        )

    def test_submit_prints_table_and_digest(self, daemon):
        handle = daemon()
        proc = self._cli(
            "submit",
            "figure8-throughput",
            "--socket",
            str(handle.socket),
            "--seeds",
            "1",
            "--duration",
            "8",
            "--digest",
        )
        assert proc.returncode == 0, proc.stderr
        assert "daemon answered 1 cell(s)" in proc.stdout
        assert "metrics_sha256 seed=0:" in proc.stdout
        spec = scenario_spec("figure8-throughput", duration_s=8.0)
        metrics = execute_spec(spec).metrics
        digest = hashlib.sha256(
            json.dumps(metrics, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        assert digest in proc.stdout

    def test_status_prints_json_snapshot(self, daemon):
        handle = daemon()
        proc = self._cli("status", "--socket", str(handle.socket))
        assert proc.returncode == 0, proc.stderr
        document = json.loads(proc.stdout)
        assert document["protocol"] == PROTOCOL_VERSION
        assert "scheduler" in document and "pool" in document

    def test_serve_requires_an_endpoint(self, tmp_path):
        proc = self._cli("serve", "--cache-dir", str(tmp_path))
        assert proc.returncode == 2
        assert "--socket" in proc.stderr

    def test_submit_to_missing_daemon_exits_2(self, tmp_path):
        proc = self._cli(
            "submit",
            "figure8-throughput",
            "--socket",
            str(tmp_path / "nope.sock"),
        )
        assert proc.returncode == 2
        assert "cannot reach the daemon" in proc.stderr
