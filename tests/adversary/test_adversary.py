"""Unit tests of the composable adversary subsystem.

Covers the declarative layer (AttackSpec validation and serialisation inside
ScenarioSpec), the registry (lookup, stream isolation), strategy composition
and scheduling on live receivers, the collusion pool, and the legacy
``misbehaving`` translation in the scenario interpreter.
"""

import pytest

from repro.adversary import (
    ADVERSARIES,
    AttackSpec,
    adversary_names,
    build_strategies,
    AdversarialFlidDlReceiver,
    AdversarialFlidDsReceiver,
)
from repro.adversary.context import CollusionPool
from repro.adversary.strategies import (
    InflatedJoinStrategy,
    KeyGuessingStrategy,
)
from repro.experiments import (
    PAPER_DEFAULTS,
    Scenario,
    ScenarioSpec,
    SessionDecl,
    scenario_spec,
)

FAST = PAPER_DEFAULTS.with_duration(8.0)


# ----------------------------------------------------------------------
# declarative layer
# ----------------------------------------------------------------------
class TestAttackSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            AttackSpec("")
        with pytest.raises(ValueError):
            AttackSpec("churn", receivers=())
        with pytest.raises(ValueError):
            AttackSpec("churn", intensity=0.0)
        with pytest.raises(ValueError):
            AttackSpec("churn", start_s=10.0, stop_s=5.0)

    def test_window(self):
        """The window semantics the receivers dispatch on (strategy side)."""
        from repro.adversary.strategies import ChurnStrategy

        strategy = ChurnStrategy(start_s=5.0, stop_s=10.0)
        assert not strategy.active(4.9)
        assert strategy.active(5.0)
        assert strategy.active(9.9)
        assert not strategy.active(10.0)
        assert ChurnStrategy(start_s=5.0).active(1e9)

    def test_roundtrip_through_scenario_json(self):
        spec = ScenarioSpec(
            name="t",
            protected=True,
            sessions=(
                SessionDecl(
                    "s",
                    receivers=3,
                    attacks=(
                        AttackSpec(
                            "key-guessing",
                            receivers=(0, 2),
                            start_s=3.0,
                            stop_s=7.0,
                            intensity=2.5,
                            params={"guesses_per_slot": 9},
                        ),
                        AttackSpec("churn", receivers=(1,)),
                    ),
                )
            ,),
            config=FAST,
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.to_json() == spec.to_json()
        assert restored.sessions[0].attacks[0].params == {"guesses_per_slot": 9}

    def test_session_decl_rejects_out_of_range_targets(self):
        with pytest.raises(ValueError):
            SessionDecl("s", receivers=2, attacks=(AttackSpec("churn", receivers=(2,)),))

    def test_attacker_indices_and_onset_merge_legacy_and_declared(self):
        decl = SessionDecl(
            "s",
            receivers=4,
            misbehaving=(3,),
            attack_start_s=9.0,
            attacks=(AttackSpec("churn", receivers=(1,), start_s=4.0),),
        )
        assert decl.attacker_indices() == (1, 3)
        assert decl.attack_onset_s() == 4.0
        assert SessionDecl("s").attack_onset_s() is None


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_expected_strategies_registered(self):
        assert {
            "inflated-join",
            "ignore-congestion",
            "churn",
            "key-replay",
            "key-guessing",
            "join-storm",
            "collusion",
        } <= set(adversary_names())

    def test_unknown_strategy_raises(self, tmp_path):
        from repro.simulator.topology import DumbbellConfig, DumbbellNetwork
        from repro.multicast_cc import SessionSpec

        net = DumbbellNetwork(DumbbellConfig())
        spec = SessionSpec("s").with_addresses(net.allocate_groups(10))
        with pytest.raises(KeyError, match="no-such-strategy"):
            build_strategies([AttackSpec("no-such-strategy")], net, spec, "h")

    def test_streams_are_isolated_per_strategy(self):
        from repro.simulator.topology import DumbbellConfig, DumbbellNetwork
        from repro.multicast_cc import SessionSpec

        net = DumbbellNetwork(DumbbellConfig(seed=7))
        spec = SessionSpec("s").with_addresses(net.allocate_groups(10))
        attacks = [AttackSpec("key-guessing"), AttackSpec("key-guessing")]
        first, second = build_strategies(attacks, net, spec, "h")
        # Different stream names -> statistically independent draws.
        assert [first.rng.getrandbits(16) for _ in range(4)] != [
            second.rng.getrandbits(16) for _ in range(4)
        ]

    def test_no_global_random_in_adversary_sources(self):
        """Seed hygiene: adversary randomness must flow through seeded streams."""
        import pathlib
        import repro.adversary as adversary

        package_dir = pathlib.Path(adversary.__file__).parent
        for path in package_dir.glob("*.py"):
            source = path.read_text()
            assert "random.random(" not in source
            assert "random.randint(" not in source
            assert "random.getrandbits(" not in source


# ----------------------------------------------------------------------
# live composition and scheduling
# ----------------------------------------------------------------------
def build_protected_duel(attacks, duration=8.0):
    spec = ScenarioSpec(
        name="unit-duel",
        protected=True,
        expected_sessions=2,
        sessions=(
            SessionDecl("atk", receivers=1, attacks=tuple(attacks)),
            SessionDecl("hon", receivers=1),
        ),
        duration_s=duration,
        config=FAST,
    )
    scenario = Scenario.from_spec(spec)
    scenario.run(duration)
    return scenario


class TestComposition:
    def test_multiple_strategies_stack_on_one_receiver(self):
        scenario = build_protected_duel(
            [
                AttackSpec("key-guessing", start_s=1.0),
                AttackSpec("join-storm", start_s=1.0),
            ]
        )
        attacker = scenario.sessions[0].receivers[0]
        assert isinstance(attacker, AdversarialFlidDsReceiver)
        assert [type(s) for s in attacker.strategies] == [
            ADVERSARIES["key-guessing"],
            ADVERSARIES["join-storm"],
        ]
        stats = attacker.adversary_stats()
        assert stats["guess_attempts"] > 0
        assert stats["igmp_attempts"] > 0
        assert sum(a.igmp_joins_ignored for a in scenario.sigma_agents) > 0

    def test_attack_window_stops(self):
        scenario = build_protected_duel(
            [AttackSpec("key-guessing", start_s=1.0, stop_s=3.0)]
        )
        attacker = scenario.sessions[0].receivers[0]
        strategy = attacker.strategies[0]
        assert strategy.started and strategy.stopped
        assert not attacker.attacking
        guesses_at_stop = attacker.adversary_stats()["guess_attempts"]
        assert guesses_at_stop > 0

    def test_legacy_misbehaving_translates_to_strategy_stack(self):
        spec = ScenarioSpec(
            name="legacy",
            protected=True,
            sessions=(SessionDecl("s", receivers=2, misbehaving=(1,), attack_start_s=2.0),),
            duration_s=6.0,
            config=FAST,
        )
        scenario = Scenario.from_spec(spec)
        honest, attacker = scenario.sessions[0].receivers
        assert isinstance(attacker, AdversarialFlidDsReceiver)
        assert not isinstance(honest, AdversarialFlidDsReceiver)
        names = [type(s).name for s in attacker.strategies]
        assert names == ["inflated-join", "key-replay", "key-guessing"]

    def test_legacy_misbehaving_on_unprotected_protocol(self):
        spec = ScenarioSpec(
            name="legacy-dl",
            protected=False,
            sessions=(SessionDecl("s", receivers=1, misbehaving=(0,), attack_start_s=2.0),),
            duration_s=6.0,
            config=FAST,
        )
        scenario = Scenario.from_spec(spec)
        attacker = scenario.sessions[0].receivers[0]
        assert isinstance(attacker, AdversarialFlidDlReceiver)
        assert [type(s) for s in attacker.strategies] == [InflatedJoinStrategy]
        scenario.run(6.0)
        assert attacker.level == attacker.spec.group_count


# ----------------------------------------------------------------------
# collusion pool
# ----------------------------------------------------------------------
class TestCollusionPool:
    def test_publish_merge_and_prune(self):
        pool = CollusionPool("p")
        pool.publish(10, {1: 111})
        pool.publish(10, {2: 222})
        assert pool.keys_for(10) == {1: 111, 2: 222}
        pool.publish(100, {1: 5})
        assert pool.keys_for(10) == {}  # pruned: far in the past
        assert pool.published == 3

    def test_member_weighted_publish_books_cohort_shares(self):
        """One cohort publish with members=N == N identical individual ones."""
        cohort_pool = CollusionPool("c")
        cohort_pool.publish(10, {1: 111, 2: 222}, members=3)
        individual_pool = CollusionPool("i")
        for _ in range(3):
            individual_pool.publish(10, {1: 111, 2: 222})
        assert cohort_pool.keys_for(10) == individual_pool.keys_for(10)
        assert cohort_pool.published == individual_pool.published == 6
        cohort_pool.publish(10, {}, members=3)  # empty publishes book nothing
        assert cohort_pool.published == 6

    def test_pools_are_scoped_per_network(self):
        from repro.simulator.topology import DumbbellConfig, DumbbellNetwork

        first = DumbbellNetwork(DumbbellConfig())
        second = DumbbellNetwork(DumbbellConfig())
        for net in (first, second):
            net._adversary_pools = {}
        first._adversary_pools["p"] = CollusionPool("p")
        assert "p" not in second._adversary_pools


# ----------------------------------------------------------------------
# scenario registry entries
# ----------------------------------------------------------------------
class TestAttackScenarios:
    @pytest.mark.parametrize(
        "name",
        [
            "attack-flapping",
            "attack-key-guessing",
            "attack-key-replay",
            "attack-join-storm",
            "attack-ignore-congestion",
            "attack-composite",
            "attack-collusion-parking-lot",
        ],
    )
    def test_attack_scenarios_build_valid_specs(self, name):
        spec = scenario_spec(name, duration_s=10.0, attack_start_s=3.0)
        assert spec.protected
        assert any(decl.attacks for decl in spec.sessions)
        # Must survive the canonical JSON round trip (runner requirement).
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_attack_scheduled_past_the_run_yields_no_protection_block(self):
        """A clamped zero-width window must not fabricate containment results."""
        from repro.experiments import execute_spec

        spec = scenario_spec("attack-flapping", duration_s=6.0, attack_start_s=50.0)
        result = execute_spec(spec)
        assert "protection" not in result.metrics

    def test_intensity_parameter_reaches_the_strategy(self):
        spec = scenario_spec(
            "attack-key-guessing", duration_s=6.0, attack_start_s=1.0, intensity=3.0
        )
        scenario = Scenario.from_spec(spec)
        attacker = scenario.sessions[0].receivers[0]
        strategy = attacker.strategies[0]
        assert isinstance(strategy, KeyGuessingStrategy)
        assert strategy.intensity == 3.0
