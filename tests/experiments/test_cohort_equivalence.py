"""Exactness of cohort aggregation: cohort-of-N == N individual receivers.

The cohort model's contract (``docs/scale.md``) is that for a homogeneous
honest population behind one edge router, aggregation is *exact*: the same
spec realised with ``model="cohort"`` and ``model="individual"`` must produce

* identical subscription-level trajectories (the full ``(time, level)``
  transition list, not just the per-slot vector) for every member,
* identical SIGMA keys-delivered counts (``valid_submissions`` — the router
  books one delivery per member either way) and identical session-join /
  invalid-submission / revocation counters,
* identical population-weighted IGMP counters on the unprotected variant,
* identical per-member goodput.

These are exact (``==``) comparisons on the same seed, not statistical ones.
"""

import pytest

from repro.analysis.golden import subscription_vector
from repro.experiments import PAPER_DEFAULTS, CohortDecl, Scenario, ScenarioSpec, SessionDecl

#: Small population (feasible as individuals) on a tight bottleneck, so the
#: run exercises congestion decreases, deaf periods and upgrades.
POPULATION = 3
DURATION_S = 20.0


def _spec(protected: bool, model: str) -> ScenarioSpec:
    return ScenarioSpec(
        name="cohort-equivalence",
        protected=protected,
        expected_sessions=1,
        sessions=(
            SessionDecl(
                "s",
                receivers=0,
                population=(CohortDecl(POPULATION, model=model),),
            ),
        ),
        duration_s=DURATION_S,
        config=PAPER_DEFAULTS,
    )


def _run(protected: bool, model: str) -> Scenario:
    scenario = Scenario.from_spec(_spec(protected, model))
    scenario.run(DURATION_S)
    return scenario


@pytest.fixture(scope="module", params=[False, True], ids=["flid_dl", "flid_ds"])
def pair(request):
    """One (cohort scenario, individual scenario) pair per protocol variant."""
    protected = request.param
    return protected, _run(protected, "cohort"), _run(protected, "individual")


def test_population_accounting(pair):
    """Both realisations stand for the same number of end systems."""
    _, cohort, individual = pair
    assert cohort.sessions[0].total_population == POPULATION
    assert individual.sessions[0].total_population == POPULATION
    assert len(cohort.sessions[0].receivers) == 1
    assert len(individual.sessions[0].receivers) == POPULATION
    assert cohort.sessions[0].receivers[0].population == POPULATION


def test_identical_subscription_trajectories(pair):
    """The cohort's trajectory equals every individual member's, exactly."""
    _, cohort, individual = pair
    cohort_history = cohort.sessions[0].receivers[0].level_history
    slot = cohort.sessions[0].spec.slot_duration_s
    assert len(cohort_history) > 2, "run too quiet to be a meaningful check"
    for receiver in individual.sessions[0].receivers:
        assert receiver.level_history == cohort_history
        assert subscription_vector(
            receiver.level_history, slot, DURATION_S
        ) == subscription_vector(cohort_history, slot, DURATION_S)


def test_trajectory_exercises_congestion(pair):
    """The equivalence must cover decreases, not only the upgrade ladder."""
    _, cohort, _ = pair
    receiver = cohort.sessions[0].receivers[0]
    assert receiver.decreases > 0
    assert receiver.increases > 0


def test_identical_per_member_goodput(pair):
    """Per-member goodput matches; the weighted rate scales by N."""
    _, cohort, individual = pair
    model = cohort.sessions[0].models[0]
    member_kbps = model.average_rate_kbps(0.0, DURATION_S)
    assert member_kbps > 0
    for other in individual.sessions[0].models:
        assert other.average_rate_kbps(0.0, DURATION_S) == member_kbps
    assert model.weighted_rate_kbps(0.0, DURATION_S) == pytest.approx(
        POPULATION * member_kbps
    )


def test_identical_sigma_counters(pair):
    """Keys delivered (and every other SIGMA counter) match exactly."""
    protected, cohort, individual = pair
    if not protected:
        pytest.skip("SIGMA counters exist only on the protected variant")
    a, b = cohort.sigma, individual.sigma
    assert a.valid_submissions == b.valid_submissions
    assert a.invalid_submissions == b.invalid_submissions
    assert a.session_joins == b.session_joins
    assert a.revocations == b.revocations
    assert a.valid_submissions > 0
    # The cohort reached those counts with one message per slot, not N.
    cohort_rx = cohort.sessions[0].receivers[0]
    individual_msgs = sum(
        r.sigma.subscription_messages_sent for r in individual.sessions[0].receivers
    )
    assert cohort_rx.sigma.subscription_messages_sent * POPULATION == individual_msgs
    # Every submitted key speaks for the whole population; the router
    # accepts the valid subset and rejects the rest (lossy-slot keys).
    assert cohort_rx.member_keys_submitted == a.valid_submissions + a.invalid_submissions


def test_identical_igmp_counters(pair):
    """Unprotected variant: population-weighted join/leave counts match."""
    protected, cohort, individual = pair
    if protected:
        pytest.skip("IGMP managers exist only on the unprotected variant")
    a, b = cohort.igmp_managers[0], individual.igmp_managers[0]
    assert a.joins_handled == b.joins_handled
    assert a.leaves_handled == b.leaves_handled
    assert a.joins_handled > 0


def test_cohort_state_block_stays_single_row(pair):
    """A homogeneous cohort never splits its columnar state block."""
    _, cohort, _ = pair
    receiver = cohort.sessions[0].receivers[0]
    rows = receiver.state_rows()
    assert len(rows) == 1
    assert rows[0][0] == POPULATION
    assert rows[0][1] == receiver.level


def test_member_population_counting(pair):
    """The multicast service counts end systems, not interfaces."""
    _, cohort, individual = pair
    spec = cohort.sessions[0].spec
    minimal = spec.minimal_group()
    assert cohort.network.multicast.member_population(minimal) == POPULATION
    assert individual.network.multicast.member_population(minimal) == POPULATION
    # Fan-out cost is what differs: one interface versus N.
    assert len(cohort.network.multicast.members(minimal)) == 1
    assert len(individual.network.multicast.members(minimal)) == POPULATION
