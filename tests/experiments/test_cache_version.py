"""Regression tests: result-cache keys are versioned.

The original cache key was the SHA-256 of the spec's canonical JSON alone,
so a refactor that changed behaviour (but not the spec) would happily serve
stale cached results forever.  The key now mixes in the package version and
the cache schema tag; these tests pin that down.
"""

import hashlib
import json

import pytest

import repro
from repro.experiments import ExperimentRunner, PAPER_DEFAULTS, ScenarioSpec, SessionDecl
from repro.experiments.runner import CACHE_SCHEMA_VERSION, RunResult


@pytest.fixture
def spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="cache-test",
        protected=False,
        sessions=(SessionDecl("s", receivers=1),),
        duration_s=3.0,
        config=PAPER_DEFAULTS,
    )


def test_cache_key_includes_package_version(monkeypatch, spec):
    """Bumping the package version must invalidate every cached result."""
    before = ExperimentRunner.cache_key(spec)
    monkeypatch.setattr(repro, "__version__", "999.0.0")
    after = ExperimentRunner.cache_key(spec)
    assert before != after


def test_cache_key_includes_schema_tag(spec):
    """The key is exactly sha256 of the versioned tag + canonical JSON."""
    expected = hashlib.sha256(
        (
            f"{repro.__version__}:{CACHE_SCHEMA_VERSION}:" + spec.to_json()
        ).encode("utf-8")
    ).hexdigest()
    assert ExperimentRunner.cache_key(spec) == expected
    # In particular it is NOT the legacy unversioned key.
    legacy = hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest()
    assert ExperimentRunner.cache_key(spec) != legacy


def test_stale_legacy_cache_entries_are_ignored(tmp_path, spec):
    """A cache file under the old unversioned key must not be served.

    This is the original bug: a pre-refactor cache directory full of results
    keyed only by spec JSON would survive any code change.  The poisoned
    legacy entry below must be treated as a miss and the spec re-executed.
    """
    legacy_key = hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest()
    poisoned = RunResult(
        scenario="stale", seed=-1, protected=True, duration_s=0.0, metrics={}
    )
    (tmp_path / f"{legacy_key}.json").write_text(poisoned.to_json())

    runner = ExperimentRunner(cache_dir=tmp_path)
    result = runner.run_one(spec)
    assert runner.cache_hits == 0
    assert runner.cache_misses == 1
    assert result.scenario == "cache-test"
    assert result.seed == spec.seed


def test_same_version_cache_round_trip(tmp_path, spec):
    """Within one version the cache still hits, byte-identically."""
    runner = ExperimentRunner(cache_dir=tmp_path)
    first = runner.run_one(spec)
    again = ExperimentRunner(cache_dir=tmp_path)
    second = again.run_one(spec)
    assert again.cache_hits == 1
    assert first.to_json() == second.to_json()
    cached = tmp_path / f"{ExperimentRunner.cache_key(spec)}.json"
    assert cached.exists()
    assert json.loads(cached.read_text()) == first.to_dict()
