"""Tests of the parallel experiment runner: caching, grids, aggregation, CLI."""

import json

import pytest

from repro.analysis import aggregate_metrics, flatten_metrics
from repro.experiments import (
    ExperimentRunner,
    PAPER_DEFAULTS,
    RunResult,
    ScenarioSpec,
    SessionDecl,
    execute_spec,
    run_spec_json,
    scenario_spec,
    throughput_vs_sessions_spec,
)

FAST_CONFIG = PAPER_DEFAULTS.with_duration(6.0)


def fast_spec(seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="runner-fast",
        protected=False,
        sessions=(SessionDecl("mc"),),
        duration_s=6.0,
        config=FAST_CONFIG.with_seed(seed),
    )


class TestExecution:
    def test_execute_spec_produces_metrics(self):
        result = execute_spec(fast_spec())
        assert result.scenario == "runner-fast"
        assert result.metrics["multicast"]["mc"]["average_kbps"] > 50.0
        assert result.metrics["multicast"]["mc"]["final_levels"][0] >= 1

    def test_run_result_json_roundtrip(self):
        result = execute_spec(fast_spec())
        assert RunResult.from_json(result.to_json()).to_json() == result.to_json()

    def test_run_spec_json_worker_contract(self):
        payload = run_spec_json(fast_spec().to_json())
        document = json.loads(payload)
        assert document["scenario"] == "runner-fast"
        assert document["seed"] == 0

    def test_record_series_included_when_requested(self):
        from dataclasses import replace

        result = execute_spec(replace(fast_spec(), record_series=True))
        series = result.metrics["multicast"]["mc"]["series"]
        assert series and all(len(point) == 2 for point in series)


class TestRunner:
    def test_seed_sweep_orders_results_by_seed(self):
        results = ExperimentRunner(jobs=1).run_seed_sweep(fast_spec(), (0, 1, 2))
        assert [result.seed for result in results] == [0, 1, 2]

    def test_grid_crosses_overrides_and_seeds(self):
        results = ExperimentRunner(jobs=1).run_grid(
            fast_spec(),
            seeds=(0, 1),
            overrides=[{"duration_s": 5.0}, {"duration_s": 6.0}],
        )
        assert [(round(r.duration_s, 1), r.seed) for r in results] == [
            (5.0, 0),
            (5.0, 1),
            (6.0, 0),
            (6.0, 1),
        ]

    def test_cache_hit_skips_execution(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        first = runner.run_one(fast_spec())
        assert (runner.cache_hits, runner.cache_misses) == (0, 1)

        again = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        second = again.run_one(fast_spec())
        assert (again.cache_hits, again.cache_misses) == (1, 0)
        assert second.to_json() == first.to_json()

    def test_cache_key_depends_on_seed(self):
        assert ExperimentRunner.cache_key(fast_spec(0)) != ExperimentRunner.cache_key(
            fast_spec(1)
        )

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ExperimentRunner(jobs=0)


class TestFigure8OnRunner:
    def test_throughput_sweep_uses_runner_and_caches(self, tmp_path):
        from repro.experiments import run_throughput_vs_sessions

        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        first = run_throughput_vs_sessions(
            protected=False,
            session_counts=(1, 2),
            config=FAST_CONFIG,
            duration_s=6.0,
            runner=runner,
        )
        assert set(first.average_kbps) == {1, 2}
        assert runner.cache_misses == 2

        cached_runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        second = run_throughput_vs_sessions(
            protected=False,
            session_counts=(1, 2),
            config=FAST_CONFIG,
            duration_s=6.0,
            runner=cached_runner,
        )
        assert cached_runner.cache_hits == 2
        assert second.average_kbps == first.average_kbps
        assert second.individual_kbps == first.individual_kbps


class TestAggregation:
    def test_flatten_skips_non_numeric_leaves(self):
        flat = flatten_metrics(
            {"a": {"b": [1.0, 2.0]}, "label": "text", "none": None, "flag": True}
        )
        assert flat == {"a.b[0]": 1.0, "a.b[1]": 2.0}

    def test_aggregate_mean_min_max(self):
        aggregate = aggregate_metrics([{"x": 1.0}, {"x": 3.0}])
        assert aggregate["x"] == {"mean": 2.0, "min": 1.0, "max": 3.0, "count": 2}

    def test_aggregate_over_seed_sweep(self):
        results = ExperimentRunner(jobs=1).run_seed_sweep(fast_spec(), (0, 1))
        aggregate = aggregate_metrics([result.metrics for result in results])
        key = "multicast.mc.average_kbps"
        assert aggregate[key]["count"] == 2
        assert aggregate[key]["min"] <= aggregate[key]["mean"] <= aggregate[key]["max"]


class TestCli:
    def test_list_command(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure8-throughput" in out
        assert "parking-lot-attack" in out

    def test_topologies_command(self, capsys):
        from repro.__main__ import main

        assert main(["topologies"]) == 0
        assert "binary-tree" in capsys.readouterr().out

    def test_run_command_writes_results(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            [
                "run",
                "figure8-throughput",
                "--seeds",
                "2",
                "--duration",
                "5",
                "--param",
                "count=1",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg goodput" in out
        runs = json.loads((tmp_path / "figure8-throughput-runs.json").read_text())
        assert [run["seed"] for run in runs] == [0, 1]
        aggregate = json.loads(
            (tmp_path / "figure8-throughput-aggregate.json").read_text()
        )
        assert "multicast.mc1.average_kbps" in aggregate


class TestCacheHardening:
    """Torn/corrupt/concurrent cache entries must never poison a run."""

    def _cache_file(self, tmp_path, spec):
        return tmp_path / f"{ExperimentRunner.cache_key(spec)}.json"

    def test_truncated_cache_entry_is_a_miss_and_is_repaired(self, tmp_path):
        spec = fast_spec()
        reference = ExperimentRunner(jobs=1, cache_dir=tmp_path).run_one(spec)
        path = self._cache_file(tmp_path, spec)
        valid = path.read_text()
        path.write_text(valid[: len(valid) // 2])  # torn by a crash mid-write

        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        result = runner.run_one(spec)
        assert (runner.cache_hits, runner.cache_misses) == (0, 1)
        assert result.to_json() == reference.to_json()
        assert path.read_text() == valid  # entry atomically repaired

    def test_garbage_cache_entry_is_a_miss(self, tmp_path):
        spec = fast_spec()
        path = self._cache_file(tmp_path, spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json at all {{{")

        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        result = runner.run_one(spec)
        assert (runner.cache_hits, runner.cache_misses) == (0, 1)
        assert RunResult.from_json(path.read_text()).to_json() == result.to_json()

    def test_wrong_schema_cache_entry_is_a_miss(self, tmp_path):
        spec = fast_spec()
        path = self._cache_file(tmp_path, spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"scenario": "x"}))  # parses, wrong shape

        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        runner.run_one(spec)
        assert (runner.cache_hits, runner.cache_misses) == (0, 1)

    def test_crash_mid_write_leaves_no_torn_entry(self, tmp_path, monkeypatch):
        """A crash between tmp write and replace leaves no (partial) entry."""
        import repro.experiments.runner as runner_module

        spec = fast_spec()
        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)

        def crash(src, dst):
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr(runner_module.os, "replace", crash)
        with pytest.raises(RuntimeError, match="simulated crash"):
            runner.run_one(spec)
        assert not self._cache_file(tmp_path, spec).exists()
        assert list(tmp_path.glob("*.tmp")) == []  # tmp sibling cleaned up

        monkeypatch.undo()
        fresh = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        result = fresh.run_one(spec)
        assert (fresh.cache_hits, fresh.cache_misses) == (0, 1)
        assert self._cache_file(tmp_path, spec).exists()
        assert result.to_json()

    def test_concurrent_runners_share_one_cache_file(self, tmp_path):
        """Two runners racing one cache_dir: one valid entry, identical bytes."""
        from concurrent.futures import ThreadPoolExecutor

        spec = fast_spec()

        def race(_):
            return ExperimentRunner(jobs=1, cache_dir=tmp_path).run_one(spec)

        with ThreadPoolExecutor(max_workers=2) as pool:
            first, second = list(pool.map(race, range(2)))

        assert first.to_json() == second.to_json()
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        assert list(tmp_path.glob("*.tmp")) == []
        assert RunResult.from_json(entries[0].read_text()).to_json() == first.to_json()


class TestPendingDeduplication:
    """Identical pending specs in one batch run once and fan the result out."""

    def test_duplicates_run_once_serially(self, monkeypatch):
        import repro.experiments.runner as runner_module

        calls = []
        original = runner_module.run_spec_json

        def counting(payload):
            calls.append(payload)
            return original(payload)

        monkeypatch.setattr(runner_module, "run_spec_json", counting)
        runner = ExperimentRunner(jobs=1)
        results = runner.run([fast_spec(), fast_spec(), fast_spec(1)])
        assert len(results) == 3
        assert len(calls) == 2  # the duplicate pair simulated once
        assert (runner.cache_hits, runner.cache_misses) == (0, 2)
        assert results[0].to_json() == results[1].to_json()
        assert results[0].seed != results[2].seed

    def test_duplicates_write_cache_once(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        results = runner.run([fast_spec(), fast_spec()])
        assert (runner.cache_hits, runner.cache_misses) == (0, 1)
        assert len(results) == 2
        assert results[0].to_json() == results[1].to_json()
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_duplicates_on_the_pool(self):
        runner = ExperimentRunner(jobs=2)
        results = runner.run([fast_spec(), fast_spec()])
        assert runner.cache_misses == 1
        assert results[0].to_json() == results[1].to_json()
