"""Tests of the declarative scenario spec layer and the named registry."""

import pytest

from repro.experiments import (
    PAPER_DEFAULTS,
    CbrDecl,
    ChurnProcess,
    CohortDecl,
    Scenario,
    ScenarioSpec,
    SessionDecl,
    TcpDecl,
    inflated_subscription_spec,
    list_scenarios,
    scenario_entry,
    scenario_spec,
    throughput_vs_sessions_spec,
)


def _rich_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="roundtrip",
        protected=True,
        topology="parking-lot",
        topology_params={"hops": 2, "bottleneck_bandwidth_bps": 500_000.0},
        sessions=(
            SessionDecl(
                "mc",
                receivers=2,
                misbehaving=(1,),
                attack_start_s=10.0,
                receiver_start_times=(0.0, 5.0),
                receiver_access_delays=(None, 0.02),
                receiver_routers=("r1", None),
            ),
        ),
        tcp=(TcpDecl("t1", start_s=1.0, receiver_router="r2"),),
        cbr=(CbrDecl("burst", rate_bps=50_000.0, active_window=(5.0, 9.0)),),
        duration_s=20.0,
        config=PAPER_DEFAULTS.with_seed(3),
    )


class TestSerialisation:
    def test_json_roundtrip_is_identity(self):
        spec = _rich_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_canonical_json_is_stable(self):
        spec = _rich_spec()
        assert spec.to_json() == ScenarioSpec.from_json(spec.to_json()).to_json()

    def test_with_seed_only_changes_config_seed(self):
        spec = _rich_spec()
        reseeded = spec.with_seed(9)
        assert reseeded.config.seed == 9
        assert reseeded.with_seed(3) == spec

    def test_effective_duration_falls_back_to_config(self):
        spec = ScenarioSpec(name="d", protected=False, sessions=(SessionDecl("a"),))
        assert spec.effective_duration_s == PAPER_DEFAULTS.duration_s
        assert spec.with_duration(7.0).effective_duration_s == 7.0


class TestValidation:
    def test_misbehaving_index_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            SessionDecl("bad", receivers=1, misbehaving=(2,))

    def test_per_receiver_lists_must_match_count(self):
        with pytest.raises(ValueError, match="one entry per receiver"):
            SessionDecl("bad", receivers=2, receiver_start_times=(0.0,))


class TestRegistry:
    def test_paper_figures_registered(self):
        names = {entry.name for entry in list_scenarios()}
        assert {
            "figure1-attack",
            "figure7-defence",
            "figure8-throughput",
            "figure8-responsiveness",
            "figure8-convergence",
            "figure9-measured-overhead",
            "parking-lot-attack",
            "star-fanout",
            "tree-convergence",
        } <= names

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_entry("figure42")

    def test_builders_accept_parameters(self):
        spec = scenario_spec("figure8-throughput", count=6, cross_traffic=True)
        assert len(spec.sessions) == 6
        assert len(spec.tcp) == 6
        assert spec.expected_sessions == 12

    def test_registered_specs_serialise(self):
        for entry in list_scenarios():
            spec = entry.build()
            assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestInterpreter:
    def test_from_spec_builds_figure1_layout(self):
        spec = inflated_subscription_spec(protected=False, duration_s=10.0)
        scenario = Scenario.from_spec(spec)
        assert [s.spec.session_id for s in scenario.sessions] == ["F1", "F2"]
        assert [c.sender.name for c in scenario.tcp_connections] == ["T1", "T2"]
        assert scenario.network.spec.kind == "dumbbell"
        # 4 competing sessions at the 250 Kbps fair share -> 1 Mbps bottleneck.
        assert scenario.network.bottleneck.bandwidth_bps == pytest.approx(1_000_000.0)

    def test_from_spec_matches_imperative_builder(self):
        config = PAPER_DEFAULTS.with_duration(8.0)
        spec = throughput_vs_sessions_spec(
            protected=False, count=2, config=config, duration_s=8.0
        )
        declarative = Scenario.from_spec(spec)
        declarative.run(8.0)

        imperative = Scenario(config, protected=False, expected_sessions=2)
        for i in range(2):
            imperative.add_multicast_session(f"mc{i + 1}")
        imperative.run(8.0)

        assert declarative.multicast_average_kbps(2.0, 8.0) == pytest.approx(
            imperative.multicast_average_kbps(2.0, 8.0)
        )

    def test_dumbbell_topology_params_reach_the_network(self):
        spec = ScenarioSpec(
            name="dumbbell-params",
            protected=False,
            topology="dumbbell",
            topology_params={"seed": 42, "bottleneck_delay_s": 0.005},
            sessions=(SessionDecl("mc"),),
            duration_s=5.0,
        )
        scenario = Scenario.from_spec(spec)
        assert scenario.network.random.seed == 42
        assert scenario.network.bottleneck.delay_s == pytest.approx(0.005)
        # The parameterised dumbbell still exposes the DumbbellNetwork surface.
        assert scenario.network.right is scenario.network.edge_router

    def test_unknown_dumbbell_parameter_rejected(self):
        spec = ScenarioSpec(
            name="dumbbell-bad",
            protected=False,
            topology="dumbbell",
            topology_params={"hops": 3},
            sessions=(SessionDecl("mc"),),
        )
        with pytest.raises(TypeError, match="unknown dumbbell parameter"):
            Scenario.from_spec(spec)

    def test_protected_multi_edge_topology_gets_one_agent_per_edge(self):
        spec = scenario_spec("star-fanout", duration_s=5.0, arms=3)
        scenario = Scenario.from_spec(spec)
        assert len(scenario.sigma_agents) == 3
        agent_routers = {agent.router.name for agent in scenario.sigma_agents}
        assert agent_routers == {"arm1", "arm2", "arm3"}
        assert scenario.sigma is scenario.sigma_agents[0]

    def test_unprotected_multi_edge_topology_gets_igmp_per_edge(self):
        spec = scenario_spec("parking-lot-attack", protected=False, duration_s=5.0)
        scenario = Scenario.from_spec(spec)
        assert len(scenario.igmp_managers) == 3
        for router in scenario.network.receiver_edge_routers:
            assert router.group_manager is not None


class TestShardsField:
    def test_shards_omitted_from_canonical_json_when_unset(self):
        """Legacy spec hashes and golden digests must stay byte-identical."""
        spec = _rich_spec()
        assert spec.shards is None
        assert '"shards"' not in spec.to_json()
        assert "shards" not in spec.to_dict()

    def test_shards_roundtrip_when_set(self):
        spec = ScenarioSpec(
            name="sharded",
            protected=True,
            topology="sharded-dumbbell",
            topology_params={"regions": 2, "edges_per_region": 2},
            shards=2,
            sessions=(
                SessionDecl(
                    "mc",
                    receivers=0,
                    population=(CohortDecl(8, model="vector", cohorts=2),),
                ),
            ),
        )
        assert spec.to_dict()["shards"] == 2
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_shards_below_two_rejected(self):
        with pytest.raises(ValueError, match="shards must be >= 2"):
            ScenarioSpec(
                name="bad",
                protected=False,
                shards=1,
                sessions=(SessionDecl("mc"),),
            )


class TestVectorChurnRejection:
    """model="vector" blocks cannot churn: the columnar rows are fixed-size.

    Regression tests for the spec-construction guard — a churned vector
    block used to slip through to the scenario interpreter and fail deep
    inside the population engine.
    """

    def test_vector_churn_rejected_at_construction(self):
        with pytest.raises(ValueError, match="single aggregated cohort"):
            CohortDecl(
                10,
                model="vector",
                churn=ChurnProcess(burst=((1.0, 5),)),
            )

    def test_multi_cohort_churn_rejected_at_construction(self):
        with pytest.raises(ValueError, match="single aggregated cohort"):
            CohortDecl(
                10,
                cohorts=2,
                churn=ChurnProcess(burst=((1.0, 5),)),
            )

    def test_vector_churn_rejected_via_from_dict(self):
        payload = {
            "count": 10,
            "model": "vector",
            "churn": ChurnProcess(burst=((1.0, 5),)).to_dict(),
        }
        with pytest.raises(ValueError, match="single aggregated cohort"):
            CohortDecl.from_dict(payload)
