"""Tests of the experiment configuration, scenario builder and figure modules.

Experiment smoke tests use short durations; the full paper-scale runs live in
the benchmark harness.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    PAPER_DEFAULTS,
    Scenario,
    figure9_model,
    run_group_count_sweep,
    run_measured_overhead,
    run_slot_duration_sweep,
)


class TestExperimentConfig:
    def test_paper_defaults_match_section_5_1(self):
        cfg = PAPER_DEFAULTS
        assert cfg.fair_share_bps == 250_000.0
        assert cfg.group_count == 10
        assert cfg.base_rate_bps == 100_000.0
        assert cfg.rate_factor == 1.5
        assert cfg.packet_bytes == 576
        assert cfg.flid_dl_slot_s == 0.5
        assert cfg.flid_ds_slot_s == 0.25
        assert cfg.duration_s == 200.0

    def test_dumbbell_scales_with_sessions(self):
        assert PAPER_DEFAULTS.dumbbell(4).bottleneck_bandwidth_bps == pytest.approx(1_000_000.0)
        assert PAPER_DEFAULTS.dumbbell(1).bottleneck_bandwidth_bps == pytest.approx(250_000.0)

    def test_dumbbell_explicit_bottleneck(self):
        cfg = PAPER_DEFAULTS.dumbbell(3, bottleneck_bps=2_000_000.0)
        assert cfg.bottleneck_bandwidth_bps == 2_000_000.0

    def test_session_spec_slot_duration_depends_on_protection(self):
        assert PAPER_DEFAULTS.session_spec("a", protected=False).slot_duration_s == 0.5
        assert PAPER_DEFAULTS.session_spec("a", protected=True).slot_duration_s == 0.25

    def test_with_duration_and_seed(self):
        cfg = PAPER_DEFAULTS.with_duration(30.0).with_seed(7)
        assert cfg.duration_s == 30.0
        assert cfg.seed == 7
        assert PAPER_DEFAULTS.duration_s == 200.0  # frozen original untouched


class TestScenarioBuilder:
    def test_unprotected_scenario_installs_igmp(self):
        scenario = Scenario(PAPER_DEFAULTS, protected=False, expected_sessions=1)
        assert scenario.sigma is None
        assert scenario.network.right.group_manager is not None

    def test_protected_scenario_installs_sigma(self):
        scenario = Scenario(PAPER_DEFAULTS, protected=True, expected_sessions=1)
        assert scenario.sigma is not None
        assert scenario.network.right.group_manager is scenario.sigma

    def test_add_multicast_session_creates_sender_and_receivers(self):
        scenario = Scenario(PAPER_DEFAULTS, protected=False, expected_sessions=1)
        session = scenario.add_multicast_session(receivers=3)
        assert len(session.receivers) == 3
        assert session.spec.group_count == 10

    def test_sessions_get_distinct_group_addresses(self):
        scenario = Scenario(PAPER_DEFAULTS, protected=False, expected_sessions=2)
        first = scenario.add_multicast_session()
        second = scenario.add_multicast_session()
        overlap = set(map(int, first.spec.group_addresses)) & set(
            map(int, second.spec.group_addresses)
        )
        assert not overlap

    def test_short_run_produces_throughput(self):
        config = PAPER_DEFAULTS.with_duration(10.0)
        scenario = Scenario(config, protected=False, expected_sessions=1)
        scenario.add_multicast_session()
        scenario.run()
        rates = scenario.multicast_average_kbps(2.0, 10.0)
        assert rates[0] > 50.0

    def test_tcp_and_cbr_can_join_the_mix(self):
        config = PAPER_DEFAULTS.with_duration(8.0)
        scenario = Scenario(config, protected=False, expected_sessions=2)
        scenario.add_multicast_session()
        scenario.add_tcp_connection()
        scenario.add_onoff_cbr(rate_bps=50_000.0)
        scenario.run()
        assert scenario.tcp_average_kbps(2.0, 8.0)[0] > 0.0


class TestFigure9:
    def test_group_sweep_covers_paper_range(self):
        result = run_group_count_sweep()
        assert [p.parameter for p in result.points][0] == 2.0
        assert result.points[-1].parameter == 20.0

    def test_overhead_within_paper_bounds(self):
        groups = run_group_count_sweep()
        slots = run_slot_duration_sweep()
        assert groups.max_delta_percent < 1.0
        assert groups.max_sigma_percent < 0.8
        assert slots.max_delta_percent < 1.0
        assert slots.max_sigma_percent < 0.8

    def test_sigma_overhead_falls_with_longer_slots(self):
        result = run_slot_duration_sweep(durations_s=(0.2, 1.0))
        assert result.points[0].sigma_percent > result.points[-1].sigma_percent

    def test_figure9_model_parameters(self):
        model = figure9_model()
        assert model.data_bits_per_packet == 4000
        assert model.cumulative_rate_bps == 4_000_000.0
        assert model.key_bits == 16

    def test_measured_overhead_close_to_model(self):
        result = run_measured_overhead(duration_s=6.0)
        assert result.data_bits > 0
        # The measured DELTA overhead is a per-packet constant, so it should
        # be within a factor of two of the closed-form model even on a short run.
        assert 0.3 < result.delta_within_factor < 3.0
        assert result.sigma_percent < 2.0
