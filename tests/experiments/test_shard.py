"""Region-sharded execution: planner validation, determinism, merge.

The contract under test (``docs/determinism.md``, ``docs/scale.md``):

* :func:`repro.experiments.plan_shards` rejects every spec whose physics
  could couple regions (cross traffic, global placement cursors,
  whole-session accumulators) with actionable errors;
* the vector-row re-split is exact — each region's sub-blocks reproduce the
  original ``split_counts`` rows on the original edge routers;
* running the regions serially or on the process pool yields byte-identical
  merged results, and those results match the *unsharded* run of the same
  spec metric for metric (the boundary summary is the one sharding-only
  block);
* merged documents cache like any other result.
"""

from dataclasses import replace

import json

import pytest

from repro.adversary import AttackSpec
from repro.experiments import (
    PAPER_DEFAULTS,
    CbrDecl,
    CohortDecl,
    ExperimentRunner,
    ScenarioSpec,
    SessionDecl,
    execute_spec,
    plan_shards,
)
from repro.experiments.shard import (
    merge_boundary_events,
    merge_region_results,
    region_payloads,
    run_region_json,
)
from repro.multicast_cc.population import split_counts

DURATION_S = 10.0
ATTACK_START_S = 6.0
AUDIENCE = 200
AUDIENCE_COHORTS = 8
ATTACKERS = 40
ATTACKER_COHORTS = 4


def sharded_spec(**overrides) -> ScenarioSpec:
    """A small 2-region sharded scenario with an adversarial cohort."""
    fields = {
        "name": "shard-test",
        "protected": True,
        "topology": "sharded-dumbbell",
        "topology_params": {"regions": 2, "edges_per_region": 2},
        "shards": 2,
        "duration_s": DURATION_S,
        "sessions": (
            SessionDecl(
                "mc",
                receivers=0,
                population=(
                    CohortDecl(AUDIENCE, model="vector", cohorts=AUDIENCE_COHORTS),
                    CohortDecl(
                        ATTACKERS,
                        model="vector",
                        cohorts=ATTACKER_COHORTS,
                        attack=AttackSpec("inflated-join", start_s=ATTACK_START_S),
                    ),
                ),
            ),
        ),
        "config": PAPER_DEFAULTS,
    }
    fields.update(overrides)
    return ScenarioSpec(**fields)


@pytest.fixture(scope="module")
def spec() -> ScenarioSpec:
    return sharded_spec()


@pytest.fixture(scope="module")
def serial_result(spec):
    return ExperimentRunner(jobs=1).run_one(spec)


# ----------------------------------------------------------------------
# planner validation
# ----------------------------------------------------------------------
class TestPlannerValidation:
    def test_rejects_spec_without_shards(self, spec):
        with pytest.raises(ValueError, match="no shards field"):
            plan_shards(replace(spec, shards=None))

    def test_rejects_default_dumbbell(self):
        plain = ScenarioSpec(
            name="x",
            protected=False,
            shards=2,
            sessions=(SessionDecl("mc"),),
        )
        with pytest.raises(ValueError, match="no topology regions"):
            plan_shards(plain)

    def test_rejects_region_count_mismatch(self, spec):
        with pytest.raises(ValueError, match="annotates 2 regions"):
            plan_shards(replace(spec, shards=3))

    def test_rejects_reserved_region_param(self, spec):
        params = {**spec.topology_params, "region": 1}
        with pytest.raises(ValueError, match="reserved for region workers"):
            plan_shards(replace(spec, topology_params=params))

    def test_rejects_cross_traffic(self, spec):
        with pytest.raises(ValueError, match="cross traffic couples regions"):
            plan_shards(replace(spec, cbr=(CbrDecl(rate_bps=1e5),)))

    def test_rejects_record_series(self, spec):
        with pytest.raises(ValueError, match="record_series"):
            plan_shards(replace(spec, record_series=True))

    def test_rejects_individual_receivers(self, spec):
        sessions = (SessionDecl("mc", receivers=2),)
        with pytest.raises(ValueError, match="individual receivers"):
            plan_shards(replace(spec, sessions=sessions))

    def test_rejects_overhead_tracking(self, spec):
        decl = spec.sessions[0]
        sessions = (replace(decl, track_overhead=True),)
        with pytest.raises(ValueError, match="whole-session accumulator"):
            plan_shards(replace(spec, sessions=sessions))

    def test_rejects_unpinned_non_vector_blocks(self, spec):
        sessions = (
            SessionDecl("mc", receivers=0, population=(CohortDecl(10),)),
        )
        with pytest.raises(ValueError, match="topology-global cursor"):
            plan_shards(replace(spec, sessions=sessions))

    def test_accepts_pinned_cohort_blocks(self, spec):
        sessions = (
            SessionDecl(
                "mc",
                receivers=0,
                population=(
                    CohortDecl(10, model="vector", cohorts=2),
                    CohortDecl(5, router="edge2-1"),
                ),
            ),
        )
        plan = plan_shards(replace(spec, sessions=sessions))
        pinned_home = plan.regions[1]
        assert any(
            block.router == "edge2-1"
            for decl in pinned_home.spec.sessions
            for block in decl.population
        )


# ----------------------------------------------------------------------
# the exact row re-split
# ----------------------------------------------------------------------
class TestPlanGeometry:
    def test_row_split_is_exact(self, spec):
        """Region sub-blocks re-split to the original rows on the same edges."""
        plan = plan_shards(spec)
        edges = plan.topology.receiver_routers
        for b_index, block in enumerate(spec.sessions[0].population):
            rows = split_counts(block.count, block.cohorts or 1)
            expected = {}
            for row, members in enumerate(rows):
                region = plan.topology.region_of(edges[row % len(edges)])
                expected.setdefault(region, []).append(members)
            for region_plan in plan.regions:
                (session,) = region_plan.sessions
                local = session.block_indices.index(b_index)
                sub = region_plan.spec.sessions[0].population[local]
                share = expected[region_plan.region - 1]
                assert sub.count == sum(share)
                assert split_counts(sub.count, sub.cohorts or 1) == share

    def test_populations_partition_exactly(self, spec):
        plan = plan_shards(spec)
        totals = [
            sum(
                block.count
                for decl in region.spec.sessions
                for block in decl.population
            )
            for region in plan.regions
        ]
        assert sum(totals) == AUDIENCE + ATTACKERS

    def test_region_specs_are_standalone(self, spec):
        plan = plan_shards(spec)
        for region_plan in plan.regions:
            assert region_plan.spec.shards is None
            assert region_plan.spec.topology_params["region"] == region_plan.region

    def test_onsets_come_from_the_original_spec(self, spec):
        plan = plan_shards(spec)
        assert plan.onsets == {
            "global": ATTACK_START_S,
            "sessions": {"mc": ATTACK_START_S},
        }


# ----------------------------------------------------------------------
# determinism: serial == pool == unsharded
# ----------------------------------------------------------------------
class TestShardedDeterminism:
    def test_serial_equals_pool_byte_identical(self, spec, serial_result):
        pooled = ExperimentRunner(jobs=2).run_one(spec)
        assert pooled.to_json() == serial_result.to_json()

    def test_sharded_matches_unsharded_run(self, spec, serial_result):
        """Metric for metric, the merge reproduces the unsharded scenario.

        The boundary summary is the one sharding-only block; everything
        else — per-receiver goodput, levels, sigma counters, the full
        protection document — must match the single-process run exactly.
        """
        full = execute_spec(replace(spec, shards=None))
        sharded_metrics = dict(serial_result.metrics)
        boundary = sharded_metrics.pop("boundary")
        assert boundary["events"] > 0
        assert json.dumps(sharded_metrics, sort_keys=True) == json.dumps(
            full.metrics, sort_keys=True
        )
        assert serial_result.scenario == full.scenario
        assert serial_result.seed == full.seed
        assert serial_result.duration_s == full.duration_s

    def test_merged_population_and_protection(self, serial_result):
        session = serial_result.metrics["multicast"]["mc"]
        assert session["population"] == AUDIENCE + ATTACKERS
        protection = serial_result.metrics["protection"]
        attackers = protection["sessions"]["mc"]["attackers"]
        assert len(attackers) == ATTACKER_COHORTS
        assert protection["honest_baseline_kbps"] > 0.0

    def test_boundary_summary_shape(self, spec, serial_result):
        boundary = serial_result.metrics["boundary"]
        assert boundary["regions"] == 2
        assert boundary["slot_s"] == spec.config.flid_ds_slot_s
        assert boundary["events"] == boundary["joins"] + boundary["leaves"]
        assert set(boundary["per_region"]) == {"1", "2"}
        assert sum(boundary["per_region"].values()) == boundary["events"]
        assert len(boundary["digest"]) == 64

    def test_sharded_results_cache(self, spec, tmp_path):
        first = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        second = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        a = first.run_one(spec)
        b = second.run_one(spec)
        assert (first.cache_hits, first.cache_misses) == (0, 1)
        assert (second.cache_hits, second.cache_misses) == (1, 0)
        assert a.to_json() == b.to_json()


# ----------------------------------------------------------------------
# merge error paths
# ----------------------------------------------------------------------
class TestMergeValidation:
    @pytest.fixture(scope="class")
    def documents(self, spec):
        plan = plan_shards(spec)
        return plan, [
            json.loads(run_region_json(payload))
            for payload in region_payloads(plan)
        ]

    def test_rejects_wrong_document_count(self, documents):
        plan, docs = documents
        with pytest.raises(ValueError, match="expected 2 region documents"):
            merge_region_results(plan, docs[:1])

    def test_rejects_out_of_order_documents(self, documents):
        plan, docs = documents
        with pytest.raises(ValueError, match="out of order"):
            merge_region_results(plan, list(reversed(docs)))

    def test_merge_drops_wall_time(self, documents):
        """wall_s is the one nondeterministic field; it must not leak."""
        plan, docs = documents
        assert all("wall_s" in doc for doc in docs)
        merged = merge_region_results(plan, docs)
        assert "wall_s" not in json.dumps(merged.metrics)

    def test_boundary_digest_is_order_stable(self, documents):
        plan, docs = documents
        first = merge_boundary_events(plan, docs)
        second = merge_boundary_events(plan, [dict(doc) for doc in docs])
        assert first == second
