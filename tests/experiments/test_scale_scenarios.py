"""The scale scenarios and the population field of the scenario spec."""

import json
import time

import pytest

from repro.experiments import (
    CohortDecl,
    ExperimentRunner,
    PAPER_DEFAULTS,
    ScenarioSpec,
    SessionDecl,
    attack_churn_flash_crowd_spec,
    attack_inflated_100k_spec,
    run_scale_protection_sweep,
    scale_dumbbell_1m_spec,
    scale_dumbbell_spec,
    scale_overhead_spec,
    scale_protection_spec,
    scenario_spec,
)


def test_population_spec_round_trip():
    """population survives the canonical JSON round trip."""
    spec = ScenarioSpec(
        name="pop",
        protected=True,
        sessions=(
            SessionDecl(
                "s",
                receivers=1,
                population=(
                    CohortDecl(500),
                    CohortDecl(5, router="right", start_s=2.0, model="individual"),
                ),
            ),
        ),
    )
    rebuilt = ScenarioSpec.from_json(spec.to_json())
    assert rebuilt == spec
    assert rebuilt.sessions[0].total_population() == 506


def test_legacy_specs_serialise_without_population_key():
    """Cohort-free specs keep their historical canonical JSON (cache/golden)."""
    spec = ScenarioSpec(
        name="legacy", protected=False, sessions=(SessionDecl("s", receivers=2),)
    )
    payload = json.loads(spec.to_json())
    assert "population" not in payload["sessions"][0]


def test_population_validation():
    with pytest.raises(ValueError):
        SessionDecl("s", receivers=0)  # no receivers at all
    with pytest.raises(ValueError):
        CohortDecl(0)
    with pytest.raises(ValueError):
        CohortDecl(10, model="columnar")  # unknown model name
    # A cohort-only session is fine.
    decl = SessionDecl("s", receivers=0, population=(CohortDecl(10),))
    assert decl.total_population() == 10


def test_scale_scenarios_registered():
    for name in (
        "scale-dumbbell-10k",
        "scale-overhead-100k",
        "attack-inflated-100k",
        "attack-churn-flash-crowd",
        "scale-protection",
        "scale-dumbbell-1m",
    ):
        assert scenario_spec(name).name == name


def test_cohorts_field_round_trip_and_legacy_omission():
    """cohorts survives the JSON round trip; None stays off the wire."""
    spec = scale_dumbbell_spec(receivers=100, cohorts=4, duration_s=12.0)
    rebuilt = type(spec).from_json(spec.to_json())
    assert rebuilt == spec
    assert rebuilt.sessions[0].population[0].cohorts == 4
    legacy = scale_dumbbell_spec(receivers=100, duration_s=12.0)
    payload = json.loads(legacy.to_json())
    assert "cohorts" not in payload["sessions"][0]["population"][0]
    # The canonical hash of a cohorts-free spec is therefore unchanged.
    assert legacy.to_json() == scale_dumbbell_spec(
        receivers=100, cohorts=None, duration_s=12.0
    ).to_json()


def test_scale_dumbbell_1m_reduced_run():
    """A reduced 1k-receiver variant of the 1M scenario runs end to end."""
    spec = scale_dumbbell_1m_spec(
        receivers=1_000,
        cohorts=16,
        attackers=100,
        attacker_cohorts=8,
        edges=4,
        duration_s=12.0,
        attack_start_s=4.0,
    )
    result = ExperimentRunner().run_one(spec)
    audience = result.metrics["multicast"]["audience"]
    assert audience["population"] == 1_000
    # One vector receiver object per edge, however many cohort rows.
    assert len(audience["receiver_population"]) == 4
    assert sum(audience["receiver_population"]) == 1_000
    protection = result.metrics["protection"]
    entries = protection["sessions"]["attackers"]["attackers"]
    assert sum(e["population"] for e in entries.values()) == 100
    for entry in entries.values():
        assert entry["excess_kbps"] < 0.0  # contained per member


def test_scale_dumbbell_1m_full_population_wall_clock_budget():
    """The full 1,000,000-receiver scenario fits far inside the 300 s budget.

    The acceptance bound is 300 s on the reference 1-CPU container; asserting
    a fifth of that leaves generous slack while failing loudly if per-row
    Python cost ever creeps back into the columnar per-slot path.
    """
    spec = scale_dumbbell_1m_spec()
    assert spec.sessions[0].total_population() == 1_000_000
    assert spec.sessions[1].total_population() == 10_000
    start = time.perf_counter()
    result = ExperimentRunner().run_one(spec)
    wall_s = time.perf_counter() - start
    assert wall_s < 60.0
    audience = result.metrics["multicast"]["audience"]
    assert audience["population"] == 1_000_000
    assert len(audience["receiver_population"]) == 32  # one object per edge
    protection = result.metrics["protection"]
    entries = protection["sessions"]["attackers"]["attackers"]
    assert sum(e["population"] for e in entries.values()) == 10_000
    for entry in entries.values():
        assert entry["excess_kbps"] < 0.0
        assert entry["containment_s"] is not None


def test_scale_dumbbell_reduced_run():
    """A reduced 500-receiver variant runs end to end with weighted metrics."""
    spec = scale_dumbbell_spec(receivers=500, duration_s=12.0, attack_start_s=4.0)
    result = ExperimentRunner().run_one(spec)
    audience = result.metrics["multicast"]["audience"]
    assert audience["population"] == 500
    assert audience["receiver_population"] == [500]
    assert audience["weighted_average_kbps"] == audience["receiver_kbps"][0]
    attacker = result.metrics["multicast"]["attacker"]
    assert "population" not in attacker  # individual sessions stay legacy-shaped
    assert "protection" in result.metrics


def test_scale_overhead_100k_wall_clock_budget():
    """The 100k-receiver overhead scenario fits far inside the 5-minute budget.

    The acceptance bound is 300 s on the reference 1-CPU container; asserting
    a tenth of that leaves an order of magnitude of slack while still failing
    loudly if per-receiver cost ever creeps back into the hot path.
    """
    spec = scale_overhead_spec()  # the full 100,000 receivers, 30 s
    assert spec.sessions[0].total_population() == 100_000
    start = time.perf_counter()
    result = ExperimentRunner().run_one(spec)
    wall_s = time.perf_counter() - start
    assert wall_s < 30.0
    audience = result.metrics["multicast"]["audience"]
    assert audience["population"] == 100_000
    # Figure 9's claim at scale: overhead stays at its per-session value.
    assert 0.0 < audience["overhead_percent"]["delta"] < 2.0
    assert 0.0 < audience["overhead_percent"]["sigma"] < 2.0


def test_attack_inflated_100k_wall_clock_budget():
    """The 100k-audience attack scenario fits far inside the 60 s budget.

    The acceptance bound is 60 s wall on the reference 1-CPU container;
    asserting half of that leaves generous slack while failing loudly if
    per-member cost creeps back into the adversarial-cohort hot path.
    """
    spec = attack_inflated_100k_spec()  # full: 100,000 honest + 100 attackers
    assert spec.sessions[0].total_population() == 100_000
    assert spec.sessions[1].total_population() == 100
    start = time.perf_counter()
    result = ExperimentRunner().run_one(spec)
    wall_s = time.perf_counter() - start
    assert wall_s < 30.0
    protection = result.metrics["protection"]
    entry = protection["sessions"]["attackers"]["attackers"]["0"]
    assert entry["population"] == 100
    # Containment at scale: the attacker cohort gains nothing per member.
    assert entry["excess_kbps"] < 0.0
    assert entry["containment_s"] is not None
    assert entry["weighted_excess_kbps"] == pytest.approx(100 * entry["excess_kbps"])
    assert result.metrics["multicast"]["audience"]["population"] == 100_000


def test_attack_churn_flash_crowd_surges_to_100k():
    """The flash-crowd scenario grows the audience 100 -> 100k mid-session."""
    spec = attack_churn_flash_crowd_spec()
    result = ExperimentRunner().run_one(spec)
    crowd = result.metrics["multicast"]["crowd"]
    assert crowd["population"] == 100_000
    assert crowd["weighted_average_kbps"] > 0
    assert "protection" in result.metrics


def test_scale_protection_sweep_grid():
    """The audience × attacker-fraction grid returns one result per point."""
    results = run_scale_protection_sweep(
        audiences=(200, 400),
        attacker_fractions=(0.01, 0.1),
        duration_s=12.0,
        attack_start_s=4.0,
    )
    assert len(results) == 4
    for result in results:
        entry = result.metrics["protection"]["sessions"]["attackers"]["attackers"]["0"]
        assert entry["population"] >= 1
        assert "weighted_excess_kbps" in entry


def test_scale_protection_attacker_sizing():
    spec = scale_protection_spec(audience=1000, attacker_fraction=0.01)
    assert spec.sessions[1].population[0].count == 10
    assert spec.sessions[0].population[0].count == 990
    with pytest.raises(ValueError):
        scale_protection_spec(attacker_fraction=0.0)


def test_cohort_population_weights_protection_baseline():
    """The honest baseline weighs the cohort as N receivers, not one."""
    config = PAPER_DEFAULTS
    spec = scale_dumbbell_spec(receivers=200, duration_s=12.0, attack_start_s=4.0)
    result = ExperimentRunner().run_one(spec)
    protection = result.metrics["protection"]
    audience_kbps = result.metrics["multicast"]["audience"]["receiver_kbps"][0]
    # With a 200-strong honest cohort and a single honest-free attacker
    # session, the weighted baseline is dominated by the cohort's rate
    # (computed over the attack window, so only approximately equal to the
    # whole-run goodput).
    assert protection["honest_baseline_kbps"] == pytest.approx(
        audience_kbps, rel=0.5
    )
    assert protection["honest_baseline_kbps"] > 0
    assert config.fair_share_bps > 0  # silence unused warning paths
