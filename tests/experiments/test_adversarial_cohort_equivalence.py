"""Exactness of adversarial cohorts: cohort of N attackers == N attackers.

The adversarial-cohort contract (``docs/threat-model.md``) extends the
honest-cohort exactness guarantee to the batch-exact strategies: a
:class:`~repro.experiments.spec.CohortDecl` carrying an ``AttackSpec``
realised with ``model="cohort"`` must reproduce — with ``==``, on the same
seed — what ``model="individual"`` produces member for member:

* identical subscription-level trajectories (the full ``(time, level)``
  transition list),
* identical per-member goodput,
* identical SIGMA counters (valid/invalid submissions, session joins,
  revocations, ignored bare joins) on the protected variant and identical
  population-weighted IGMP counters on the unprotected one,
* identical attack counters (the cohort's context books per member; the
  individual realisation's counters are summed across members).

Since PR 8 the contract spans the **whole adversary registry** — the
formerly randomised strategies draw per-cohort randomness (one seeded draw
budget per slot, counts booked per member) and collusion pools accept
member-weighted contributions, so key-replay, key-guessing, join-storm and
collusion batch exactly too.  A strategy registered *without* batched
decision rules is rejected at ``AttackSpec`` declaration — also asserted
here.
"""

import itertools

import pytest

from repro.adversary import AttackSpec
from repro.experiments import (
    PAPER_DEFAULTS,
    CohortDecl,
    Scenario,
    ScenarioSpec,
    SessionDecl,
)

POPULATION = 3
DURATION_S = 16.0
ATTACK_START_S = 6.0

#: The batch-exact strategies — the whole registry (docs/threat-model.md).
STRATEGIES = (
    "inflated-join",
    "ignore-congestion",
    "churn",
    "key-replay",
    "key-guessing",
    "join-storm",
    "collusion",
)


def _spec(protected: bool, model: str, strategy: str) -> ScenarioSpec:
    return ScenarioSpec(
        name="adversarial-cohort-equivalence",
        protected=protected,
        expected_sessions=2,
        sessions=(
            SessionDecl(
                "atk",
                receivers=0,
                population=(
                    CohortDecl(
                        POPULATION,
                        model=model,
                        attack=AttackSpec(strategy, start_s=ATTACK_START_S),
                    ),
                ),
            ),
            SessionDecl("hon", receivers=1),
        ),
        duration_s=DURATION_S,
        config=PAPER_DEFAULTS,
    )


def _run(protected: bool, model: str, strategy: str) -> Scenario:
    scenario = Scenario.from_spec(_spec(protected, model, strategy))
    scenario.run(DURATION_S)
    return scenario


@pytest.fixture(
    scope="module",
    params=list(itertools.product([False, True], STRATEGIES)),
    ids=lambda p: f"{'flid_ds' if p[0] else 'flid_dl'}-{p[1]}",
)
def pair(request):
    """One (cohort, individual) scenario pair per protocol × strategy."""
    protected, strategy = request.param
    return (
        protected,
        strategy,
        _run(protected, "cohort", strategy),
        _run(protected, "individual", strategy),
    )


def test_population_accounting(pair):
    """Both realisations stand for the same number of attackers."""
    _, _, cohort, individual = pair
    assert cohort.sessions[0].total_population == POPULATION
    assert individual.sessions[0].total_population == POPULATION
    assert len(cohort.sessions[0].receivers) == 1
    assert len(individual.sessions[0].receivers) == POPULATION


def test_identical_attack_trajectories(pair):
    """The cohort's level trajectory equals every individual attacker's."""
    _, _, cohort, individual = pair
    cohort_history = cohort.sessions[0].receivers[0].level_history
    assert len(cohort_history) >= 1
    for receiver in individual.sessions[0].receivers:
        assert receiver.level_history == cohort_history


def test_identical_per_member_goodput(pair):
    """Per-member attacker goodput matches exactly."""
    _, _, cohort, individual = pair
    member_kbps = cohort.sessions[0].receivers[0].average_rate_kbps(0.0, DURATION_S)
    assert member_kbps > 0
    for receiver in individual.sessions[0].receivers:
        assert receiver.average_rate_kbps(0.0, DURATION_S) == member_kbps


def test_identical_attack_counters(pair):
    """Cohort attack counters equal the member-wise sum of individuals'."""
    protected, strategy, cohort, individual = pair
    cohort_stats = cohort.sessions[0].receivers[0].adversary_stats()
    summed = {
        key: sum(r.adversary_stats()[key] for r in individual.sessions[0].receivers)
        for key in cohort_stats
    }
    assert cohort_stats == summed
    if strategy in ("inflated-join", "churn", "join-storm"):
        assert cohort_stats["igmp_attempts"] > 0  # the attack actually ran
    if protected and strategy == "key-guessing":
        assert cohort_stats["guess_attempts"] > 0
    if protected and strategy == "key-replay":
        assert cohort_stats["replay_attempts"] > 0


def test_identical_sigma_counters(pair):
    """Protected variant: every SIGMA counter matches exactly."""
    protected, _, cohort, individual = pair
    if not protected:
        pytest.skip("SIGMA counters exist only on the protected variant")
    a, b = cohort.sigma, individual.sigma
    assert a.valid_submissions == b.valid_submissions
    assert a.invalid_submissions == b.invalid_submissions
    assert a.session_joins == b.session_joins
    assert a.revocations == b.revocations
    assert a.igmp_joins_ignored == b.igmp_joins_ignored


def test_identical_igmp_counters(pair):
    """Unprotected variant: population-weighted join/leave counts match."""
    protected, _, cohort, individual = pair
    if protected:
        pytest.skip("IGMP managers exist only on the unprotected variant")
    a, b = cohort.igmp_managers[0], individual.igmp_managers[0]
    assert a.joins_handled == b.joins_handled
    assert a.leaves_handled == b.leaves_handled


def test_every_registered_strategy_declares_on_cohorts():
    """The whole registry batches: every strategy is declarable on a cohort."""
    for strategy in STRATEGIES:
        decl = CohortDecl(3, attack=AttackSpec(strategy))
        assert decl.attack.strategy == strategy


def test_strategy_without_batched_rules_rejected_at_declaration():
    """A registered strategy missing its decision.py rules fails AttackSpec.

    The actionable error names the module to extend and the gate to satisfy,
    so a new strategy cannot ship half-batched.
    """
    from repro.adversary import AttackStrategy
    from repro.adversary.registry import ADVERSARIES, register_adversary

    class UnbatchedStrategy(AttackStrategy):
        name = "test-unbatched"

    register_adversary(UnbatchedStrategy)
    try:
        with pytest.raises(ValueError) as excinfo:
            AttackSpec("test-unbatched")
        message = str(excinfo.value)
        assert "repro.multicast_cc.decision" in message
        assert "BATCHED_DECISION_RULES" in message
        assert "exhaustive" in message
    finally:
        del ADVERSARIES["test-unbatched"]
    # Unknown (unregistered) names still defer to the build-time KeyError.
    spec = AttackSpec("no-such-strategy")
    assert spec.strategy == "no-such-strategy"


def test_adversarial_cohorts_refuse_churn_at_the_class_level():
    """The churn+attack exclusion holds even bypassing the spec layer."""
    scenario = Scenario.from_spec(_spec(True, "cohort", "inflated-join"))
    receiver = scenario.sessions[0].receivers[0]
    from repro.experiments import ChurnProcess

    with pytest.raises(ValueError, match="cannot churn"):
        receiver.attach_churn(ChurnProcess(arrival_rate=1.0))


def test_protection_metrics_weight_attacker_cohorts():
    """The protection block reports the cohort's population-weighted excess."""
    from repro.experiments import ExperimentRunner

    spec = _spec(True, "cohort", "inflated-join")
    result = ExperimentRunner().run_one(spec)
    entry = result.metrics["protection"]["sessions"]["atk"]["attackers"]["0"]
    assert entry["population"] == POPULATION
    assert entry["weighted_excess_kbps"] == pytest.approx(
        POPULATION * entry["excess_kbps"]
    )
    assert entry["counters"]["igmp_attempts"] > 0
