"""Exactness of the columnar engine: vector block == cohorts == individuals.

The columnar population engine (``docs/scale.md``) extends the cohort
contract one level up: a ``model="vector"`` block whose rows are advanced by
the array-form decision rules must reproduce — with ``==``, on the same
seed — what ``model="cohort"`` and ``model="individual"`` produce member for
member:

* identical subscription-level trajectories (the full ``(time, level)``
  transition list),
* identical per-member goodput,
* identical SIGMA counters on the protected variant and identical
  population-weighted IGMP counters on the unprotected one,
* for adversarial blocks, identical attack counters under every
  batch-exact strategy.

Everything here is asserted on **both** column backends: the parametrised
fixtures pin :data:`~repro.multicast_cc.population.BACKEND_ENV_VAR` so the
numpy path and the pure-stdlib ``array.array`` fallback are each held to the
same exactness bar (the CI fallback job re-runs the module with the env var
exported globally, covering the numpy-absent container too).
"""

import itertools
import os

import pytest

from repro.adversary import AttackSpec
from repro.experiments import (
    PAPER_DEFAULTS,
    CohortDecl,
    Scenario,
    ScenarioSpec,
    SessionDecl,
)
from repro.multicast_cc.population import BACKEND_ENV_VAR, numpy_available

POPULATION = 3
DURATION_S = 20.0
ATTACK_DURATION_S = 16.0
ATTACK_START_S = 6.0

#: Every registered strategy batches exactly — including over vector blocks.
STRATEGIES = (
    "inflated-join",
    "ignore-congestion",
    "churn",
    "key-replay",
    "key-guessing",
    "join-storm",
    "collusion",
)
BACKENDS = ("numpy", "fallback")


def _honest_spec(protected: bool, model: str, cohorts=None) -> ScenarioSpec:
    return ScenarioSpec(
        name="vector-equivalence",
        protected=protected,
        expected_sessions=1,
        sessions=(
            SessionDecl(
                "s",
                receivers=0,
                population=(CohortDecl(POPULATION, model=model, cohorts=cohorts),),
            ),
        ),
        duration_s=DURATION_S,
        config=PAPER_DEFAULTS,
    )


def _attack_spec(protected: bool, model: str, strategy: str) -> ScenarioSpec:
    return ScenarioSpec(
        name="vector-adversarial-equivalence",
        protected=protected,
        expected_sessions=2,
        sessions=(
            SessionDecl(
                "atk",
                receivers=0,
                population=(
                    CohortDecl(
                        POPULATION,
                        model=model,
                        cohorts=POPULATION if model == "vector" else None,
                        attack=AttackSpec(strategy, start_s=ATTACK_START_S),
                    ),
                ),
            ),
            SessionDecl("hon", receivers=1),
        ),
        duration_s=ATTACK_DURATION_S,
        config=PAPER_DEFAULTS,
    )


def _run(spec: ScenarioSpec, duration_s: float, backend: str = "") -> Scenario:
    """Realise and run a spec, pinning the column backend for the build."""
    saved = os.environ.get(BACKEND_ENV_VAR)
    if backend:
        os.environ[BACKEND_ENV_VAR] = backend
    try:
        scenario = Scenario.from_spec(spec)
    finally:
        if backend:
            if saved is None:
                os.environ.pop(BACKEND_ENV_VAR, None)
            else:
                os.environ[BACKEND_ENV_VAR] = saved
    scenario.run(duration_s)
    return scenario


def _backend_or_skip(name: str) -> str:
    if name == "numpy" and not numpy_available():
        pytest.skip("numpy not importable in this environment")
    return name


@pytest.fixture(
    scope="module",
    params=list(itertools.product([False, True], BACKENDS)),
    ids=lambda p: f"{'flid_ds' if p[0] else 'flid_dl'}-{p[1]}",
)
def trio(request):
    """(vector, cohort, individual) scenarios per protocol × backend.

    The vector realisation splits the population into one row per member
    (``cohorts=POPULATION``), so the block carries per-member granularity —
    the hardest shape for the one-pass rules to keep exact.
    """
    protected, backend = request.param
    _backend_or_skip(backend)
    return (
        protected,
        backend,
        _run(_honest_spec(protected, "vector", POPULATION), DURATION_S, backend),
        _run(_honest_spec(protected, "cohort"), DURATION_S),
        _run(_honest_spec(protected, "individual"), DURATION_S),
    )


def test_population_accounting(trio):
    """One vector receiver per edge stands for the whole population."""
    _, backend, vector, cohort, individual = trio
    assert vector.sessions[0].total_population == POPULATION
    assert len(vector.sessions[0].receivers) == 1  # one edge on the dumbbell
    assert len(cohort.sessions[0].receivers) == 1
    assert len(individual.sessions[0].receivers) == POPULATION
    assert vector.population_table is not None
    assert vector.population_table.backend == backend
    assert vector.population_table.population == POPULATION
    assert vector.population_table.rows == POPULATION
    assert cohort.population_table is None  # cohorts do not allocate blocks


def test_identical_subscription_trajectories(trio):
    """The vector block's trajectory equals cohort's and every individual's."""
    _, _, vector, cohort, individual = trio
    history = vector.sessions[0].receivers[0].level_history
    assert len(history) > 2, "run too quiet to be a meaningful check"
    assert cohort.sessions[0].receivers[0].level_history == history
    for receiver in individual.sessions[0].receivers:
        assert receiver.level_history == history


def test_block_keeps_per_member_rows(trio):
    """The columnar block tracks every member row, uniformly levelled."""
    _, _, vector, _, _ = trio
    receiver = vector.sessions[0].receivers[0]
    rows = receiver.state_rows()
    assert len(rows) == POPULATION
    assert all(count == 1 for count, _ in rows)
    assert {level for _, level in rows} == {receiver.level}


def test_identical_per_member_goodput(trio):
    """Per-member goodput matches across all three realisations."""
    _, _, vector, cohort, individual = trio
    member_kbps = vector.sessions[0].models[0].average_rate_kbps(0.0, DURATION_S)
    assert member_kbps > 0
    assert (
        cohort.sessions[0].models[0].average_rate_kbps(0.0, DURATION_S) == member_kbps
    )
    for model in individual.sessions[0].models:
        assert model.average_rate_kbps(0.0, DURATION_S) == member_kbps


def test_identical_sigma_counters(trio):
    """Protected variant: every SIGMA counter matches exactly."""
    protected, _, vector, cohort, individual = trio
    if not protected:
        pytest.skip("SIGMA counters exist only on the protected variant")
    for other in (cohort, individual):
        assert vector.sigma.valid_submissions == other.sigma.valid_submissions
        assert vector.sigma.invalid_submissions == other.sigma.invalid_submissions
        assert vector.sigma.session_joins == other.sigma.session_joins
        assert vector.sigma.revocations == other.sigma.revocations
    assert vector.sigma.valid_submissions > 0


def test_identical_igmp_counters(trio):
    """Unprotected variant: population-weighted join/leave counts match."""
    protected, _, vector, cohort, individual = trio
    if protected:
        pytest.skip("IGMP managers exist only on the unprotected variant")
    for other in (cohort, individual):
        assert (
            vector.igmp_managers[0].joins_handled
            == other.igmp_managers[0].joins_handled
        )
        assert (
            vector.igmp_managers[0].leaves_handled
            == other.igmp_managers[0].leaves_handled
        )
    assert vector.igmp_managers[0].joins_handled > 0


def test_block_slices_map_declarations_to_objects(trio):
    """block_slices records each declaration's realised object range."""
    _, _, vector, cohort, individual = trio
    assert vector.sessions[0].block_slices == [(0, 1)]
    assert cohort.sessions[0].block_slices == [(0, 1)]
    assert individual.sessions[0].block_slices == [(0, POPULATION)]


# ----------------------------------------------------------------------
# adversarial vector blocks: every batch-exact strategy
# ----------------------------------------------------------------------
@pytest.fixture(
    scope="module",
    params=list(itertools.product([False, True], STRATEGIES, BACKENDS)),
    ids=lambda p: f"{'flid_ds' if p[0] else 'flid_dl'}-{p[1]}-{p[2]}",
)
def attack_pair(request):
    """(vector, cohort) scenario pairs per protocol × strategy × backend."""
    protected, strategy, backend = request.param
    _backend_or_skip(backend)
    return (
        protected,
        strategy,
        _run(_attack_spec(protected, "vector", strategy), ATTACK_DURATION_S, backend),
        _run(_attack_spec(protected, "cohort", strategy), ATTACK_DURATION_S),
    )


def test_identical_attack_trajectories(attack_pair):
    """The adversarial vector block's trajectory equals the cohort's."""
    _, _, vector, cohort = attack_pair
    history = vector.sessions[0].receivers[0].level_history
    assert len(history) >= 1
    assert cohort.sessions[0].receivers[0].level_history == history


def test_identical_attack_counters(attack_pair):
    """Attack counters match member for member (both book per member)."""
    _, strategy, vector, cohort = attack_pair
    vector_stats = vector.sessions[0].receivers[0].adversary_stats()
    assert vector_stats == cohort.sessions[0].receivers[0].adversary_stats()
    if strategy in ("inflated-join", "churn", "join-storm"):
        assert vector_stats["igmp_attempts"] > 0  # the attack actually ran
    protected = attack_pair[0]
    if protected and strategy == "key-guessing":
        assert vector_stats["guess_attempts"] > 0
    if protected and strategy == "key-replay":
        assert vector_stats["replay_attempts"] > 0


def test_identical_protection_counters(attack_pair):
    """SIGMA/IGMP edge counters agree between the two realisations."""
    protected, _, vector, cohort = attack_pair
    if protected:
        assert vector.sigma.valid_submissions == cohort.sigma.valid_submissions
        assert vector.sigma.invalid_submissions == cohort.sigma.invalid_submissions
        assert vector.sigma.igmp_joins_ignored == cohort.sigma.igmp_joins_ignored
    else:
        assert (
            vector.igmp_managers[0].joins_handled
            == cohort.igmp_managers[0].joins_handled
        )


# ----------------------------------------------------------------------
# spec-layer rules specific to vector blocks
# ----------------------------------------------------------------------
def test_cohorts_field_validation():
    """The cohorts split must be realisable and cohort/vector-only."""
    with pytest.raises(ValueError):
        CohortDecl(10, cohorts=0)
    with pytest.raises(ValueError):
        CohortDecl(10, cohorts=11)  # more rows than members
    with pytest.raises(ValueError):
        CohortDecl(10, model="individual", cohorts=2)
    assert CohortDecl(10, model="vector", cohorts=10).cohorts == 10


def test_vector_blocks_cannot_churn():
    """Population churn needs a single aggregated cohort, never a vector."""
    from repro.experiments import ChurnProcess

    with pytest.raises(ValueError, match="single aggregated cohort"):
        CohortDecl(10, model="vector", churn=ChurnProcess(arrival_rate=1.0))
    with pytest.raises(ValueError, match="single aggregated cohort"):
        CohortDecl(10, cohorts=2, churn=ChurnProcess(arrival_rate=1.0))
    scenario = Scenario.from_spec(_honest_spec(True, "vector", POPULATION))
    with pytest.raises(ValueError, match="cannot churn"):
        scenario.sessions[0].receivers[0].attach_churn(
            ChurnProcess(arrival_rate=1.0)
        )


def test_cohorts_split_of_cohort_model_matches_single_cohort():
    """model="cohort" with cohorts=N realises N per-cohort objects, exactly
    equivalent to the single aggregated cohort."""
    split = _run(_honest_spec(True, "cohort", POPULATION), DURATION_S)
    single = _run(_honest_spec(True, "cohort"), DURATION_S)
    assert len(split.sessions[0].receivers) == POPULATION
    assert split.sessions[0].total_population == POPULATION
    history = single.sessions[0].receivers[0].level_history
    for receiver in split.sessions[0].receivers:
        assert receiver.level_history == history
    assert split.sigma.valid_submissions == single.sigma.valid_submissions
