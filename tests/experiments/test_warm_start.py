"""Byte-identity and safety of slot-barrier warm starts (``docs/performance.md``).

The warm-start pipeline promises that resuming a grid cell from a shared
prefix checkpoint is **indistinguishable** from running it cold: for every
golden scenario, on both column backends, through the serial and pooled
runner paths, the warm result document must equal the cold one byte for
byte.  This suite holds the pipeline to that bar and to its safety rails:

* a prefix is only shared when the swept fields are provably inert before
  the divergence slot — a churn burst inside the prefix splits the key,
* torn or corrupt checkpoint blobs read as misses and degrade to cold
  prefixes, never wrong state,
* ``verify=True`` re-runs a warm cell cold and raises on any divergence,
* the engine's exclusive barrier cut leaves events scheduled at exactly the
  barrier queued for the resumed run.
"""

import json
import os

import pytest

from repro.experiments import (
    CheckpointStore,
    ExperimentRunner,
    PrefixPlan,
    execute_spec,
    plan_prefix,
    scale_dumbbell_10m_spec,
    scale_protection_spec,
    scenario_spec,
)
from repro.experiments.runner import cache_stats, prune_cache
from repro.experiments.warmstart import PREFIX_NAME, run_checkpoint_json, run_warm_json
from repro.multicast_cc.population import BACKEND_ENV_VAR, numpy_available
from repro.simulator.engine import Simulator

#: The golden-trace scenarios (same shortened overrides as ``tests/golden``),
#: every one of which must warm-start byte-identically.
GOLDEN_CASES = {
    "figure1-attack": dict(attack_start_s=12.0, duration_s=30.0),
    "figure7-defence": dict(attack_start_s=12.0, duration_s=30.0),
    "attack-flapping": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-key-guessing": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-key-replay": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-join-storm": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-ignore-congestion": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-composite": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-collusion-parking-lot": dict(attack_start_s=6.0, duration_s=18.0),
    "attack-inflated-100k": dict(
        receivers=2000, attackers=5, attack_start_s=6.0, duration_s=18.0
    ),
    "attack-keys-100k": dict(
        receivers=2000, replayers=5, guessers=5, attack_start_s=6.0, duration_s=18.0
    ),
    "attack-collusion-100k": dict(
        receivers=2000, publishers=5, exploiters=5, attack_start_s=6.0, duration_s=18.0
    ),
    "attack-churn-flash-crowd": dict(
        initial=50, surge=1950, surge_at_s=8.0, attack_start_s=6.0, duration_s=18.0
    ),
    "scale-protection": dict(
        audience=1000, attacker_fraction=0.01, attack_start_s=6.0, duration_s=18.0
    ),
}

BACKENDS = ("numpy", "fallback")


def _backend_or_skip(name):
    if name == "numpy" and not numpy_available():
        pytest.skip("numpy not importable in this environment")
    return name


def _warm_via_worker(spec, tmp_path, verify=False):
    """Run ``spec`` through the pool worker's warm path; returns result JSON."""
    plan = plan_prefix(spec)
    assert plan is not None, f"{spec.name} must be warm-startable"
    payload = {
        "spec": spec.to_dict(),
        "prefix": plan.spec.to_dict(),
        "barrier_s": plan.barrier_s,
        "dir": str(tmp_path),
        "key": plan.checkpoint_key(),
        "verify": verify,
    }
    return run_warm_json(json.dumps(payload))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_warm_equals_cold(name, backend, tmp_path, monkeypatch):
    """Checkpoint at the barrier, run to end == cold run, on both backends."""
    monkeypatch.setenv(BACKEND_ENV_VAR, _backend_or_skip(backend))
    spec = scenario_spec(name, **GOLDEN_CASES[name])
    cold = execute_spec(spec).to_json()
    warm = _warm_via_worker(spec, tmp_path)
    assert warm == cold
    # The second warm run restores the published blob instead of rebuilding.
    plan = plan_prefix(spec)
    reused = json.loads(
        run_checkpoint_json(
            json.dumps(
                {
                    "prefix": plan.spec.to_dict(),
                    "barrier_s": plan.barrier_s,
                    "dir": str(tmp_path),
                    "key": plan.checkpoint_key(),
                }
            )
        )
    )
    assert reused["reused"] is True
    assert _warm_via_worker(spec, tmp_path) == cold


def _protection_grid():
    return [
        scale_protection_spec(
            audience=400,
            attacker_fraction=0.01,
            strategy=strategy,
            attack_start_s=12.0,
            duration_s=18.0,
        )
        for strategy in ("inflated-join", "key-replay", "join-storm")
    ]


def test_runner_serial_equals_pool_equals_cold(tmp_path):
    """Warm grids agree byte-for-byte across serial, pooled and cold paths."""
    grid = _protection_grid()
    cold = [r.to_json() for r in ExperimentRunner(jobs=1, warm_start=False).run(grid)]
    serial = ExperimentRunner(jobs=1, cache_dir=tmp_path / "serial")
    assert [r.to_json() for r in serial.run(grid)] == cold
    assert serial.warm_runs == len(grid)
    assert serial.checkpoint_misses == 1  # one shared prefix blob built
    assert serial.checkpoint_hits == 0
    pooled = ExperimentRunner(jobs=2, cache_dir=tmp_path / "pool")
    assert [r.to_json() for r in pooled.run(grid)] == cold
    assert pooled.warm_runs == len(grid)
    # Published blobs count as checkpoint reuses on the next runner.
    again = ExperimentRunner(jobs=1, cache_dir=tmp_path / "serial")
    results = again.run([spec.with_seed(7) for spec in grid])
    assert again.checkpoint_hits in (0, 1)  # seed is part of the prefix key
    assert len(results) == len(grid)


def test_runner_verify_warm_start_passes(tmp_path):
    grid = _protection_grid()
    cold = [r.to_json() for r in ExperimentRunner(jobs=1, warm_start=False).run(grid)]
    verified = ExperimentRunner(jobs=1, cache_dir=tmp_path, verify_warm_start=True)
    assert [r.to_json() for r in verified.run(grid)] == cold
    assert verified.warm_runs == len(grid)


def test_lone_cell_warms_only_with_durable_cache(tmp_path):
    """Without a cache_dir a lone cell stays cold; with one it publishes."""
    spec = _protection_grid()[0]
    cold = execute_spec(spec).to_json()
    scratch = ExperimentRunner(jobs=1)
    assert scratch.run([spec])[0].to_json() == cold
    assert scratch.warm_runs == 0  # a blob nothing shares is pure overhead
    durable = ExperimentRunner(jobs=1, cache_dir=tmp_path)
    assert durable.run([spec])[0].to_json() == cold
    assert durable.warm_runs == 1
    assert durable.checkpoint_misses == 1
    # A later invocation sweeping the same prefix reuses the published blob.
    later = ExperimentRunner(jobs=1, cache_dir=tmp_path)
    later.run([scale_protection_spec(
        audience=400, attacker_fraction=0.01, strategy="key-guessing",
        attack_start_s=12.0, duration_s=18.0)])
    assert later.checkpoint_hits == 1
    assert later.warm_runs == 1


def test_runner_warm_start_disabled(tmp_path):
    runner = ExperimentRunner(jobs=1, cache_dir=tmp_path, warm_start=False)
    runner.run(_protection_grid())
    assert runner.warm_runs == 0
    assert runner.checkpoint_hits == runner.checkpoint_misses == 0
    assert not list(tmp_path.glob("ck_*.pkl"))


def _tiny_sharded(intensity):
    return scale_dumbbell_10m_spec(
        receivers=4000,
        cohorts=32,
        attackers=200,
        attacker_cohorts=8,
        regions=4,
        edges_per_region=2,
        shards=4,
        attack_start_s=8.0,
        intensity=intensity,
        duration_s=12.0,
    )


def test_sharded_warm_equals_cold(tmp_path):
    """Region checkpoints compose with the sharded merge, serial and pooled."""
    grid = [_tiny_sharded(1.0), _tiny_sharded(2.0)]
    cold = [r.to_json() for r in ExperimentRunner(jobs=1, warm_start=False).run(grid)]
    warm = ExperimentRunner(jobs=1, cache_dir=tmp_path / "serial")
    assert [r.to_json() for r in warm.run(grid)] == cold
    assert warm.warm_runs == len(grid)
    assert warm.checkpoint_misses == grid[0].shards  # one blob per region
    pooled = ExperimentRunner(jobs=2, cache_dir=tmp_path / "pool", verify_warm_start=True)
    assert [r.to_json() for r in pooled.run(grid)] == cold


def test_prefix_shared_across_swept_fields():
    """Strategy, intensity and name sweeps collapse to one canonical prefix."""
    keys = {
        plan_prefix(
            scale_protection_spec(
                audience=400,
                strategy=strategy,
                intensity=intensity,
                attack_start_s=12.0,
                duration_s=18.0,
            )
        ).checkpoint_key()
        for strategy in ("inflated-join", "key-replay", "key-guessing")
        for intensity in (1.0, 4.0)
    }
    assert len(keys) == 1
    plan = plan_prefix(
        scale_protection_spec(audience=400, attack_start_s=12.0, duration_s=18.0)
    )
    assert plan.spec.name == PREFIX_NAME
    assert plan.barrier_s == 12.0
    # Fields that shape the prefix itself split the key.
    other = plan_prefix(
        scale_protection_spec(audience=500, attack_start_s=12.0, duration_s=18.0)
    )
    assert other.checkpoint_key() != plan.checkpoint_key()


def test_active_churn_before_divergence_never_shared():
    """A churn burst inside the prefix keeps the swept field in the key."""

    def flash(surge, surge_at_s):
        return scenario_spec(
            "attack-churn-flash-crowd",
            initial=50,
            surge=surge,
            surge_at_s=surge_at_s,
            attack_start_s=6.0,
            duration_s=18.0,
        )

    # Burst after the barrier: inert, canonicalized away, keys collapse.
    inert = {plan_prefix(flash(s, 8.0)).checkpoint_key() for s in (500, 1500)}
    assert len(inert) == 1
    # Burst before the barrier: the swept surge stays in the canonical spec.
    active = {plan_prefix(flash(s, 3.0)).checkpoint_key() for s in (500, 1500)}
    assert len(active) == 2
    assert not (active & inert)


def test_plan_prefix_refuses_unplannable_specs():
    no_attack = scenario_spec("figure8-throughput")
    assert plan_prefix(no_attack) is None
    early = scale_protection_spec(audience=400, attack_start_s=0.1, duration_s=18.0)
    assert plan_prefix(early) is None  # less than one full slot of prefix
    late = scale_protection_spec(audience=400, attack_start_s=18.0, duration_s=18.0)
    assert plan_prefix(late) is None  # barrier would not land inside the run


def test_corrupt_checkpoint_blob_is_a_miss(tmp_path):
    spec = scale_protection_spec(audience=300, attack_start_s=12.0, duration_s=18.0)
    cold = execute_spec(spec).to_json()
    plan = plan_prefix(spec)
    store = CheckpointStore(tmp_path)
    assert _warm_via_worker(spec, tmp_path) == cold
    blob_path = store.path(plan.checkpoint_key())
    assert blob_path.exists()
    for garbage in (b"", b"torn", blob_path.read_bytes()[:40]):
        blob_path.write_bytes(garbage)
        assert store.load(plan.checkpoint_key()) is None
        # The warm worker degrades to rebuilding the prefix, never to error.
        assert _warm_via_worker(spec, tmp_path) == cold


def test_verify_catches_forced_divergence(tmp_path):
    """A wrong blob planted under the cell's key trips the runtime check."""
    spec = scale_protection_spec(audience=300, attack_start_s=12.0, duration_s=18.0)
    plan = plan_prefix(spec)
    wrong = plan_prefix(spec.with_seed(99))
    payload = {
        "prefix": wrong.spec.to_dict(),
        "barrier_s": wrong.barrier_s,
        "dir": str(tmp_path),
        "key": plan.checkpoint_key(),  # published under the *wrong* key
        "membership_log": False,
    }
    run_checkpoint_json(json.dumps(payload))
    with pytest.raises(RuntimeError, match="warm-start divergence"):
        _warm_via_worker(spec, tmp_path, verify=True)


def test_checkpoint_key_is_backend_scoped(monkeypatch):
    spec = scale_protection_spec(audience=300, attack_start_s=12.0, duration_s=18.0)
    monkeypatch.setenv(BACKEND_ENV_VAR, "fallback")
    fallback_key = plan_prefix(spec).checkpoint_key()
    if not numpy_available():
        pytest.skip("numpy not importable; cannot compare backend keys")
    monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
    assert plan_prefix(spec).checkpoint_key() != fallback_key


def test_cache_stats_and_prune(tmp_path):
    grid = _protection_grid()
    ExperimentRunner(jobs=1, cache_dir=tmp_path).run(grid)
    stats = cache_stats(tmp_path)
    assert stats["results"]["entries"] == len(grid)
    assert stats["checkpoints"]["entries"] == 1
    assert stats["total_bytes"] == stats["results"]["bytes"] + stats["checkpoints"]["bytes"]
    with pytest.raises(ValueError):
        prune_cache(tmp_path, -1)
    report = prune_cache(tmp_path, stats["total_bytes"])  # already fits
    assert report["deleted"] == 0
    report = prune_cache(tmp_path, 0)
    assert report["deleted"] == len(grid) + 1
    assert report["remaining_bytes"] == 0
    assert cache_stats(tmp_path)["total_bytes"] == 0


def test_engine_exclusive_barrier_cut():
    """``inclusive=False`` leaves events at exactly ``until`` queued."""
    sim = Simulator()
    fired = []
    for when in (1.0, 2.0, 2.0, 3.0):
        sim.schedule(when, fired.append, when)
    sim.run(until=2.0, inclusive=False)
    assert fired == [1.0]
    assert sim.now == 2.0  # the clock still advances to the barrier
    # The resumed run executes the barrier events first, in original order.
    sim.run(until=3.0)
    assert fired == [1.0, 2.0, 2.0, 3.0]


def test_engine_inclusive_default_unchanged():
    sim = Simulator()
    fired = []
    for when in (1.0, 2.0):
        sim.schedule(when, fired.append, when)
    sim.run(until=2.0)
    assert fired == [1.0, 2.0]
